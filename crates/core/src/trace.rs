//! Instrumented propagation that records, per class, the abstractions
//! arriving along each inheritance edge and the resulting table entry —
//! the machine-checkable version of Figures 6 and 7 of the paper.

use std::fmt::Write as _;

use cpplookup_chg::{Chg, ClassId, MemberId};

use crate::abstraction::{LeastVirtual, RedAbs};
use crate::result::Entry;
use crate::table::{LookupOptions, Merge};

/// An abstraction arriving at a class along one edge, *after* extension
/// through the edge (the values printed on the left of `=>` in the
/// paper's figures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Incoming {
    /// A red definition `(ldc, leastVirtual)` plus, for shared-static
    /// sets, the co-maximal definitions' abstractions.
    Red(RedAbs, Vec<LeastVirtual>),
    /// The blue abstraction set of an ambiguous base lookup.
    Blue(Vec<LeastVirtual>),
}

/// One class's row of the propagation trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceNode {
    /// The class.
    pub class: ClassId,
    /// Whether the class declares the member directly (a *generated*
    /// definition).
    pub generated: bool,
    /// Abstractions arriving along each direct-base edge carrying the
    /// member, in base declaration order.
    pub incoming: Vec<(ClassId, Incoming)>,
    /// The resulting table entry (right of `=>` in the figures).
    pub result: Entry,
}

/// Runs the propagation for a single member name, recording every step.
///
/// Returns one [`TraceNode`] per class where the member is visible, in
/// topological order — exactly the annotations of Figures 6–7.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::trace::{render_trace, trace_member};
/// use cpplookup_core::LookupOptions;
///
/// let g = fixtures::fig3();
/// let foo = g.member_by_name("foo").unwrap();
/// let trace = trace_member(&g, foo, LookupOptions::default());
/// let text = render_trace(&g, &trace);
/// assert!(text.contains("H: blue {D} via F, red (G, Ω) via G => red (G, Ω)"));
/// ```
pub fn trace_member(chg: &Chg, m: MemberId, options: LookupOptions) -> Vec<TraceNode> {
    let mut slots: Vec<Option<Entry>> = vec![None; chg.class_count()];
    let mut trace = Vec::new();
    for &c in chg.topo_order() {
        let generated = chg.declares(c, m);
        let mut incoming = Vec::new();
        for spec in chg.direct_bases(c) {
            match &slots[spec.base.index()] {
                None => {}
                Some(Entry::Red { abs, shared, .. }) => incoming.push((
                    spec.base,
                    Incoming::Red(
                        abs.extend(spec.base, spec.inheritance),
                        shared
                            .iter()
                            .map(|lv| lv.extend(spec.base, spec.inheritance))
                            .collect(),
                    ),
                )),
                Some(Entry::Blue(set)) => incoming.push((
                    spec.base,
                    Incoming::Blue(
                        set.iter()
                            .map(|lv| lv.extend(spec.base, spec.inheritance))
                            .collect(),
                    ),
                )),
            }
        }
        if !generated && incoming.is_empty() {
            continue;
        }
        let result = if generated {
            Entry::Red {
                abs: RedAbs::generated(c),
                via: None,
                shared: Vec::new(),
            }
        } else {
            let mut merge = Merge::new();
            for (via, inc) in &incoming {
                match inc {
                    Incoming::Red(abs, shared) => {
                        merge.add_red(chg, m, *abs, shared, *via, options.statics)
                    }
                    Incoming::Blue(set) => {
                        for &lv in set {
                            merge.add_blue(lv);
                        }
                    }
                }
            }
            merge.finish(chg)
        };
        slots[c.index()] = Some(result.clone());
        trace.push(TraceNode {
            class: c,
            generated,
            incoming,
            result,
        });
    }
    trace
}

/// Renders a trace in the figures' notation, one class per line:
///
/// ```text
/// D: red (A, Ω) via B, red (A, Ω) via C => blue {Ω}
/// ```
pub fn render_trace(chg: &Chg, trace: &[TraceNode]) -> String {
    let mut out = String::new();
    for node in trace {
        let _ = write!(out, "{}: ", chg.class_name(node.class));
        let mut first = true;
        if node.generated {
            let _ = write!(out, "generated");
            first = false;
        }
        for (via, inc) in &node.incoming {
            if !first {
                let _ = write!(out, ", ");
            }
            first = false;
            match inc {
                Incoming::Red(abs, shared) => {
                    let _ = write!(
                        out,
                        "red ({}, {})",
                        chg.class_name(abs.ldc),
                        abs.lv.display(chg)
                    );
                    for lv in shared {
                        let _ = write!(out, "+{}", lv.display(chg));
                    }
                }
                Incoming::Blue(set) => {
                    let _ = write!(out, "blue {{");
                    for (i, lv) in set.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{}", lv.display(chg));
                    }
                    let _ = write!(out, "}}");
                }
            }
            let _ = write!(out, " via {}", chg.class_name(*via));
        }
        let _ = writeln!(out, " => {}", node.result.display(chg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LookupTable;
    use cpplookup_chg::fixtures;

    #[test]
    fn figure6_foo_trace() {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        let text = render_trace(&g, &trace_member(&g, foo, LookupOptions::default()));
        // The annotations of Figure 6, line by line.
        for expected in [
            "A: generated => red (A, Ω)",
            "B: red (A, Ω) via A => red (A, Ω)",
            "C: red (A, Ω) via A => red (A, Ω)",
            "D: red (A, Ω) via B, red (A, Ω) via C => blue {Ω}",
            "F: blue {D} via D => blue {D}",
            "G: generated, blue {D} via D => red (G, Ω)",
            "H: blue {D} via F, red (G, Ω) via G => red (G, Ω)",
        ] {
            assert!(
                text.contains(expected),
                "missing line {expected:?} in:\n{text}"
            );
        }
    }

    #[test]
    fn figure7_bar_trace() {
        let g = fixtures::fig3();
        let bar = g.member_by_name("bar").unwrap();
        let text = render_trace(&g, &trace_member(&g, bar, LookupOptions::default()));
        for expected in [
            "D: generated => red (D, Ω)",
            "E: generated => red (E, Ω)",
            // At F the red from the virtual D edge is (D, D); from E, (E, Ω);
            // neither dominates: blue {D, Ω} (Ω sorts first in our sets).
            "F: red (D, D) via D, red (E, Ω) via E => blue {Ω, D}",
            "G: generated, red (D, D) via D => red (G, Ω)",
            // At H: the blue set {Ω, D} arrives from F, red (G, Ω) from G;
            // G dominates D (virtual base) but not Ω: blue {Ω}.
            "H: blue {Ω, D} via F, red (G, Ω) via G => blue {Ω}",
        ] {
            assert!(
                text.contains(expected),
                "missing line {expected:?} in:\n{text}"
            );
        }
    }

    #[test]
    fn trace_results_match_table() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
        ] {
            let table = LookupTable::build(&g);
            for m in g.member_ids() {
                for node in trace_member(&g, m, LookupOptions::default()) {
                    assert_eq!(
                        Some(&node.result),
                        table.entry(node.class, m),
                        "trace/table mismatch at {}",
                        g.class_name(node.class)
                    );
                }
            }
        }
    }

    #[test]
    fn trace_skips_invisible_classes() {
        let g = fixtures::fig3();
        let bar = g.member_by_name("bar").unwrap();
        let trace = trace_member(&g, bar, LookupOptions::default());
        let classes: Vec<&str> = trace.iter().map(|n| g.class_name(n.class)).collect();
        // bar is invisible in A, B, C.
        assert!(!classes.contains(&"A"));
        assert!(!classes.contains(&"B"));
        assert!(!classes.contains(&"C"));
        assert_eq!(classes.len(), 5); // D, E, F, G, H
    }
}

/// Renders a trace as an annotated Graphviz digraph: class nodes carry
/// their resulting entry (the right-hand sides of Figures 6–7), edges are
/// dashed when virtual.
pub fn trace_to_dot(chg: &Chg, m: MemberId, trace: &[TraceNode]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph trace {{");
    let _ = writeln!(
        out,
        "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];"
    );
    let _ = writeln!(out, "  label=\"propagation of {}\";", chg.member_name(m));
    let by_class: std::collections::HashMap<ClassId, &TraceNode> =
        trace.iter().map(|n| (n.class, n)).collect();
    for c in chg.classes() {
        let annotation = match by_class.get(&c) {
            Some(node) => format!("\\n{}", node.result.display(chg)),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  c{} [label=\"{}{}\"];",
            c.index(),
            chg.class_name(c),
            annotation
        );
    }
    for derived in chg.classes() {
        for spec in chg.direct_bases(derived) {
            let style = if spec.inheritance.is_virtual() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  c{} -> c{}{};",
                spec.base.index(),
                derived.index(),
                style
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a trace as a JSON document — the machine-readable companion
/// to [`render_trace`]'s figure notation, consumed by tooling that
/// post-processes propagation traces (`cpplookup-cli trace --json`).
///
/// Shape:
///
/// ```json
/// {"member": "foo", "nodes": [
///   {"class": "H", "generated": false,
///    "incoming": [
///      {"via": "F", "kind": "blue", "witnesses": ["D"]},
///      {"via": "G", "kind": "red", "ldc": "G", "least_virtual": "Ω", "shared": []}],
///    "result": {"kind": "red", "ldc": "G", "least_virtual": "Ω", "shared": []}}]}
/// ```
///
/// `leastVirtual` abstractions use their display form: a class name, or
/// `"Ω"` for the omega abstraction.
pub fn trace_to_json(chg: &Chg, m: MemberId, trace: &[TraceNode]) -> String {
    use cpplookup_obs::json::escape_into;

    fn push_lv(chg: &Chg, lv: &LeastVirtual, out: &mut String) {
        escape_into(&lv.display(chg).to_string(), out);
    }

    fn push_lv_set(chg: &Chg, set: &[LeastVirtual], out: &mut String) {
        out.push('[');
        for (i, lv) in set.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_lv(chg, lv, out);
        }
        out.push(']');
    }

    fn push_red(chg: &Chg, abs: &RedAbs, shared: &[LeastVirtual], out: &mut String) {
        out.push_str("\"kind\":\"red\",\"ldc\":");
        escape_into(chg.class_name(abs.ldc), out);
        out.push_str(",\"least_virtual\":");
        push_lv(chg, &abs.lv, out);
        out.push_str(",\"shared\":");
        push_lv_set(chg, shared, out);
    }

    fn push_entry(chg: &Chg, entry: &Entry, out: &mut String) {
        out.push('{');
        match entry {
            Entry::Red { abs, shared, .. } => push_red(chg, abs, shared, out),
            Entry::Blue(set) => {
                out.push_str("\"kind\":\"blue\",\"witnesses\":");
                push_lv_set(chg, set, out);
            }
        }
        out.push('}');
    }

    let mut out = String::from("{\"member\":");
    escape_into(chg.member_name(m), &mut out);
    out.push_str(",\"nodes\":[");
    for (i, node) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"class\":");
        escape_into(chg.class_name(node.class), &mut out);
        out.push_str(&format!(",\"generated\":{}", node.generated));
        out.push_str(",\"incoming\":[");
        for (j, (via, inc)) in node.incoming.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"via\":");
            escape_into(chg.class_name(*via), &mut out);
            out.push(',');
            match inc {
                Incoming::Red(abs, shared) => push_red(chg, abs, shared, &mut out),
                Incoming::Blue(set) => {
                    out.push_str("\"kind\":\"blue\",\"witnesses\":");
                    push_lv_set(chg, set, &mut out);
                }
            }
            out.push('}');
        }
        out.push_str("],\"result\":");
        push_entry(chg, &node.result, &mut out);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn trace_json_mirrors_figure6() {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        let trace = trace_member(&g, foo, LookupOptions::default());
        let json = trace_to_json(&g, foo, &trace);
        assert!(json.starts_with("{\"member\":\"foo\""), "{json}");
        assert!(
            json.contains("{\"class\":\"A\",\"generated\":true,\"incoming\":[],\"result\":{\"kind\":\"red\",\"ldc\":\"A\",\"least_virtual\":\"Ω\",\"shared\":[]}}"),
            "{json}"
        );
        assert!(
            json.contains("{\"class\":\"D\",\"generated\":false,\"incoming\":[{\"via\":\"B\",\"kind\":\"red\",\"ldc\":\"A\",\"least_virtual\":\"Ω\",\"shared\":[]},{\"via\":\"C\",\"kind\":\"red\",\"ldc\":\"A\",\"least_virtual\":\"Ω\",\"shared\":[]}],\"result\":{\"kind\":\"blue\",\"witnesses\":[\"Ω\"]}}"),
            "{json}"
        );
        // Structurally balanced.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn trace_json_covers_every_trace_node() {
        let g = fixtures::fig3();
        let bar = g.member_by_name("bar").unwrap();
        let trace = trace_member(&g, bar, LookupOptions::default());
        let json = trace_to_json(&g, bar, &trace);
        assert_eq!(json.matches("\"class\":").count(), trace.len());
        // Figure 7's blue verdict at H survives the encoding.
        assert!(
            json.contains("{\"class\":\"H\"") && json.contains("\"witnesses\":[\"Ω\",\"D\"]"),
            "{json}"
        );
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn trace_dot_carries_annotations() {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        let trace = trace_member(&g, foo, LookupOptions::default());
        let dot = trace_to_dot(&g, foo, &trace);
        assert!(dot.contains("digraph trace"));
        assert!(dot.contains("propagation of foo"));
        assert!(dot.contains("D\\nblue {Ω}"), "{dot}");
        assert!(dot.contains("H\\nred (G, Ω)"));
        // 9 inheritance edges, 2 virtual.
        assert_eq!(dot.matches(" -> ").count(), 9);
        assert_eq!(dot.matches("dashed").count(), 2);
    }

    #[test]
    fn classes_without_entries_have_plain_labels() {
        let g = fixtures::fig3();
        let bar = g.member_by_name("bar").unwrap();
        let trace = trace_member(&g, bar, LookupOptions::default());
        let dot = trace_to_dot(&g, bar, &trace);
        // A, B, C never see bar.
        assert!(dot.contains("[label=\"A\"]"), "{dot}");
    }
}
