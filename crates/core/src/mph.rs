//! A minimal perfect hash function over the packed `(class, member)`
//! probe keys — the "hash, displace" (CHD-style) construction that
//! turns the serve directory's open-addressed probe chains into exactly
//! one displacement load plus one data-dependent cell load.
//!
//! The key set of a [`DispatchIndex`](crate::serve::DispatchIndex) is
//! *static between epochs*: every republish rebuilds the directory from
//! scratch, and no probe ever inserts. That is precisely the regime
//! where spending a little build time to compile the hash itself pays
//! on every subsequent probe — Hartrumpf's partial-evaluation move
//! taken to its endpoint.
//!
//! # Shape
//!
//! * One multiply-shift of `key ^ seed` yields `h`; the low bits
//!   (high product bits folded in) pick one of `⌈n/4⌉`-ish
//!   power-of-two buckets, the high 32 bits carry into the slot map.
//! * Each bucket stores one `u32` displacement `d`. A key's slot is
//!   `fastrange₃₂(remix(h₃₂ ⊞ d), n)` — a multiply-shift, no modulo on
//!   the lookup path.
//! * Construction seats buckets largest-first, searching `d = 0, 1, …`
//!   until every key of the bucket lands in a distinct free slot
//!   (classic hash-and-displace). If any bucket exhausts its
//!   displacement budget the whole table retries with the next seed in
//!   a fixed sequence, so the construction — and therefore the snapshot
//!   bytes that serialize it — is fully deterministic.
//!
//! The function is *minimal*: exactly `n` slots for `n` keys, every
//! slot occupied. Alien keys still map to some slot in range; the
//! caller rejects them with a single key compare against the cell it
//! finds there, which is the same compare a hit needs anyway.

/// Displacement budget per bucket before the seed is abandoned. Large
/// enough that a retry is a once-per-many-billions event on real key
/// sets; small enough that a pathological seed fails fast.
const MAX_DISPLACEMENT: u32 = 1 << 18;

/// Seeds tried before construction gives up. The per-seed failure
/// probability is tiny; 64 consecutive failures indicates duplicate
/// keys (a caller bug), not bad luck.
const MAX_SEEDS: u64 = 64;

/// A one-multiply mix of `key ^ seed`: a multiply-shift whose high
/// product bits are the strongly mixed ones (they become the slot
/// map's `h₃₂`), folded into the low half so the bucket pick sees that
/// entropy too. This sits on the serial critical path of every probe,
/// so it stays at one multiply; the full-avalanche burden lives in
/// [`slot`], where it is load-bearing for construction. Packed probe
/// keys that share a low word (one class, many members) get identical
/// low product bits — the `z >> 32` fold is what spreads their
/// buckets, not redundancy.
#[inline]
fn mix(key: u64, seed: u64) -> u64 {
    let z = (key ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^ (z >> 32)
}

/// Maps the high hash bits plus a bucket displacement onto `0..n`: a
/// full-avalanche 32-bit remix (murmur3's finalizer) of `h₃₂ + d`,
/// then a fastrange multiply-shift instead of a modulo.
///
/// The remix must avalanche completely: with a weaker mix (say one
/// multiply and one xor-shift), the images of two same-bucket keys
/// stay a near-constant distance apart as `d` varies — the slot *pair*
/// walks a one-dimensional line through the `n²` pair space and can
/// miss every free pair at high load, making construction fail no
/// matter the displacement budget.
#[inline]
fn slot(h: u64, d: u32, n: u32) -> usize {
    let mut x = ((h >> 32) as u32).wrapping_add(d);
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    ((u64::from(x) * u64::from(n)) >> 32) as usize
}

/// A built minimal perfect hash function: the chosen seed, the key
/// count, and one displacement per bucket. ~1 byte per key of metadata
/// (`n/4` buckets × 4 bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MphFunction {
    seed: u64,
    n: u32,
    /// One displacement per bucket; power-of-two length.
    disp: Vec<u32>,
}

impl MphFunction {
    /// Builds the function over `keys` (which must be distinct).
    ///
    /// Deterministic: the same key sequence always yields the same
    /// seed and displacement array, so snapshots that serialize the
    /// result stay byte-identical across rebuilds and thread counts.
    ///
    /// # Panics
    ///
    /// If `keys` contains duplicates (no perfect hash exists), after
    /// exhausting the seed budget.
    pub fn build(keys: &[u64]) -> MphFunction {
        for seed in 0..MAX_SEEDS {
            if let Some(f) = Self::try_build(keys, seed) {
                return f;
            }
        }
        panic!(
            "minimal perfect hash construction failed after {MAX_SEEDS} seeds \
             over {} keys — the key set must contain duplicates",
            keys.len()
        );
    }

    /// One construction attempt at a fixed seed.
    fn try_build(keys: &[u64], seed: u64) -> Option<MphFunction> {
        let n = u32::try_from(keys.len()).expect("mph key count overflow");
        let nbuckets = (keys.len() / 4).max(1).next_power_of_two();
        let bucket_mask = (nbuckets - 1) as u64;
        if n == 0 {
            return Some(MphFunction {
                seed,
                n,
                disp: vec![0; nbuckets],
            });
        }
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); nbuckets];
        for &key in keys {
            let h = mix(key, seed);
            buckets[(h & bucket_mask) as usize].push(h);
        }
        // Two keys of one bucket with equal high bits collide under
        // every displacement: no `d` can seat this seed's bucketing.
        for bucket in &mut buckets {
            bucket.sort_unstable_by_key(|h| h >> 32);
            if bucket.windows(2).any(|w| w[0] >> 32 == w[1] >> 32) {
                return None;
            }
        }
        // Seat the crowded buckets first, while the slot table is
        // still mostly free; ties break on bucket index so the search
        // order (and the result) is deterministic.
        let mut order: Vec<u32> = (0..nbuckets as u32).collect();
        order.sort_unstable_by_key(|&b| (std::cmp::Reverse(buckets[b as usize].len()), b));
        let mut taken = vec![false; keys.len()];
        let mut disp = vec![0u32; nbuckets];
        let mut seats: Vec<usize> = Vec::new();
        for &b in &order {
            let bucket = &buckets[b as usize];
            if bucket.is_empty() {
                continue;
            }
            let mut d = 0u32;
            loop {
                seats.clear();
                let ok = bucket.iter().all(|&h| {
                    let s = slot(h, d, n);
                    if taken[s] || seats.contains(&s) {
                        false
                    } else {
                        seats.push(s);
                        true
                    }
                });
                if ok {
                    for &s in &seats {
                        taken[s] = true;
                    }
                    disp[b as usize] = d;
                    break;
                }
                d += 1;
                if d > MAX_DISPLACEMENT {
                    return None;
                }
            }
        }
        Some(MphFunction { seed, n, disp })
    }

    /// Reassembles a function from its serialized parts (the snapshot
    /// loader's path). Returns `None` when the parts cannot describe a
    /// valid function: a non-power-of-two displacement array, or an
    /// empty one.
    pub fn from_parts(seed: u64, n: u32, disp: Vec<u32>) -> Option<MphFunction> {
        if disp.is_empty() || !disp.len().is_power_of_two() {
            return None;
        }
        Some(MphFunction { seed, n, disp })
    }

    /// The slot of `key` in `0..n()`: one displacement-array load, then
    /// a handful of register-only mixes. Keys outside the built set
    /// still map into range; callers reject them by comparing the key
    /// stored in the slot they land on.
    #[inline]
    pub fn position(&self, key: u64) -> usize {
        let h = mix(key, self.seed);
        let d = self.disp[(h as usize) & (self.disp.len() - 1)];
        slot(h, d, self.n)
    }

    /// Number of keys (= number of slots).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The chosen seed (serialized into the snapshot).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-bucket displacement array (serialized into the
    /// snapshot); power-of-two length.
    pub fn disp(&self) -> &[u32] {
        &self.disp
    }

    /// Metadata footprint in bytes (the displacement array; the seed
    /// and count are constant-size).
    pub fn size_bytes(&self) -> usize {
        self.disp.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random key stream (splitmix64 over a
    /// counter — unrelated to the seed search inside the builder).
    fn keys(count: usize, stream: u64) -> Vec<u64> {
        let mut out: Vec<u64> = (0..count as u64)
            .map(|i| mix(i.wrapping_mul(0x2545_F491_4F6C_DD1D), stream))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn positions_are_a_bijection() {
        for &count in &[0usize, 1, 2, 3, 7, 64, 1000, 5000] {
            let keys = keys(count, 7);
            let f = MphFunction::build(&keys);
            let mut seen = vec![false; keys.len()];
            for &k in &keys {
                let p = f.position(k);
                assert!(p < keys.len(), "slot {p} out of range for n={}", keys.len());
                assert!(!seen[p], "slot {p} assigned twice (n={})", keys.len());
                seen[p] = true;
            }
            assert!(seen.iter().all(|&s| s), "not minimal: unfilled slots");
        }
    }

    #[test]
    fn packed_probe_keys_build() {
        // The realistic shape: class in the low word, member in the
        // high word, both small and dense.
        let keys: Vec<u64> = (0..500u64)
            .flat_map(|c| (0..8u64).map(move |m| c | m << 32))
            .collect();
        let f = MphFunction::build(&keys);
        let mut seen = vec![false; keys.len()];
        for &k in &keys {
            let p = f.position(k);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn build_is_deterministic() {
        let keys = keys(3000, 99);
        let a = MphFunction::build(&keys);
        let b = MphFunction::build(&keys);
        assert_eq!(a, b);
    }

    #[test]
    fn alien_keys_stay_in_range() {
        let live = keys(1000, 3);
        let f = MphFunction::build(&live);
        for &k in &keys(1000, 4) {
            assert!(f.position(k) < live.len());
        }
    }

    #[test]
    fn parts_round_trip() {
        let live = keys(256, 11);
        let f = MphFunction::build(&live);
        let g = MphFunction::from_parts(f.seed(), f.n(), f.disp().to_vec()).unwrap();
        for &k in &live {
            assert_eq!(f.position(k), g.position(k));
        }
        assert!(MphFunction::from_parts(0, 4, vec![]).is_none());
        assert!(MphFunction::from_parts(0, 4, vec![0, 0, 0]).is_none());
    }
}
