//! The observability facade: metrics and event plumbing for the lookup
//! engine and the propagation kernels.
//!
//! The actual primitives (counters, histograms, registries, event
//! sinks) live in the dependency-free [`cpplookup_obs`] crate and are
//! re-exported here. This module adds the *wiring*, split by cost:
//!
//! * **Always on** — the engine's summary counters (lookups, cache
//!   hits/misses, invalidations, edits) are registered in a per-engine
//!   [`Registry`] and power the [`EngineStats`](crate::EngineStats)
//!   compatibility accessor. They cost exactly what the pre-registry
//!   ad-hoc atomics cost: one relaxed add per event.
//! * **Feature `obs`** — per-shard cache hit/miss families, the lookup
//!   latency histogram, edit dirty-set/invalidation histograms, the
//!   ambiguity counter, structured [`Event`] emission, and the global
//!   propagation work counters ([`propagation()`]) that make the
//!   paper's unambiguous-vs-ambiguous work split measurable. With the
//!   feature disabled every hook in this module compiles to an empty
//!   inline function and the extra state does not exist.

use std::sync::Arc;

pub use cpplookup_obs::{
    global, CountingSink, Event, EventSink, Family, Gauge, Histogram, HistogramSnapshot,
    MemorySink, MetricSnapshot, MetricValue, NullSink, Registry, Snapshot,
};

use cpplookup_obs::Counter;

/// Work counters for the Figure-8 propagation kernels, registered in
/// the [`global()`] registry on first use.
///
/// With the `obs` feature disabled this is a zero-sized stub whose
/// methods compile to nothing.
#[derive(Debug)]
pub struct PropagationStats {
    #[cfg(feature = "obs")]
    nodes_visited: Arc<Counter>,
    #[cfg(feature = "obs")]
    red_merges: Arc<Counter>,
    #[cfg(feature = "obs")]
    blue_merges: Arc<Counter>,
    #[cfg(feature = "obs")]
    demotions: Arc<Counter>,
    #[cfg(feature = "obs")]
    ambiguous_entries: Arc<Counter>,
}

/// The process-wide propagation counters.
#[cfg(feature = "obs")]
pub fn propagation() -> &'static PropagationStats {
    use std::sync::OnceLock;
    static STATS: OnceLock<PropagationStats> = OnceLock::new();
    STATS.get_or_init(|| {
        let r = global();
        PropagationStats {
            nodes_visited: r.counter(
                "propagation_nodes_visited_total",
                "(class, member) propagation steps computed (Figure 8 node visits)",
            ),
            red_merges: r.counter(
                "propagation_red_merges_total",
                "red abstractions merged (Figure 8 lines 18-28)",
            ),
            blue_merges: r.counter(
                "propagation_blue_merges_total",
                "blue abstractions merged (Figure 8 lines 29-32)",
            ),
            demotions: r.counter(
                "propagation_demotions_total",
                "red-to-blue demotions (incomparable candidate pairs)",
            ),
            ambiguous_entries: r.counter(
                "propagation_entries_ambiguous_total",
                "merges that finished blue (ambiguous entries computed)",
            ),
        }
    })
}

/// The process-wide propagation counters (no-op stub: `obs` feature
/// disabled).
#[cfg(not(feature = "obs"))]
pub fn propagation() -> &'static PropagationStats {
    static STATS: PropagationStats = PropagationStats {};
    &STATS
}

impl PropagationStats {
    /// One (class, member) propagation step ran.
    #[inline]
    pub fn node_visited(&self) {
        #[cfg(feature = "obs")]
        self.nodes_visited.inc();
    }

    /// `n` propagation steps ran (bulk flush from the eager builder).
    #[inline]
    pub fn nodes_visited_add(&self, _n: u64) {
        #[cfg(feature = "obs")]
        self.nodes_visited.add(_n);
    }

    /// Flushes one merge's locally accumulated counts.
    #[inline]
    pub fn flush_merge(&self, _reds: u32, _blues: u32, _demotions: u32, _ambiguous: bool) {
        #[cfg(feature = "obs")]
        {
            if _reds > 0 {
                self.red_merges.add(u64::from(_reds));
            }
            if _blues > 0 {
                self.blue_merges.add(u64::from(_blues));
            }
            if _demotions > 0 {
                self.demotions.add(u64::from(_demotions));
            }
            if _ambiguous {
                self.ambiguous_entries.inc();
            }
        }
    }

    /// Current node-visit count (enabled builds only).
    #[cfg(feature = "obs")]
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited.get()
    }

    /// Current ambiguous-entry count (enabled builds only).
    #[cfg(feature = "obs")]
    pub fn ambiguous_entries(&self) -> u64 {
        self.ambiguous_entries.get()
    }
}

/// Counts one query answered by a baseline lookup strategy, labelled by
/// strategy name, in the [`global()`] registry
/// (`baseline_queries_total{strategy="..."}`). No-op with the `obs`
/// feature disabled.
#[inline]
pub fn baseline_query(_strategy: &str) {
    #[cfg(feature = "obs")]
    global()
        .counter_family(
            "baseline_queries_total",
            "queries answered by baseline lookup strategies",
            "strategy",
        )
        .with_label(_strategy)
        .inc();
}

/// Records one snapshot load in the [`global()`] registry:
/// `snapshot_loads_total` counts loads, `snapshot_bytes` gauges the size
/// of the most recently loaded snapshot, and `snapshot_load_seconds`
/// histograms the wall-clock load+validate time (observed in
/// **nanoseconds** — the registry's histograms are integer-valued and
/// loads are sub-second; the help text states the unit). No-op with the
/// `obs` feature disabled.
#[inline]
pub fn snapshot_loaded(_bytes: u64, _elapsed_ns: u64) {
    #[cfg(feature = "obs")]
    {
        let r = global();
        r.counter(
            "snapshot_loads_total",
            "snapshot files loaded and validated",
        )
        .inc();
        r.gauge(
            "snapshot_bytes",
            "size in bytes of the last loaded snapshot",
        )
        .set(i64::try_from(_bytes).unwrap_or(i64::MAX));
        r.histogram(
            "snapshot_load_seconds",
            "snapshot load+validate wall time (recorded in nanoseconds)",
            Histogram::latency_ns(),
        )
        .observe(_elapsed_ns);
    }
}

/// Records one whole-table build in the [`global()`] registry:
/// `build_nodes_visited_total{strategy="..."}` counts the live
/// `(class, member)` pairs the build touched, labelled by builder
/// strategy (`batched`, `batched-parallel`, `reference`);
/// `build_members_pruned_total` counts the `(class, member)` pairs the
/// member-frontier pruning skipped (`|N|·|M| −` live; zero for the
/// unpruned reference builder); and `build_seconds` histograms the
/// build wall time (observed in **nanoseconds**, like the other latency
/// histograms — the help text states the unit). No-op with the `obs`
/// feature disabled.
#[inline]
pub fn table_built(
    _strategy: &'static str,
    _nodes_visited: u64,
    _members_pruned: u64,
    _elapsed_ns: u64,
) {
    #[cfg(feature = "obs")]
    {
        let r = global();
        r.counter_family(
            "build_nodes_visited_total",
            "live (class, member) pairs touched by whole-table builds",
            "strategy",
        )
        .with_label(_strategy)
        .add(_nodes_visited);
        r.counter(
            "build_members_pruned_total",
            "(class, member) pairs skipped by member-frontier pruning",
        )
        .add(_members_pruned);
        r.histogram(
            "build_seconds",
            "whole-table build wall time (recorded in nanoseconds)",
            Histogram::latency_ns(),
        )
        .observe(_elapsed_ns);
    }
}

/// Counts `_queries` queries answered by a serving read path, labelled
/// by backend, in the [`global()`] registry
/// (`serve_queries_total{backend="index" | "table" | "snapshot"}`).
/// Batch paths record once per batch with the element count; the
/// allocation-free [`lookup_ref`](crate::serve::DispatchIndex::lookup_ref)
/// hot path records nothing by design. No-op with the `obs` feature
/// disabled.
#[inline]
pub fn serve_query(_backend: &str, _queries: u64) {
    #[cfg(feature = "obs")]
    global()
        .counter_family(
            "serve_queries_total",
            "queries answered by serving read paths",
            "backend",
        )
        .with_label(_backend)
        .add(_queries);
}

/// Records one [`DispatchIndex`](crate::serve::DispatchIndex) build in
/// the [`global()`] registry: `serve_index_builds_total{source}` counts
/// builds by construction path (`table`, `snapshot`, `engine`,
/// `refresh`), `serve_index_entries` / `serve_index_bytes` gauge the
/// most recently built index's footprint, and
/// `serve_index_build_seconds` histograms the build wall time (observed
/// in **nanoseconds**, like the other latency histograms — the help
/// text states the unit). No-op with the `obs` feature disabled.
#[inline]
pub fn index_built(_source: &str, _entries: u64, _bytes: u64, _elapsed_ns: u64) {
    #[cfg(feature = "obs")]
    {
        let r = global();
        r.counter_family(
            "serve_index_builds_total",
            "dispatch index builds by construction path",
            "source",
        )
        .with_label(_source)
        .inc();
        r.gauge(
            "serve_index_entries",
            "(class, member) entries in the last built dispatch index",
        )
        .set(i64::try_from(_entries).unwrap_or(i64::MAX));
        r.gauge(
            "serve_index_bytes",
            "flat storage bytes of the last built dispatch index",
        )
        .set(i64::try_from(_bytes).unwrap_or(i64::MAX));
        r.histogram(
            "serve_index_build_seconds",
            "dispatch index build wall time (recorded in nanoseconds)",
            Histogram::latency_ns(),
        )
        .observe(_elapsed_ns);
    }
}

/// Records one probe-directory build in the [`global()`] registry:
/// `serve_directory_kind{kind="mph" | "open"}` gauges how many live
/// directories of each kind have been built (so promotion logs show
/// which probe path a tenant landed on — a nonzero `open` count means
/// some tenant is serving through the pre-hash fallback), and, for MPH
/// builds, `mph_build_seconds` histograms the hash-and-displace
/// construction wall time (observed in **nanoseconds**, like the other
/// latency histograms — the help text states the unit). No-op with the
/// `obs` feature disabled.
#[inline]
pub fn directory_built(_kind: &str, _entries: u64, _mph_build_ns: Option<u64>) {
    #[cfg(feature = "obs")]
    {
        let r = global();
        r.gauge_family(
            "serve_directory_kind",
            "probe directories built, by directory kind",
            "kind",
            2,
        )
        .with_label(_kind)
        .add(1);
        if let Some(ns) = _mph_build_ns {
            r.histogram(
                "mph_build_seconds",
                "minimal perfect hash construction wall time (recorded in nanoseconds)",
                Histogram::latency_ns(),
            )
            .observe(ns);
        }
    }
}

/// Records one [`ServeHandle`](crate::serve::ServeHandle) publish in
/// the [`global()`] registry: `serve_index_publishes_total` counts
/// publishes, `serve_index_epoch` gauges the newest epoch, and
/// `serve_index_publish_seconds` histograms the pointer-swap wall time
/// (observed in **nanoseconds** — it should sit in the lowest buckets;
/// anything else means a publisher blocked on readers). No-op with the
/// `obs` feature disabled.
#[inline]
pub fn index_published(_epoch: u64, _elapsed_ns: u64) {
    #[cfg(feature = "obs")]
    {
        let r = global();
        r.counter(
            "serve_index_publishes_total",
            "dispatch index versions published",
        )
        .inc();
        r.gauge("serve_index_epoch", "most recently published index epoch")
            .set(i64::try_from(_epoch).unwrap_or(i64::MAX));
        r.histogram(
            "serve_index_publish_seconds",
            "index publish pointer-swap wall time (recorded in nanoseconds)",
            Histogram::latency_ns(),
        )
        .observe(_elapsed_ns);
    }
}

/// Per-shard families, histograms, and the event sink — the parts of
/// the engine's instrumentation that only exist with the `obs` feature.
#[cfg(feature = "obs")]
struct EngineExt {
    shard_hits: Vec<Arc<Counter>>,
    shard_misses: Vec<Arc<Counter>>,
    latency: Arc<Histogram>,
    ambiguous: Arc<Counter>,
    edit_dirty: Arc<Histogram>,
    edit_invalidated: Arc<Histogram>,
    has_sink: std::sync::atomic::AtomicBool,
    sink: std::sync::RwLock<Option<Arc<dyn EventSink>>>,
}

#[cfg(feature = "obs")]
impl std::fmt::Debug for EngineExt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineExt")
            .field("shards", &self.shard_hits.len())
            .field(
                "has_sink",
                &self.has_sink.load(std::sync::atomic::Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

#[cfg(feature = "obs")]
impl EngineExt {
    fn new(registry: &Registry, shards: usize) -> Self {
        let hits_family = registry.counter_family(
            "engine_shard_hits_total",
            "cache hits by memo-cache shard",
            "shard",
        );
        let misses_family = registry.counter_family(
            "engine_shard_misses_total",
            "cache misses by memo-cache shard",
            "shard",
        );
        EngineExt {
            shard_hits: (0..shards)
                .map(|i| hits_family.with_label(&i.to_string()))
                .collect(),
            shard_misses: (0..shards)
                .map(|i| misses_family.with_label(&i.to_string()))
                .collect(),
            latency: registry.histogram(
                "engine_lookup_latency_ns",
                "per-query wall-clock latency (requires EngineOptions::timing)",
                Histogram::latency_ns(),
            ),
            ambiguous: registry.counter(
                "engine_ambiguous_total",
                "queries that returned an ambiguous entry",
            ),
            edit_dirty: registry.histogram(
                "engine_edit_dirty_size",
                "dirty-set closure size per edit batch",
                Histogram::sizes(),
            ),
            edit_invalidated: registry.histogram(
                "engine_edit_invalidated_size",
                "cached entries invalidated per edit batch",
                Histogram::sizes(),
            ),
            has_sink: std::sync::atomic::AtomicBool::new(false),
            sink: std::sync::RwLock::new(None),
        }
    }
}

/// The engine's metric handles: always-on summary counters registered
/// in a per-engine [`Registry`], plus the feature-gated extras.
///
/// `pub(crate)`: only `engine.rs` records through this; external
/// consumers read the registry via
/// [`LookupEngine::metrics_registry`](crate::LookupEngine::metrics_registry).
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    registry: Arc<Registry>,
    pub(crate) lookups: Arc<Counter>,
    pub(crate) hits: Arc<Counter>,
    pub(crate) misses: Arc<Counter>,
    pub(crate) lookup_nanos: Arc<Counter>,
    pub(crate) computed: Arc<Counter>,
    pub(crate) invalidated: Arc<Counter>,
    pub(crate) recomputed: Arc<Counter>,
    pub(crate) edits: Arc<Counter>,
    cached_entries: Arc<Gauge>,
    #[cfg(feature = "obs")]
    ext: EngineExt,
}

impl EngineMetrics {
    pub(crate) fn new(shards: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = EngineMetrics {
            lookups: registry.counter(
                "engine_lookups_total",
                "queries served (lookup + entry + batch elements)",
            ),
            hits: registry.counter(
                "engine_cache_hits_total",
                "queries answered from the memo cache",
            ),
            misses: registry.counter(
                "engine_cache_misses_total",
                "queries that had to compute at least their own entry",
            ),
            lookup_nanos: registry.counter(
                "engine_lookup_nanos_total",
                "accumulated query wall-clock time (requires EngineOptions::timing)",
            ),
            computed: registry.counter(
                "engine_entries_computed_total",
                "entries computed on demand by lazy-mode queries",
            ),
            invalidated: registry.counter(
                "engine_entries_invalidated_total",
                "cached entries dropped by edits",
            ),
            recomputed: registry.counter(
                "engine_entries_recomputed_total",
                "entries recomputed eagerly after edits",
            ),
            edits: registry.counter("engine_edits_total", "individual hierarchy edits applied"),
            cached_entries: registry.gauge(
                "engine_cached_entries",
                "entries currently cached (refreshed at snapshot time)",
            ),
            #[cfg(feature = "obs")]
            ext: EngineExt::new(&registry, shards),
            registry,
        };
        #[cfg(not(feature = "obs"))]
        let _ = shards;
        metrics
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Refreshes the cache-residency gauge and snapshots the registry.
    pub(crate) fn snapshot(&self, cached_entries: u64) -> Snapshot {
        self.cached_entries.set(cached_entries as i64);
        self.registry.snapshot()
    }

    /// Records a cache hit on `shard` (the `lookups` counter is bumped
    /// separately by the caller, once per query).
    #[inline]
    pub(crate) fn record_hit(&self, _shard: usize) {
        self.hits.inc();
        #[cfg(feature = "obs")]
        {
            self.ext.shard_hits[_shard].inc();
            self.emit(|| Event::CacheHit { shard: _shard });
        }
    }

    /// Records a cache miss on `shard`.
    #[inline]
    pub(crate) fn record_miss(&self, _shard: usize) {
        self.misses.inc();
        #[cfg(feature = "obs")]
        {
            self.ext.shard_misses[_shard].inc();
            self.emit(|| Event::CacheMiss { shard: _shard });
        }
    }

    /// Records the engine's initial cache build: which strategy ran
    /// (`build_strategy` label on `engine_build_info`) and how long it
    /// took (`engine_build_seconds`, observed in nanoseconds). Always
    /// on — `stats` surfaces both without the `obs` feature.
    pub(crate) fn record_build(&self, strategy: &str, nanos: u64) {
        self.registry
            .counter_family(
                "engine_build_info",
                "initial cache builds by strategy",
                "build_strategy",
            )
            .with_label(strategy)
            .inc();
        self.registry
            .histogram(
                "engine_build_seconds",
                "initial cache build wall time (recorded in nanoseconds)",
                Histogram::latency_ns(),
            )
            .observe(nanos);
    }

    /// Records one timed query's duration.
    #[inline]
    pub(crate) fn record_latency(&self, nanos: u64) {
        self.lookup_nanos.add(nanos);
        #[cfg(feature = "obs")]
        self.ext.latency.observe(nanos);
    }

    /// Records a query that returned an ambiguous entry.
    #[inline]
    pub(crate) fn record_ambiguity(&self, _class: u32, _member: u32) {
        #[cfg(feature = "obs")]
        {
            self.ext.ambiguous.inc();
            self.emit(|| Event::AmbiguityEncountered {
                class: _class,
                member: _member,
            });
        }
    }

    /// Records one lazily computed (freshly inserted) entry.
    #[inline]
    pub(crate) fn record_computed(&self, _class: u32, _member: u32) {
        self.computed.inc();
        #[cfg(feature = "obs")]
        self.emit(|| Event::NodeVisited {
            class: _class,
            member: _member,
        });
    }

    /// Records an applied edit batch with its invalidation footprint.
    pub(crate) fn record_edit(
        &self,
        edits: usize,
        dirty: usize,
        invalidated: u64,
        recomputed: u64,
        generation: u64,
    ) {
        self.edits.add(edits as u64);
        self.invalidated.add(invalidated);
        self.recomputed.add(recomputed);
        #[cfg(feature = "obs")]
        {
            self.ext.edit_dirty.observe(dirty as u64);
            self.ext.edit_invalidated.observe(invalidated);
            self.emit(|| Event::EditApplied {
                edits,
                dirty,
                invalidated: invalidated as usize,
                recomputed: recomputed as usize,
                generation,
            });
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (dirty, generation);
        }
    }

    /// Installs (or removes, with `None`) the engine's event sink.
    pub(crate) fn set_sink(&self, _sink: Option<Arc<dyn EventSink>>) {
        #[cfg(feature = "obs")]
        {
            self.ext
                .has_sink
                .store(_sink.is_some(), std::sync::atomic::Ordering::Release);
            *self.ext.sink.write().expect("sink lock poisoned") = _sink;
        }
    }

    /// Sends an event to the installed sink, constructing it only when
    /// a sink is present. Compiles to nothing without the `obs` feature.
    #[inline]
    pub(crate) fn emit(&self, _make: impl FnOnce() -> Event) {
        #[cfg(feature = "obs")]
        {
            if !self.ext.has_sink.load(std::sync::atomic::Ordering::Acquire) {
                return;
            }
            if let Some(sink) = self.ext.sink.read().expect("sink lock poisoned").as_ref() {
                sink.record(&_make());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_metrics_register_summary_counters() {
        let m = EngineMetrics::new(4);
        m.lookups.inc();
        m.record_hit(2);
        m.record_miss(3);
        m.record_latency(500);
        let snap = m.snapshot(7);
        assert_eq!(snap.counter("engine_lookups_total"), Some(1));
        assert_eq!(snap.counter("engine_cache_hits_total"), Some(1));
        assert_eq!(snap.counter("engine_cache_misses_total"), Some(1));
        assert_eq!(snap.gauge("engine_cached_entries"), Some(7));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn shard_families_and_latency_histogram() {
        let m = EngineMetrics::new(4);
        m.record_hit(2);
        m.record_hit(2);
        m.record_miss(0);
        m.record_latency(128);
        let snap = m.snapshot(0);
        let prom = snap.render_prometheus();
        assert!(
            prom.contains("engine_shard_hits_total{shard=\"2\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("engine_shard_misses_total{shard=\"0\"} 1"),
            "{prom}"
        );
        assert_eq!(snap.histogram("engine_lookup_latency_ns").unwrap().count, 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn events_reach_the_sink_only_when_installed() {
        let m = EngineMetrics::new(1);
        let sink = Arc::new(MemorySink::new());
        m.record_hit(0); // no sink yet: dropped
        m.set_sink(Some(sink.clone()));
        m.record_hit(0);
        m.record_edit(1, 5, 3, 2, 1);
        m.set_sink(None);
        m.record_hit(0); // removed again: dropped
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event::CacheHit { shard: 0 });
        assert_eq!(
            events[1],
            Event::EditApplied {
                edits: 1,
                dirty: 5,
                invalidated: 3,
                recomputed: 2,
                generation: 1
            }
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn propagation_counters_accumulate() {
        let p = propagation();
        let before = p.nodes_visited();
        p.node_visited();
        p.flush_merge(2, 1, 1, true);
        assert_eq!(p.nodes_visited(), before + 1);
        let snap = global().snapshot();
        assert!(snap.counter("propagation_red_merges_total").unwrap() >= 2);
        assert!(snap.counter("propagation_entries_ambiguous_total").unwrap() >= 1);
    }

    #[test]
    fn serve_hooks_are_callable_in_both_modes() {
        serve_query("index", 3);
        index_built("table", 10, 640, 1_000);
        index_published(1, 50);
        #[cfg(feature = "obs")]
        {
            let snap = global().snapshot();
            assert!(snap.counter("serve_index_publishes_total").unwrap() >= 1);
            assert!(snap.gauge("serve_index_bytes").is_some());
            assert!(snap.gauge("serve_index_epoch").is_some());
            assert!(snap.histogram("serve_index_build_seconds").unwrap().count >= 1);
        }
    }

    #[test]
    fn baseline_counter_is_callable_in_both_modes() {
        baseline_query("naive");
        #[cfg(feature = "obs")]
        {
            let snap = global().snapshot();
            let found = snap.metrics.iter().any(|ms| {
                ms.name == "baseline_queries_total"
                    && matches!(
                        &ms.value,
                        MetricValue::Family { series, .. }
                            if series.iter().any(|(s, n)| s == "naive" && *n >= 1)
                    )
            });
            assert!(found);
        }
    }
}
