//! Class-hierarchy analysis (CHA) — the "static analysis" application the
//! paper names in Section 1: resolving the *possible targets* of a
//! virtual call.
//!
//! For a call `p->m()` where `p` has static type `C`, the dynamic type of
//! `*p` can be `C` or any class derived from `C`; the invoked declaration
//! is `lookup(dynamic_type, m)`. CHA computes the set of declarations any
//! such call could reach — the devirtualization question: a singleton
//! target set means the call can be compiled as a direct call.

use std::collections::BTreeSet;

use cpplookup_chg::{Chg, ClassId, MemberId};

use crate::result::LookupOutcome;
use crate::table::LookupTable;

/// The possible bindings of a virtual call through a given static type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallTargets {
    /// Declaring classes the call can bind to, over all dynamic types,
    /// sorted by class id.
    pub targets: Vec<ClassId>,
    /// Derived classes whose own lookup of the member is ambiguous —
    /// they can never be the dynamic type of such a call in a
    /// well-formed program, but their existence is worth reporting.
    pub ambiguous_dynamic_types: Vec<ClassId>,
}

impl CallTargets {
    /// Whether the call has exactly one possible target and can be
    /// devirtualized.
    pub fn is_monomorphic(&self) -> bool {
        self.targets.len() == 1
    }
}

/// All classes whose objects can appear behind a `C*`: `C` itself plus
/// every class derived from it.
pub fn possible_dynamic_types(chg: &Chg, c: ClassId) -> impl Iterator<Item = ClassId> + '_ {
    chg.classes()
        .filter(move |&d| d == c || chg.is_base_of(c, d))
}

/// Computes the CHA target set of a call `p->m()` with `p: C*`.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::cha::call_targets;
/// use cpplookup_core::LookupTable;
///
/// let g = fixtures::dominance_diamond();
/// let table = LookupTable::build(&g);
/// let top = g.class_by_name("Top").unwrap();
/// let f = g.member_by_name("f").unwrap();
/// let targets = call_targets(&g, &table, top, f);
/// // Through a Top*, the call can bind to Top::f or Left::f.
/// let names: Vec<&str> = targets.targets.iter().map(|&c| g.class_name(c)).collect();
/// assert_eq!(names, vec!["Top", "Left"]);
/// assert!(!targets.is_monomorphic());
/// ```
pub fn call_targets(chg: &Chg, table: &LookupTable, c: ClassId, m: MemberId) -> CallTargets {
    let mut targets: BTreeSet<ClassId> = BTreeSet::new();
    let mut ambiguous = Vec::new();
    for d in possible_dynamic_types(chg, c) {
        match table.lookup(d, m) {
            LookupOutcome::Resolved { class, .. } => {
                targets.insert(class);
            }
            LookupOutcome::Ambiguous { .. } => ambiguous.push(d),
            LookupOutcome::NotFound => {}
        }
    }
    CallTargets {
        targets: targets.into_iter().collect(),
        ambiguous_dynamic_types: ambiguous,
    }
}

/// Whole-hierarchy devirtualization census: for every `(class, member)`
/// pair where the member resolves, whether CHA proves the call
/// monomorphic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DevirtStats {
    /// Call sites considered (resolved `(static type, member)` pairs).
    pub call_sites: usize,
    /// Of those, provably monomorphic.
    pub monomorphic: usize,
}

/// Counts how many `(static type, member)` pairs CHA can devirtualize.
pub fn devirtualization_census(chg: &Chg, table: &LookupTable) -> DevirtStats {
    let mut stats = DevirtStats::default();
    for c in chg.classes() {
        for m in chg.member_ids() {
            if !matches!(table.lookup(c, m), LookupOutcome::Resolved { .. }) {
                continue;
            }
            stats.call_sites += 1;
            if call_targets(chg, table, c, m).is_monomorphic() {
                stats.monomorphic += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, ChgBuilder, Inheritance};

    #[test]
    fn leaf_calls_are_monomorphic() {
        let g = fixtures::dominance_diamond();
        let t = LookupTable::build(&g);
        let bottom = g.class_by_name("Bottom").unwrap();
        let f = g.member_by_name("f").unwrap();
        let targets = call_targets(&g, &t, bottom, f);
        assert!(targets.is_monomorphic());
        assert_eq!(g.class_name(targets.targets[0]), "Left");
    }

    #[test]
    fn base_calls_see_all_overrides() {
        // Top <- Mid (overrides) <- Leaf (overrides): a Top* can reach
        // three declarations; a Mid* only two.
        let mut b = ChgBuilder::new();
        let top = b.class("Top");
        let mid = b.class("Mid");
        let leaf = b.class("Leaf");
        b.member(top, "f");
        b.member(mid, "f");
        b.member(leaf, "f");
        b.derive(mid, top, Inheritance::NonVirtual).unwrap();
        b.derive(leaf, mid, Inheritance::NonVirtual).unwrap();
        let g = b.finish().unwrap();
        let t = LookupTable::build(&g);
        let f = g.member_by_name("f").unwrap();
        assert_eq!(call_targets(&g, &t, top, f).targets.len(), 3);
        assert_eq!(call_targets(&g, &t, mid, f).targets.len(), 2);
        assert_eq!(call_targets(&g, &t, leaf, f).targets.len(), 1);
    }

    #[test]
    fn ambiguous_dynamic_types_reported() {
        let g = fixtures::fig1();
        let t = LookupTable::build(&g);
        let a = g.class_by_name("A").unwrap();
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        let targets = call_targets(&g, &t, a, m);
        // Dynamic types B, C resolve to A::m; D resolves to D::m; E is
        // ambiguous.
        assert_eq!(targets.targets.len(), 2);
        assert_eq!(targets.ambiguous_dynamic_types, vec![e]);
    }

    #[test]
    fn dynamic_type_census() {
        let g = fixtures::fig3();
        let d = g.class_by_name("D").unwrap();
        let names: Vec<&str> = possible_dynamic_types(&g, d)
            .map(|c| g.class_name(c))
            .collect();
        assert_eq!(names, vec!["D", "F", "G", "H"]);
    }

    #[test]
    fn census_counts_are_consistent() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let stats = devirtualization_census(&g, &t);
        assert!(stats.monomorphic <= stats.call_sites);
        assert!(stats.call_sites > 0);
        // foo through A is polymorphic (G overrides below), foo through G
        // is monomorphic.
        let a = g.class_by_name("A").unwrap();
        let gcls = g.class_by_name("G").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        assert!(!call_targets(&g, &t, a, foo).is_monomorphic());
        assert!(call_targets(&g, &t, gcls, foo).is_monomorphic());
    }
}
