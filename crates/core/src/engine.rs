//! A thread-safe lookup engine with incremental invalidation.
//!
//! [`LookupEngine`] is the deployment-shaped wrapper around the paper's
//! algorithm: it **owns** its class hierarchy, answers queries from a
//! sharded memo cache, and — unlike every other strategy in this crate —
//! survives hierarchy edits. C++ hierarchies only ever grow (new
//! classes, members, base edges), and Figure 8's propagation is a
//! distributive dataflow problem over the CHG in topological order, so
//! an edit invalidates a *computable* set of `(class, member)` entries:
//!
//! * `AddClass` changes no existing entry — the new class has no bases,
//!   members, or derived classes yet;
//! * `AddMember(c, m)` can only change `lookup[d, m]` for `d` in
//!   `{c} ∪ derived(c)`: entries of other members never see `m`, and a
//!   class outside the derived closure has the same visible definitions
//!   of `m` as before;
//! * `AddEdge(base → derived)` can only change `lookup[d, m]` for `d ∈
//!   {derived} ∪ derived(derived)`: such an edit changes which
//!   definitions are visible (and which classes are virtual bases)
//!   only inside that closure. A lookup entry at `d` depends on `d`'s
//!   ancestor set and on `is_virtual_base_of(v, ldc)` facts for those
//!   ancestors — for any class outside the closure, neither changes.
//!
//! The dirty set is recomputed in topological order, reusing every
//! untouched red/blue abstraction in the cache; on large hierarchies a
//! single-edge edit recomputes a small closure instead of the whole
//! table (experiment E18 quantifies the win). The edit-sequence
//! proptests and differential suite pin the equivalence
//! `engine ≡ from-scratch LookupTable ≡ subobject oracle`.
//!
//! # Concurrency model
//!
//! Queries ([`lookup`](LookupEngine::lookup),
//! [`entry`](LookupEngine::entry),
//! [`lookup_batch`](LookupEngine::lookup_batch)) take `&self` and are
//! safe to issue from many threads: the cache is sharded behind
//! `RwLock`s and all statistics are atomic. Edits take `&mut self`,
//! so the borrow checker serializes them against in-flight queries —
//! no query ever observes a half-applied edit.
//!
//! # Examples
//!
//! ```
//! use cpplookup_chg::fixtures;
//! use cpplookup_core::{LookupEngine, LookupOutcome};
//!
//! let mut engine = LookupEngine::new(fixtures::fig1());
//! let e = engine.chg().class_by_name("E").unwrap();
//! let m = engine.chg().member_by_name("m").unwrap();
//! // Figure 1: lookup(E, m) is ambiguous between A::m and D::m.
//! assert!(matches!(engine.lookup(e, m), LookupOutcome::Ambiguous { .. }));
//!
//! // Edit the hierarchy: declaring m directly in E resolves it.
//! engine.add_member(e, "m").unwrap();
//! match engine.lookup(e, m) {
//!     LookupOutcome::Resolved { class, .. } => assert_eq!(class, e),
//!     other => panic!("expected E::m, got {other:?}"),
//! }
//! assert_eq!(engine.generation(), 1);
//! ```

use std::sync::{Arc, RwLock};
use std::time::Instant;

use cpplookup_chg::{
    apply_edits, Access, Chg, ChgError, ClassId, Edit, Inheritance, MemberDecl, MemberId,
    MemberKind, Path,
};

use crate::api::MemberLookup;
use crate::fxmap::FxHashMap;
use crate::obs::{self, EngineMetrics};
use crate::result::{Entry, LookupOutcome};
use crate::table::{compute_entry_with, LookupOptions, LookupTable};

/// How the engine fills its cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineBacking {
    /// Compute the complete table up front, sequentially. Queries are
    /// pure cache reads; edits recompute their dirty set eagerly.
    #[default]
    Eager,
    /// Compute entries on first use (the memoising strategy of
    /// Section 5). Edits only drop their dirty set; recomputation
    /// happens lazily on the next query that needs it.
    Lazy,
    /// Like [`Eager`](EngineBacking::Eager), but the initial build
    /// shards member names across worker threads, and
    /// [`lookup_batch`](LookupEngine::lookup_batch) fans out across the
    /// same number of threads.
    Parallel {
        /// Worker thread count (clamped to at least 1).
        threads: usize,
    },
}

impl EngineBacking {
    /// Whether this backing keeps the cache complete: every visible
    /// `(class, member)` pair is cached, so a missing key *means*
    /// "member not visible" rather than "not computed yet".
    fn complete(self) -> bool {
        !matches!(self, EngineBacking::Lazy)
    }
}

/// Configuration for a [`LookupEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineOptions {
    /// Semantics options forwarded to the lookup algorithm.
    pub lookup: LookupOptions,
    /// Cache-filling strategy.
    pub backing: EngineBacking,
    /// Number of cache shards (clamped to at least 1). More shards
    /// reduce lock contention for concurrent lazy-mode queries.
    pub shards: usize,
    /// Whether to accumulate per-query wall-clock timing into
    /// [`EngineStats::lookup_nanos`]. Off by default: reading the clock
    /// twice per query is measurable on nanosecond-scale cache hits.
    pub timing: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            lookup: LookupOptions::default(),
            backing: EngineBacking::default(),
            shards: 16,
            timing: false,
        }
    }
}

impl EngineOptions {
    /// Options selecting the lazy backing.
    pub fn lazy() -> Self {
        EngineOptions {
            backing: EngineBacking::Lazy,
            ..Self::default()
        }
    }

    /// Options selecting the parallel backing with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        EngineOptions {
            backing: EngineBacking::Parallel { threads },
            ..Self::default()
        }
    }
}

/// A point-in-time snapshot of engine counters, from
/// [`LookupEngine::stats`].
///
/// This is the *compatibility* view: the counters themselves live in
/// the engine's metrics [`Registry`](crate::obs::Registry) (see
/// [`LookupEngine::metrics_registry`]), which additionally exposes
/// per-shard families, histograms, and the Prometheus/JSON exporters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total queries served (`lookup` + `entry` + batch elements).
    pub lookups: u64,
    /// Queries answered from the cache without computing anything.
    pub cache_hits: u64,
    /// Queries that had to compute at least their own entry (lazy
    /// backing only; a complete cache never misses).
    pub cache_misses: u64,
    /// Entries computed on demand by lazy-mode queries.
    pub entries_computed: u64,
    /// Cached entries dropped by edits.
    pub entries_invalidated: u64,
    /// Entries recomputed eagerly after edits (complete backings only).
    pub entries_recomputed: u64,
    /// Individual edits applied.
    pub edits: u64,
    /// The hierarchy's generation counter (rebuilds since the engine's
    /// initial graph).
    pub generation: u64,
    /// Entries currently cached (lazy mode also counts negative
    /// "not visible" slots).
    pub cached_entries: u64,
    /// Accumulated query wall-clock time; only meaningful when
    /// [`EngineOptions::timing`] is set.
    pub lookup_nanos: u64,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "lookups: {} ({} hits, {} misses)",
            self.lookups, self.cache_hits, self.cache_misses
        )?;
        writeln!(
            f,
            "entries: {} cached, {} computed lazily, {} invalidated, {} recomputed",
            self.cached_entries,
            self.entries_computed,
            self.entries_invalidated,
            self.entries_recomputed
        )?;
        write!(f, "edits: {} (generation {})", self.edits, self.generation)?;
        if self.lookup_nanos > 0 && self.lookups > 0 {
            write!(
                f,
                "\navg query time: {}ns",
                self.lookup_nanos / self.lookups
            )?;
        }
        Ok(())
    }
}

/// Cached value for one `(class, member)` pair; `Absent` is only stored
/// by the lazy backing (a complete cache encodes absence by omission).
#[derive(Clone, Debug)]
enum Slot {
    Present(Entry),
    Absent,
}

type Shard = RwLock<FxHashMap<(ClassId, MemberId), Slot>>;

/// A thread-safe member-lookup service over an owned, editable class
/// hierarchy. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct LookupEngine {
    chg: Chg,
    options: EngineOptions,
    shards: Vec<Shard>,
    metrics: EngineMetrics,
}

impl LookupEngine {
    /// Creates an engine over `chg` with default options (eager
    /// backing).
    pub fn new(chg: Chg) -> Self {
        Self::with_options(chg, EngineOptions::default())
    }

    /// Creates an engine with explicit options. Complete backings pay
    /// the full table build here.
    pub fn with_options(chg: Chg, options: EngineOptions) -> Self {
        let shard_count = options.shards.max(1);
        let shards = (0..shard_count)
            .map(|_| RwLock::new(FxHashMap::default()))
            .collect();
        let mut engine = LookupEngine {
            chg,
            options,
            shards,
            metrics: EngineMetrics::new(shard_count),
        };
        let start = Instant::now();
        let strategy = match options.backing {
            EngineBacking::Lazy => "lazy",
            EngineBacking::Eager => {
                let table = LookupTable::build_with(&engine.chg, options.lookup);
                engine.seed_from_table(table);
                "eager"
            }
            EngineBacking::Parallel { threads } => {
                let table = LookupTable::build_parallel(&engine.chg, options.lookup, threads);
                engine.seed_from_table(table);
                "parallel"
            }
        };
        engine
            .metrics
            .record_build(strategy, start.elapsed().as_nanos() as u64);
        engine
    }

    fn seed_from_table(&mut self, table: LookupTable) {
        for (c, members) in table.into_entries().into_iter().enumerate() {
            let c = ClassId::from_index(c);
            for (m, e) in members {
                let idx = self.shard_index(c, m);
                self.shards[idx]
                    .get_mut()
                    .expect("engine shard lock poisoned")
                    .insert((c, m), Slot::Present(e));
            }
        }
    }

    /// Seeds the memo cache with precomputed entries — the warm-start
    /// path for deserialized tables (e.g. a loaded snapshot). Seeded
    /// pairs are served as cache hits without recomputation; an edit
    /// invalidates them exactly like computed entries.
    ///
    /// The entries must be correct for the engine's current hierarchy
    /// and lookup options; the engine trusts them as it trusts its own
    /// memo.
    pub fn seed_entries(&mut self, entries: impl IntoIterator<Item = (ClassId, MemberId, Entry)>) {
        for (c, m, e) in entries {
            let idx = self.shard_index(c, m);
            self.shards[idx]
                .get_mut()
                .expect("engine shard lock poisoned")
                .insert((c, m), Slot::Present(e));
        }
    }

    fn shard_index(&self, c: ClassId, m: MemberId) -> usize {
        // Cheap deterministic mix; shard counts are small so low bits
        // suffice.
        let h = c
            .index()
            .wrapping_mul(0x9E37_79B1)
            .wrapping_add(m.index().wrapping_mul(0x85EB_CA77));
        h % self.shards.len()
    }

    /// The current hierarchy.
    pub fn chg(&self) -> &Chg {
        &self.chg
    }

    /// The options the engine was created with.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// The hierarchy's generation: 0 until the first edit, then one per
    /// [`apply`](LookupEngine::apply) call.
    pub fn generation(&self) -> u64 {
        self.chg.generation()
    }

    /// Reads `(c, m)` from the cache. Outer `None`: key not cached;
    /// inner `None`: cached knowledge that `m ∉ Members[c]`.
    fn cached(&self, c: ClassId, m: MemberId) -> Option<Option<Entry>> {
        self.cached_in(self.shard_index(c, m), c, m)
    }

    /// [`cached`](Self::cached) with a precomputed shard index.
    fn cached_in(&self, idx: usize, c: ClassId, m: MemberId) -> Option<Option<Entry>> {
        let shard = self.shards[idx].read().expect("engine shard lock poisoned");
        shard.get(&(c, m)).map(|slot| match slot {
            Slot::Present(e) => Some(e.clone()),
            Slot::Absent => None,
        })
    }

    /// The entry for `(c, m)`, computing it first under the lazy
    /// backing. `None` means `m ∉ Members[c]`.
    pub fn entry(&self, c: ClassId, m: MemberId) -> Option<Entry> {
        let start = self.options.timing.then(Instant::now);
        self.metrics.lookups.inc();
        self.metrics.emit(|| obs::Event::QueryStart {
            class: c.index() as u32,
            member: m.index() as u32,
        });
        let idx = self.shard_index(c, m);
        let result = match self.cached_in(idx, c, m) {
            Some(cached) => {
                self.metrics.record_hit(idx);
                cached
            }
            None if self.options.backing.complete() => {
                // A complete cache encodes "not visible" by omission.
                self.metrics.record_hit(idx);
                None
            }
            None => {
                self.metrics.record_miss(idx);
                self.compute_missing(c, m)
            }
        };
        if matches!(result, Some(Entry::Blue(_))) {
            self.metrics
                .record_ambiguity(c.index() as u32, m.index() as u32);
        }
        let nanos = match start {
            Some(start) => {
                let nanos = start.elapsed().as_nanos() as u64;
                self.metrics.record_latency(nanos);
                nanos
            }
            None => 0,
        };
        self.metrics.emit(|| obs::Event::QueryEnd {
            class: c.index() as u32,
            member: m.index() as u32,
            outcome: match &result {
                Some(Entry::Red { .. }) => "resolved",
                Some(Entry::Blue(_)) => "ambiguous",
                None => "not_found",
            },
            nanos,
        });
        result
    }

    /// Answers `lookup(c, m)`.
    pub fn lookup(&self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupOutcome::from_entry(self.entry(c, m).as_ref())
    }

    /// Answers a batch of queries, in order. Each distinct
    /// `(class, member)` pair probes the shard map once: the batch is
    /// sorted and deduplicated up front (which also gives repeated
    /// probes of one class shard/cache locality) and the outcome is
    /// fanned back out to every occurrence. Duplicates still count as
    /// one lookup and one cache hit each, so the metrics match the
    /// equivalent sequence of single queries. Under the parallel
    /// backing the distinct probes are chunked across worker threads.
    pub fn lookup_batch(&self, queries: &[(ClassId, MemberId)]) -> Vec<LookupOutcome> {
        let mut order: Vec<u32> = (0..queries.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let (c, m) = queries[i as usize];
            (c.index(), m.index())
        });
        let mut unique: Vec<(ClassId, MemberId)> = Vec::new();
        let mut slot_of = vec![0u32; queries.len()];
        for &i in &order {
            let q = queries[i as usize];
            if unique.last() != Some(&q) {
                unique.push(q);
            }
            slot_of[i as usize] = (unique.len() - 1) as u32;
        }
        let answers = self.lookup_unique(&unique);
        let mut answered = vec![false; unique.len()];
        let mut out = Vec::with_capacity(queries.len());
        for (i, &slot) in slot_of.iter().enumerate() {
            let slot = slot as usize;
            if std::mem::replace(&mut answered[slot], true) {
                // A duplicate is served from its twin's probe: account
                // for it as a lookup answered from cache.
                let (c, m) = queries[i];
                self.metrics.lookups.inc();
                self.metrics.record_hit(self.shard_index(c, m));
                if matches!(answers[slot], LookupOutcome::Ambiguous { .. }) {
                    self.metrics
                        .record_ambiguity(c.index() as u32, m.index() as u32);
                }
            }
            out.push(answers[slot].clone());
        }
        out
    }

    /// The probe stage of [`lookup_batch`](Self::lookup_batch):
    /// answers each (already deduplicated) query, chunked across worker
    /// threads under the parallel backing.
    fn lookup_unique(&self, unique: &[(ClassId, MemberId)]) -> Vec<LookupOutcome> {
        let threads = match self.options.backing {
            EngineBacking::Parallel { threads } => threads.max(1),
            _ => 1,
        };
        if threads == 1 || unique.len() < 2 * threads {
            return unique.iter().map(|&(c, m)| self.lookup(c, m)).collect();
        }
        let chunk = unique.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = unique
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&(c, m)| self.lookup(c, m))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    }

    /// Recovers the winning definition path for `(c, m)`, like
    /// [`LookupTable::resolve_path`]. The engine owns its hierarchy, so
    /// no `&Chg` parameter is needed.
    pub fn resolve_path(&self, c: ClassId, m: MemberId) -> Option<Path> {
        let mut rev = vec![c];
        let mut cur = c;
        loop {
            match self.entry(cur, m)? {
                Entry::Red { via: Some(x), .. } => {
                    rev.push(x);
                    cur = x;
                }
                Entry::Red { via: None, .. } => break,
                Entry::Blue(_) => return None,
            }
        }
        rev.reverse();
        Some(Path::new(&self.chg, rev).expect("parent pointers follow real edges"))
    }

    /// Lazy-mode fill: computes the entries of `c`'s uncached ancestors
    /// (bottom-up in topological order) and caches them, returning the
    /// entry for `(c, m)`.
    fn compute_missing(&self, c: ClassId, m: MemberId) -> Option<Entry> {
        let mut ancestors: Vec<ClassId> = self.chg.bases_of(c).collect();
        ancestors.push(c);
        ancestors.sort_by_key(|&a| self.chg.topo_position(a));
        let mut local: FxHashMap<ClassId, Option<Entry>> = FxHashMap::default();
        let mut fresh: Vec<(ClassId, Option<Entry>)> = Vec::new();
        for &a in &ancestors {
            if let Some(cached) = self.cached(a, m) {
                local.insert(a, cached);
                continue;
            }
            // Every direct base of `a` is an ancestor of `c` with a
            // smaller topological position, so it is already in `local`.
            let e = compute_entry_with(&self.chg, self.options.lookup, a, m, |b| {
                local.get(&b).and_then(|o| o.as_ref())
            });
            fresh.push((a, e.clone()));
            local.insert(a, e);
        }
        for (a, e) in fresh {
            let slot = match e {
                Some(e) => Slot::Present(e),
                None => Slot::Absent,
            };
            let mut shard = self.shards[self.shard_index(a, m)]
                .write()
                .expect("engine shard lock poisoned");
            // A racing query may have cached this first; entries are
            // deterministic, so first write wins and the counter only
            // tracks actual insertions.
            if let std::collections::hash_map::Entry::Vacant(v) = shard.entry((a, m)) {
                v.insert(slot);
                drop(shard);
                self.metrics
                    .record_computed(a.index() as u32, m.index() as u32);
            }
        }
        local
            .remove(&c)
            .expect("query class is an ancestor of itself")
    }

    /// Applies a batch of hierarchy edits as one transaction: the graph
    /// is rebuilt once (generation + 1) and the combined dirty set is
    /// invalidated, then recomputed in topological order under complete
    /// backings (the lazy backing recomputes on demand).
    ///
    /// # Errors
    ///
    /// Returns the first [`ChgError`] produced by validation. On error
    /// the engine is unchanged — hierarchy, cache, and counters.
    pub fn apply(&mut self, edits: &[Edit]) -> Result<(), ChgError> {
        let new_chg = apply_edits(&self.chg, edits)?;
        let dirty = dirty_set(&new_chg, edits);
        self.chg = new_chg;
        let mut invalidated = 0;
        for &(c, m) in &dirty {
            let idx = self.shard_index(c, m);
            let removed = self.shards[idx]
                .get_mut()
                .expect("engine shard lock poisoned")
                .remove(&(c, m));
            invalidated += u64::from(removed.is_some());
        }
        let recomputed = if self.options.backing.complete() {
            self.recompute(&dirty)
        } else {
            0
        };
        self.metrics.record_edit(
            edits.len(),
            dirty.len(),
            invalidated,
            recomputed,
            self.chg.generation(),
        );
        Ok(())
    }

    /// Recomputes the (invalidated) dirty entries against the updated
    /// hierarchy, reusing every untouched cached entry, and returns how
    /// many were recomputed. `dirty` must be sorted by member and
    /// topological position — [`dirty_set`]'s order.
    fn recompute(&mut self, dirty: &[(ClassId, MemberId)]) -> u64 {
        let mut recomputed = 0;
        let mut i = 0;
        while i < dirty.len() {
            let m = dirty[i].1;
            // One member's run of dirty classes, already topologically
            // sorted: stage base entries locally so each recomputation
            // sees its member's fresh values.
            let mut local: FxHashMap<ClassId, Option<Entry>> = FxHashMap::default();
            while i < dirty.len() && dirty[i].1 == m {
                let c = dirty[i].0;
                for spec in self.chg.direct_bases(c) {
                    local
                        .entry(spec.base)
                        .or_insert_with(|| self.cached(spec.base, m).flatten());
                }
                let e = compute_entry_with(&self.chg, self.options.lookup, c, m, |b| {
                    local.get(&b).and_then(|o| o.as_ref())
                });
                if let Some(entry) = &e {
                    let idx = self.shard_index(c, m);
                    self.shards[idx]
                        .get_mut()
                        .expect("engine shard lock poisoned")
                        .insert((c, m), Slot::Present(entry.clone()));
                    recomputed += 1;
                }
                local.insert(c, e);
                i += 1;
            }
        }
        recomputed
    }

    /// Adds a new class (no bases, no members). Returns its id.
    ///
    /// # Errors
    ///
    /// Never fails today (adding a class cannot invalidate the graph);
    /// the `Result` matches the other edit methods.
    pub fn add_class(&mut self, name: &str) -> Result<ClassId, ChgError> {
        self.apply(&[Edit::AddClass { name: name.into() }])?;
        Ok(self.chg.class_by_name(name).expect("class was just added"))
    }

    /// Declares a public non-static data member `name` in `class`,
    /// returning the interned member id.
    ///
    /// # Errors
    ///
    /// See [`Edit::apply`].
    pub fn add_member(&mut self, class: ClassId, name: &str) -> Result<MemberId, ChgError> {
        self.add_member_with(class, name, MemberDecl::public(MemberKind::Data))
    }

    /// Declares a member with an explicit [`MemberDecl`].
    ///
    /// # Errors
    ///
    /// See [`Edit::apply`].
    pub fn add_member_with(
        &mut self,
        class: ClassId,
        name: &str,
        decl: MemberDecl,
    ) -> Result<MemberId, ChgError> {
        self.apply(&[Edit::AddMember {
            class,
            name: name.into(),
            decl,
        }])?;
        Ok(self
            .chg
            .member_by_name(name)
            .expect("member was just added"))
    }

    /// Adds a public inheritance edge `base → derived`.
    ///
    /// # Errors
    ///
    /// See [`Edit::apply`]; cycles are rejected with the engine
    /// unchanged.
    pub fn add_edge(
        &mut self,
        derived: ClassId,
        base: ClassId,
        inheritance: Inheritance,
    ) -> Result<(), ChgError> {
        self.apply(&[Edit::AddEdge {
            derived,
            base,
            inheritance,
            access: Access::Public,
        }])
    }

    /// A snapshot of the engine's counters (compatibility view of the
    /// metrics registry).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            lookups: self.metrics.lookups.get(),
            cache_hits: self.metrics.hits.get(),
            cache_misses: self.metrics.misses.get(),
            entries_computed: self.metrics.computed.get(),
            entries_invalidated: self.metrics.invalidated.get(),
            entries_recomputed: self.metrics.recomputed.get(),
            edits: self.metrics.edits.get(),
            generation: self.chg.generation(),
            cached_entries: self.cached_entries(),
            lookup_nanos: self.metrics.lookup_nanos.get(),
        }
    }

    fn cached_entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().expect("engine shard lock poisoned").len() as u64)
            .sum()
    }

    /// The engine's metrics registry. Summary counters
    /// (`engine_lookups_total`, `engine_cache_hits_total`, …) are always
    /// registered; with the `obs` feature the registry also carries
    /// per-shard hit/miss families, the lookup-latency histogram, and
    /// the per-edit dirty/invalidation size histograms.
    pub fn metrics_registry(&self) -> &Arc<obs::Registry> {
        self.metrics.registry()
    }

    /// A point-in-time export of every engine metric, with the
    /// cache-residency gauge refreshed. Render it with
    /// [`render_text`](obs::Snapshot::render_text),
    /// [`render_prometheus`](obs::Snapshot::render_prometheus), or
    /// [`render_json`](obs::Snapshot::render_json).
    pub fn metrics_snapshot(&self) -> obs::Snapshot {
        self.metrics.snapshot(self.cached_entries())
    }

    /// Installs an [`EventSink`](obs::EventSink) that receives
    /// structured trace events (query start/end, per-shard cache
    /// hits/misses, node visits, ambiguity encounters, edit
    /// applications); `None` removes it. Without the `obs` feature this
    /// is a no-op.
    pub fn set_event_sink(&self, sink: Option<Arc<dyn obs::EventSink>>) {
        self.metrics.set_sink(sink);
    }
}

impl MemberLookup for LookupEngine {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupEngine::lookup(self, c, m)
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        LookupEngine::entry(self, c, m)
    }

    fn resolve_path(&mut self, _chg: &Chg, c: ClassId, m: MemberId) -> Option<Path> {
        // The engine owns its hierarchy; the parameter exists only for
        // signature uniformity.
        LookupEngine::resolve_path(self, c, m)
    }
}

/// The set of `(class, member)` cache keys an edit batch can change,
/// sorted by member then topological position (the order
/// [`LookupEngine::recompute`] requires). Derived from the *post-edit*
/// hierarchy so newly visible members are included. Conservative: a
/// dirty entry may recompute to its old value.
pub(crate) fn dirty_set(new: &Chg, edits: &[Edit]) -> Vec<(ClassId, MemberId)> {
    let mut dirty: std::collections::HashSet<(ClassId, MemberId)> =
        std::collections::HashSet::new();
    for edit in edits {
        match edit {
            Edit::AddClass { .. } => {}
            Edit::AddMember { class, name, .. } => {
                let m = new
                    .member_by_name(name)
                    .expect("member interned by the edit");
                dirty.insert((*class, m));
                dirty.extend(new.derived_of(*class).map(|d| (d, m)));
            }
            Edit::AddEdge { derived, .. } => {
                for d in std::iter::once(*derived).chain(new.derived_of(*derived)) {
                    dirty.extend(
                        new.member_ids()
                            .filter(|&m| new.is_member_visible(d, m))
                            .map(|m| (d, m)),
                    );
                }
            }
        }
    }
    let mut out: Vec<(ClassId, MemberId)> = dirty.into_iter().collect();
    out.sort_by_key(|&(c, m)| (m.index(), new.topo_position(c)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, ChgBuilder};

    fn backings() -> [EngineOptions; 3] {
        [
            EngineOptions::default(),
            EngineOptions::lazy(),
            EngineOptions::parallel(4),
        ]
    }

    fn assert_engine_matches_table(engine: &LookupEngine, label: &str) {
        let table = LookupTable::build_with(engine.chg(), engine.options().lookup);
        for c in engine.chg().classes() {
            for m in engine.chg().member_ids() {
                assert_eq!(
                    engine.entry(c, m).as_ref(),
                    table.entry(c, m),
                    "{label}: mismatch at ({}, {})",
                    engine.chg().class_name(c),
                    engine.chg().member_name(m)
                );
            }
        }
    }

    #[test]
    fn all_backings_match_table_on_fixtures() {
        for fixture in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::static_override_mix(),
        ] {
            for options in backings() {
                let engine = LookupEngine::with_options(fixture.clone(), options);
                assert_engine_matches_table(&engine, &format!("{:?}", options.backing));
            }
        }
    }

    #[test]
    fn add_member_invalidates_derived_closure_only() {
        // fig2: A ← B ← {C, D} ← E, with m in A and D.
        let mut engine = LookupEngine::new(fixtures::fig2());
        let g = engine.chg();
        let b = g.class_by_name("B").unwrap();
        let m = g.member_by_name("m").unwrap();
        let dirty = dirty_set(
            engine.chg(),
            &[Edit::AddMember {
                class: b,
                name: "m".into(),
                decl: MemberDecl::public(MemberKind::Data),
            }],
        );
        // Dirty: B and everything below it, for m only.
        let names: Vec<&str> = dirty
            .iter()
            .map(|&(c, _)| engine.chg().class_name(c))
            .collect();
        assert_eq!(names, ["B", "C", "D", "E"]);
        assert!(dirty.iter().all(|&(_, dm)| dm == m));

        engine.add_member(b, "m").unwrap();
        assert_engine_matches_table(&engine, "after add_member");
        let stats = engine.stats();
        assert_eq!(stats.entries_invalidated, 4);
        assert_eq!(stats.entries_recomputed, 4);
        assert_eq!(stats.generation, 1);
    }

    #[test]
    fn add_edge_dirty_set_on_fig9() {
        // fig9: adding an edge under E dirties only the new leaf.
        let g = fixtures::fig9();
        let e = g.class_by_name("E").unwrap();
        let chg2 = apply_edits(&g, &[Edit::AddClass { name: "F".into() }]).unwrap();
        let f = chg2.class_by_name("F").unwrap();
        let edit = Edit::AddEdge {
            derived: f,
            base: e,
            inheritance: Inheritance::NonVirtual,
            access: Access::Public,
        };
        let chg3 = apply_edits(&chg2, std::slice::from_ref(&edit)).unwrap();
        let m = chg3.member_by_name("m").unwrap();
        assert_eq!(dirty_set(&chg3, &[edit]), vec![(f, m)]);
    }

    #[test]
    fn add_class_dirties_nothing() {
        let mut engine = LookupEngine::new(fixtures::fig1());
        engine.add_class("Fresh").unwrap();
        let stats = engine.stats();
        assert_eq!(stats.entries_invalidated, 0);
        assert_eq!(stats.entries_recomputed, 0);
        assert_eq!(stats.generation, 1);
        assert_engine_matches_table(&engine, "after add_class");
    }

    #[test]
    fn incremental_equals_rebuild_per_edit_kind() {
        for options in backings() {
            let mut engine = LookupEngine::with_options(fixtures::fig1(), options);
            let e = engine.chg().class_by_name("E").unwrap();
            let c = engine.chg().class_by_name("C").unwrap();

            let f = engine.add_class("F").unwrap();
            assert_engine_matches_table(&engine, "AddClass");

            engine.add_member(f, "fresh").unwrap();
            engine.add_member(c, "m").unwrap();
            assert_engine_matches_table(&engine, "AddMember");

            engine.add_edge(f, e, Inheritance::NonVirtual).unwrap();
            assert_engine_matches_table(&engine, "AddEdge");
            assert_eq!(engine.generation(), 4);
        }
    }

    #[test]
    fn rejected_edit_leaves_engine_unchanged() {
        let mut engine = LookupEngine::new(fixtures::fig1());
        let a = engine.chg().class_by_name("A").unwrap();
        let e = engine.chg().class_by_name("E").unwrap();
        let before = engine.stats();
        let err = engine.add_edge(a, e, Inheritance::NonVirtual).unwrap_err();
        assert!(matches!(err, ChgError::Cycle { .. }));
        assert_eq!(engine.generation(), 0);
        let after = engine.stats();
        assert_eq!(after.edits, before.edits);
        assert_eq!(after.entries_invalidated, before.entries_invalidated);
        assert_engine_matches_table(&engine, "after rejected edit");
    }

    #[test]
    fn batch_matches_singles() {
        let g = fixtures::fig3();
        let queries: Vec<(ClassId, MemberId)> = g
            .classes()
            .flat_map(|c| g.member_ids().map(move |m| (c, m)))
            .collect();
        let singles: Vec<LookupOutcome> = {
            let engine = LookupEngine::new(g.clone());
            queries.iter().map(|&(c, m)| engine.lookup(c, m)).collect()
        };
        for options in backings() {
            let engine = LookupEngine::with_options(g.clone(), options);
            // Repeat the batch so it exceeds the parallel fan-out
            // threshold.
            let big: Vec<_> = queries
                .iter()
                .chain(queries.iter())
                .chain(queries.iter())
                .copied()
                .collect();
            let batched = engine.lookup_batch(&big);
            for (i, outcome) in batched.iter().enumerate() {
                assert_eq!(
                    outcome,
                    &singles[i % singles.len()],
                    "{:?}",
                    options.backing
                );
            }
            assert_eq!(engine.stats().lookups, big.len() as u64);
        }
    }

    #[test]
    fn batch_dedupes_duplicate_probes() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let engine = LookupEngine::with_options(g, EngineOptions::lazy());
        let out = engine.lookup_batch(&[(h, foo); 8]);
        assert!(out.iter().all(|o| o == &out[0]));
        let stats = engine.stats();
        // One real probe (a lazy-mode miss); the other seven are served
        // from it but still count as lookups answered from cache.
        assert_eq!(stats.lookups, 8);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 7);
    }

    #[test]
    fn concurrent_lookups_are_consistent() {
        for options in backings() {
            let engine = LookupEngine::with_options(fixtures::fig3(), options);
            let table = LookupTable::build(engine.chg());
            let queries: Vec<(ClassId, MemberId)> = engine
                .chg()
                .classes()
                .flat_map(|c| engine.chg().member_ids().map(move |m| (c, m)))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        for &(c, m) in &queries {
                            assert_eq!(engine.lookup(c, m), table.lookup(c, m));
                        }
                    });
                }
            });
            let stats = engine.stats();
            assert_eq!(stats.lookups, 8 * queries.len() as u64);
        }
    }

    #[test]
    fn lazy_counters_track_hits_and_misses() {
        let engine = LookupEngine::with_options(fixtures::fig3(), EngineOptions::lazy());
        let h = engine.chg().class_by_name("H").unwrap();
        let foo = engine.chg().member_by_name("foo").unwrap();
        assert_eq!(engine.stats().cached_entries, 0);
        engine.lookup(h, foo);
        let s1 = engine.stats();
        assert_eq!(s1.cache_misses, 1);
        assert!(s1.entries_computed >= 1);
        engine.lookup(h, foo);
        let s2 = engine.stats();
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(s2.entries_computed, s1.entries_computed, "memoised");
    }

    #[test]
    fn eager_cache_never_misses() {
        let engine = LookupEngine::new(fixtures::fig1());
        let g = engine.chg();
        let a = g.class_by_name("A").unwrap();
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        engine.lookup(e, m);
        engine.lookup(a, m);
        // A query for a member that is nowhere visible is still a hit:
        // the complete cache *knows* it is absent.
        let engine2 = {
            let mut b = ChgBuilder::from_chg(g);
            b.intern_member_name("ghost");
            LookupEngine::new(b.finish().unwrap())
        };
        let ghost = engine2.chg().member_by_name("ghost").unwrap();
        assert_eq!(engine2.lookup(a, ghost), LookupOutcome::NotFound);
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(engine2.stats().cache_misses, 0);
    }

    #[test]
    fn timing_accumulates_when_enabled() {
        let options = EngineOptions {
            timing: true,
            ..EngineOptions::default()
        };
        let engine = LookupEngine::with_options(fixtures::fig3(), options);
        let h = engine.chg().class_by_name("H").unwrap();
        let foo = engine.chg().member_by_name("foo").unwrap();
        for _ in 0..50 {
            engine.lookup(h, foo);
        }
        let stats = engine.stats();
        assert!(stats.lookup_nanos > 0);
        assert!(stats.to_string().contains("avg query time"));
    }

    #[test]
    fn resolve_path_through_edits() {
        let mut engine = LookupEngine::new(fixtures::fig2());
        let e = engine.chg().class_by_name("E").unwrap();
        let m = engine.chg().member_by_name("m").unwrap();
        assert_eq!(
            engine
                .resolve_path(e, m)
                .unwrap()
                .display(engine.chg())
                .to_string(),
            "DE"
        );
        // Declaring m in E moves the winning definition to E itself.
        engine.add_member(e, "m").unwrap();
        assert_eq!(
            engine
                .resolve_path(e, m)
                .unwrap()
                .display(engine.chg())
                .to_string(),
            "E"
        );
    }

    #[test]
    fn trait_impl_delegates() {
        let mut engine = LookupEngine::new(fixtures::fig3());
        let g = engine.chg().clone();
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let l: &mut dyn MemberLookup = &mut engine;
        assert!(l.lookup(h, foo).is_resolved());
        assert_eq!(
            l.resolve_path(&g, h, foo).unwrap().display(&g).to_string(),
            "GH"
        );
    }

    #[test]
    fn long_edit_session_stays_consistent() {
        // A miniature of experiment E18: grow a hierarchy one edit at a
        // time, checking the engine against a from-scratch rebuild after
        // every step.
        for options in backings() {
            let mut b = ChgBuilder::new();
            let root = b.class("K0");
            b.member(root, "m0");
            let mut engine = LookupEngine::with_options(b.finish().unwrap(), options);
            for i in 1..12 {
                let c = engine.add_class(&format!("K{i}")).unwrap();
                let base = engine.chg().class_by_name(&format!("K{}", i / 2)).unwrap();
                let inh = if i % 3 == 0 {
                    Inheritance::Virtual
                } else {
                    Inheritance::NonVirtual
                };
                engine.add_edge(c, base, inh).unwrap();
                if i % 2 == 0 {
                    engine.add_member(c, &format!("m{}", i % 4)).unwrap();
                }
            }
            assert_engine_matches_table(&engine, &format!("{:?}", options.backing));
            assert!(engine.stats().edits > 20);
        }
    }
}
