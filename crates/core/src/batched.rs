//! Single-sweep batched table construction.
//!
//! The per-class eager builder ([`LookupTable::build_reference`]) and
//! the per-member column workers both pay for `Vec`/`BTreeSet` clones
//! and hash probes on every propagation step. This module reaches the
//! paper's `O((|M|+|N|)·(|N|+|E|))` bound in practice by combining:
//!
//! 1. the [`Csr`] flat view of the hierarchy — one contiguous
//!    rank-ordered adjacency shared by every builder;
//! 2. **member-frontier pruning**: per member, the bitset (over topo
//!    ranks) of classes where the member can possibly be visible — the
//!    descendants-or-self closure of its declaring classes. The sweep
//!    touches only live `(class, member)` pairs, never `|N|·|M|`;
//! 3. an **arena-interned abstraction store** ([`Pool`]): blue
//!    `leastVirtual` sets and red `(ldc, leastVirtual)` pairs are
//!    deduplicated into bump arenas addressed by `u32` handles, so the
//!    hot merge loop compares and copies handles instead of cloning
//!    sets;
//! 4. a **work-stealing parallel sweep**: member columns, ordered by
//!    frontier size, are drained from a shared atomic cursor by
//!    `threads` workers, each owning its private [`ColumnSpace`].
//!
//! All builders produce entries byte-identical to the reference
//! builder (asserted by `tests/build_equiv.rs` and the corpus golden
//! set).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cpplookup_chg::fxmap::{fxhash, FxHashMap};
use cpplookup_chg::{BitSet, Chg, ClassId, Csr, Inheritance, MemberId};

use crate::abstraction::{LeastVirtual, RedAbs, StaticRule};
use crate::result::Entry;
use crate::table::LookupOptions;

/// Handle of the interned empty `leastVirtual` set.
const EMPTY_SET: u32 = 0;

/// Sentinel for "no via edge" in [`Slot::Red`] (a generated definition).
const NO_VIA: u32 = u32::MAX;

/// Arena-interned store of the abstractions flowing through one sweep.
///
/// Sets are stored as sorted, deduplicated slices in one bump vector
/// and addressed by dense `u32` handles; equal sets share a handle, so
/// set equality — the common case on diamond-free stretches of the
/// hierarchy — is a `u32` comparison, and extension through a
/// non-virtual edge is the identity on the handle.
struct Pool {
    /// Bump storage for all interned set elements.
    elems: Vec<LeastVirtual>,
    /// Handle → `(start, len)` into `elems`. Handle 0 is the empty set.
    sets: Vec<(u32, u32)>,
    /// Content hash → candidate handles (collisions resolved by slice
    /// comparison), so dedup does not duplicate the keys.
    set_ids: FxHashMap<u64, Vec<u32>>,
    /// Interned red abstractions: `(abs, shared-set handle)` pairs.
    reds: Vec<(RedAbs, u32)>,
    /// Dedup index for `reds`.
    red_ids: FxHashMap<(RedAbs, u32), u32>,
}

impl Pool {
    fn new() -> Self {
        let mut set_ids: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let empty: &[LeastVirtual] = &[];
        set_ids.insert(fxhash(&empty), vec![EMPTY_SET]);
        Pool {
            elems: Vec::new(),
            sets: vec![(0, 0)],
            set_ids,
            reds: Vec::new(),
            red_ids: FxHashMap::default(),
        }
    }

    /// The elements of set `h`, sorted ascending and deduplicated.
    fn set(&self, h: u32) -> &[LeastVirtual] {
        let (start, len) = self.sets[h as usize];
        &self.elems[start as usize..(start + len) as usize]
    }

    /// Interns a sorted, deduplicated slice, returning its handle.
    fn intern_sorted(&mut self, lvs: &[LeastVirtual]) -> u32 {
        debug_assert!(lvs.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
        if lvs.is_empty() {
            return EMPTY_SET;
        }
        let hash = fxhash(&lvs);
        if let Some(candidates) = self.set_ids.get(&hash) {
            for &h in candidates {
                if self.set(h) == lvs {
                    return h;
                }
            }
        }
        let start = u32::try_from(self.elems.len()).expect("abstraction arena overflow");
        self.elems.extend_from_slice(lvs);
        let h = u32::try_from(self.sets.len()).expect("set handle overflow");
        self.sets.push((start, lvs.len() as u32));
        self.set_ids.entry(hash).or_default().push(h);
        h
    }

    /// Interns a red `(abs, shared)` pair, returning its handle.
    fn intern_red(&mut self, abs: RedAbs, shared: u32) -> u32 {
        if let Some(&h) = self.red_ids.get(&(abs, shared)) {
            return h;
        }
        let h = u32::try_from(self.reds.len()).expect("red handle overflow");
        self.reds.push((abs, shared));
        self.red_ids.insert((abs, shared), h);
        h
    }

    /// The `(abs, shared-set handle)` behind a red handle.
    fn red(&self, h: u32) -> (RedAbs, u32) {
        self.reds[h as usize]
    }

    /// Handle of set `h` minus `lv`; identity when `lv` is absent.
    fn remove_lv(&mut self, h: u32, lv: LeastVirtual) -> u32 {
        let stripped: Vec<LeastVirtual> = {
            let s = self.set(h);
            match s.binary_search(&lv) {
                Err(_) => return h,
                Ok(i) => {
                    let mut v = Vec::with_capacity(s.len() - 1);
                    v.extend_from_slice(&s[..i]);
                    v.extend_from_slice(&s[i + 1..]);
                    v
                }
            }
        };
        self.intern_sorted(&stripped)
    }

    /// Extends every element of set `h` through an edge to `base`
    /// (Definition 15 applied element-wise). Non-virtual edges are the
    /// identity on whole sets; a virtual edge only rewrites `Ω` to
    /// `Class(base)` — and `Ω` sorts first, so "contains `Ω`" is a
    /// first-element check.
    fn extend_set(&mut self, h: u32, base: ClassId, is_virtual: bool) -> u32 {
        if !is_virtual {
            return h;
        }
        let extended: Vec<LeastVirtual> = {
            let s = self.set(h);
            if s.first() != Some(&LeastVirtual::Omega) {
                return h;
            }
            let rest = &s[1..];
            let nb = LeastVirtual::Class(base);
            match rest.binary_search(&nb) {
                Ok(_) => rest.to_vec(),
                Err(i) => {
                    let mut v = Vec::with_capacity(rest.len() + 1);
                    v.extend_from_slice(&rest[..i]);
                    v.push(nb);
                    v.extend_from_slice(&rest[i..]);
                    v
                }
            }
        };
        self.intern_sorted(&extended)
    }
}

/// Lemma 4 applied to one abstraction: whether the red `(abs, shared)`
/// dominates the definition abstracted by `b`.
#[inline]
fn dominates_one(chg: &Chg, abs: RedAbs, shared: &[LeastVirtual], b: LeastVirtual) -> bool {
    match b {
        LeastVirtual::Class(v) => {
            chg.is_virtual_base_of(v, abs.ldc) || abs.lv == b || shared.binary_search(&b).is_ok()
        }
        LeastVirtual::Omega => false,
    }
}

/// Whether red candidate `cand` dominates *all* definitions of `other`
/// (its representative lv plus its shared set).
fn dominates_all(chg: &Chg, pool: &Pool, cand: BCand, other: BCand) -> bool {
    let shared = pool.set(cand.shared);
    std::iter::once(other.abs.lv)
        .chain(pool.set(other.shared).iter().copied())
        .all(|b| dominates_one(chg, cand.abs, shared, b))
}

/// A candidate red in handle form: the shared set lives in the pool and
/// — like `RedCand` in the reference merge — excludes `abs.lv`.
#[derive(Clone, Copy)]
struct BCand {
    abs: RedAbs,
    via: ClassId,
    shared: u32,
}

/// The table entry for one `(class, member)` pair in handle form.
#[derive(Clone, Copy)]
enum Slot {
    /// Unambiguous: a red handle plus the via-edge class index
    /// ([`NO_VIA`] for a generated definition).
    Red { red: u32, via: u32 },
    /// Ambiguous: the handle of the blue witness set.
    Blue { set: u32 },
}

/// Figure 8's per-member merge (lines 14–44) over pool handles —
/// semantically identical to `table::Merge`, but merge/demote is handle
/// bookkeeping instead of `BTreeSet` cloning.
#[derive(Default)]
struct BMerge {
    candidate: Option<BCand>,
    /// The `toBeDominated` set, kept sorted + deduplicated.
    demoted: Vec<LeastVirtual>,
    #[cfg(feature = "obs")]
    work: Work,
}

/// Local merge work tallies, flushed to the propagation counters by
/// [`BMerge::finish_slot`] exactly like the reference merge.
#[cfg(feature = "obs")]
#[derive(Clone, Copy, Default)]
struct Work {
    reds: u32,
    blues: u32,
    demotions: u32,
}

impl BMerge {
    /// Inserts `lv` into the sorted `toBeDominated` set.
    fn demote(&mut self, lv: LeastVirtual) {
        if let Err(i) = self.demoted.binary_search(&lv) {
            self.demoted.insert(i, lv);
        }
    }

    /// Lines 18–28: a red (already extended through the edge) arrives
    /// from direct base `via`. `shared` may still contain `abs.lv`; it
    /// is stripped here, mirroring the reference merge.
    #[allow(clippy::too_many_arguments)] // mirrors `Merge::add_red` plus the pool
    fn add_red(
        &mut self,
        pool: &mut Pool,
        chg: &Chg,
        m: MemberId,
        abs: RedAbs,
        shared: u32,
        via: ClassId,
        statics: StaticRule,
    ) {
        #[cfg(feature = "obs")]
        {
            self.work.reds += 1;
        }
        let incoming = BCand {
            abs,
            via,
            shared: pool.remove_lv(shared, abs.lv),
        };
        let Some(cand) = self.candidate.take() else {
            self.candidate = Some(incoming);
            return;
        };
        let mergeable = statics == StaticRule::Cpp
            && cand.abs.ldc == abs.ldc
            && chg
                .member_decl(abs.ldc, m)
                .is_some_and(|d| d.kind.is_static_for_lookup());
        if mergeable {
            // Definition 17, condition 2: co-maximal definitions of the
            // same static member stay live as one set.
            let merged: Vec<LeastVirtual> = {
                let a = pool.set(cand.shared);
                let b = pool.set(incoming.shared);
                let mut v = Vec::with_capacity(a.len() + b.len() + 1);
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                v.push(incoming.abs.lv);
                v.sort_unstable();
                v.dedup();
                v.retain(|&lv| lv != cand.abs.lv);
                v
            };
            let shared = pool.intern_sorted(&merged);
            self.candidate = Some(BCand { shared, ..cand });
        } else if dominates_all(chg, pool, incoming, cand) {
            self.candidate = Some(incoming);
        } else if !dominates_all(chg, pool, cand, incoming) {
            // Neither dominates: everything becomes blue.
            #[cfg(feature = "obs")]
            {
                self.work.demotions += 1;
            }
            for c in [cand, incoming] {
                self.demote(c.abs.lv);
                let (lo, len) = pool.sets[c.shared as usize];
                for i in lo..lo + len {
                    self.demote(pool.elems[i as usize]);
                }
            }
            // candidate stays None (the paper's `nocandidate := true`).
        } else {
            // The incoming definition is dominated — killed.
            self.candidate = Some(cand);
        }
    }

    /// Lines 29–32: one blue element, already extended through the edge.
    fn add_blue(&mut self, lv: LeastVirtual) {
        #[cfg(feature = "obs")]
        {
            self.work.blues += 1;
        }
        self.demote(lv);
    }

    /// Lines 34–44: resolve the merge into a slot, flushing the work
    /// tallies exactly like the reference merge.
    fn finish_slot(self, pool: &mut Pool, chg: &Chg) -> Slot {
        #[cfg(feature = "obs")]
        let work = self.work;
        let slot = match self.candidate {
            None => Slot::Blue {
                set: pool.intern_sorted(&self.demoted),
            },
            Some(cand) => {
                let mut surviving = Vec::new();
                {
                    let shared = pool.set(cand.shared);
                    for &b in &self.demoted {
                        if !dominates_one(chg, cand.abs, shared, b) {
                            surviving.push(b);
                        }
                    }
                }
                if surviving.is_empty() {
                    Slot::Red {
                        red: pool.intern_red(cand.abs, cand.shared),
                        via: cand.via.index() as u32,
                    }
                } else {
                    surviving.push(cand.abs.lv);
                    surviving.extend_from_slice(pool.set(cand.shared));
                    surviving.sort_unstable();
                    surviving.dedup();
                    Slot::Blue {
                        set: pool.intern_sorted(&surviving),
                    }
                }
            }
        };
        #[cfg(feature = "obs")]
        crate::obs::propagation().flush_merge(
            work.reds,
            work.blues,
            work.demotions,
            matches!(slot, Slot::Blue { .. }),
        );
        slot
    }
}

/// Per-member visibility frontiers: for each member (in id order), the
/// bitset over topo ranks of the classes where it can be visible — the
/// descendants-or-self closure of its declaring classes.
///
/// Returns the frontiers plus the live-pair count (`Σ |frontier|`); the
/// pruned-pair count is `|N|·|M| − live`.
fn member_frontiers(chg: &Chg, csr: &Csr) -> (Vec<BitSet>, u64) {
    let n = csr.class_count();
    let mut frontiers = Vec::with_capacity(chg.member_name_count());
    let mut live = 0u64;
    let mut stack: Vec<u32> = Vec::new();
    for m in chg.member_ids() {
        let mut f = BitSet::new(n);
        for &c in chg.declaring_classes(m) {
            let r = csr.rank_of(c);
            if f.insert(r as usize) {
                stack.push(r);
            }
        }
        while let Some(r) = stack.pop() {
            for &child in csr.children(r) {
                if f.insert(child as usize) {
                    stack.push(child);
                }
            }
        }
        live += f.len() as u64;
        frontiers.push(f);
    }
    (frontiers, live)
}

/// The reusable per-worker state of the sweep: a dense rank-indexed
/// slot array with epoch stamping (one epoch per member, so no clearing
/// between columns) plus the abstraction pool.
struct ColumnSpace {
    slots: Vec<Slot>,
    /// `stamp[r] == epoch` iff `slots[r]` belongs to the current member.
    /// An unstamped parent means the member is not visible there.
    stamp: Vec<u32>,
    epoch: u32,
    pool: Pool,
}

impl ColumnSpace {
    fn new(classes: usize) -> Self {
        ColumnSpace {
            slots: vec![Slot::Blue { set: EMPTY_SET }; classes],
            stamp: vec![u32::MAX; classes],
            epoch: 0,
            pool: Pool::new(),
        }
    }

    /// The handle-identity fast path for one `(class, member)` pair:
    /// when every live parent carries the *same* red handle and every
    /// edge extension is the identity (non-virtual, or nothing to
    /// rewrite from `Ω`), the full merge provably reproduces that very
    /// handle — so the slot is a handle copy plus a via pick, with no
    /// pool probe at all. Returns `None` when the slow merge is needed.
    ///
    /// Correctness (mirroring `BMerge` case by case): with one live
    /// parent the candidate is the parent's red unchanged. With several
    /// equal reds whose `lv` is a named class, either the static-merge
    /// rule keeps the first candidate (union of identical shared sets)
    /// or dominance replaces it with each equal incomer — same handle
    /// either way, only the via differs (first vs. last parent). Equal
    /// reds at `Ω` are mutually *non*-dominating (Lemma 4 has no rule
    /// for `Ω`) and must demote, so that case falls through.
    fn try_fast_slot(
        &mut self,
        chg: &Chg,
        csr: &Csr,
        options: LookupOptions,
        m: MemberId,
        r: usize,
    ) -> Option<Slot> {
        let mut first: Option<(u32, ClassId)> = None;
        let mut last_base = ClassId::from_index(0);
        let mut live = 0u32;
        for edge in csr.parents(r as u32) {
            if self.stamp[edge.base_rank as usize] != self.epoch {
                continue;
            }
            let Slot::Red { red, .. } = self.slots[edge.base_rank as usize] else {
                return None; // blue parents always take the slow merge
            };
            let (abs, shared) = self.pool.red(red);
            if edge.is_virtual
                && (abs.lv == LeastVirtual::Omega
                    || self.pool.set(shared).first() == Some(&LeastVirtual::Omega))
            {
                return None; // the Ω → Class(base) rewrite is not the identity
            }
            match first {
                None => first = Some((red, edge.base)),
                Some((h, _)) if h == red && abs.lv != LeastVirtual::Omega => {}
                _ => return None, // distinct reds, or equal Ω-reds (which demote)
            }
            last_base = edge.base;
            live += 1;
        }
        let (red, first_base) = first?;
        let (abs, _) = self.pool.red(red);
        let via = if live == 1 {
            first_base
        } else {
            // The static-merge rule keeps the first candidate's via;
            // plain dominance lets each equal incomer replace it.
            let mergeable = options.statics == StaticRule::Cpp
                && chg
                    .member_decl(abs.ldc, m)
                    .is_some_and(|d| d.kind.is_static_for_lookup());
            if mergeable {
                first_base
            } else {
                last_base
            }
        };
        #[cfg(feature = "obs")]
        crate::obs::propagation().flush_merge(live, 0, 0, false);
        #[cfg(not(feature = "obs"))]
        let _ = live;
        Some(Slot::Red {
            red,
            via: via.index() as u32,
        })
    }

    /// Propagates member `m` over its frontier (ascending rank = topo
    /// order), appending `(class, slot)` per visible class to `out`.
    fn sweep_member(
        &mut self,
        chg: &Chg,
        csr: &Csr,
        options: LookupOptions,
        m: MemberId,
        frontier: &BitSet,
        out: &mut Vec<(ClassId, Slot)>,
    ) {
        self.epoch += 1;
        for r in frontier.iter() {
            let c = csr.class_at(r as u32);
            // Line 12: a generated definition kills everything arriving
            // from bases.
            let slot = if chg.declares(c, m) {
                Slot::Red {
                    red: self.pool.intern_red(RedAbs::generated(c), EMPTY_SET),
                    via: NO_VIA,
                }
            } else if let Some(fast) = self.try_fast_slot(chg, csr, options, m, r) {
                fast
            } else {
                let mut merge = BMerge::default();
                for edge in csr.parents(r as u32) {
                    // Unstamped parent ⇒ m not visible in that base.
                    if self.stamp[edge.base_rank as usize] != self.epoch {
                        continue;
                    }
                    let inheritance = if edge.is_virtual {
                        Inheritance::Virtual
                    } else {
                        Inheritance::NonVirtual
                    };
                    match self.slots[edge.base_rank as usize] {
                        Slot::Red { red, .. } => {
                            let (abs, shared) = self.pool.red(red);
                            let ext_shared =
                                self.pool.extend_set(shared, edge.base, edge.is_virtual);
                            merge.add_red(
                                &mut self.pool,
                                chg,
                                m,
                                abs.extend(edge.base, inheritance),
                                ext_shared,
                                edge.base,
                                options.statics,
                            );
                        }
                        Slot::Blue { set } => {
                            let (lo, len) = self.pool.sets[set as usize];
                            for i in lo..lo + len {
                                let lv = self.pool.elems[i as usize];
                                merge.add_blue(lv.extend(edge.base, inheritance));
                            }
                        }
                    }
                }
                merge.finish_slot(&mut self.pool, chg)
            };
            self.slots[r] = slot;
            self.stamp[r] = self.epoch;
            out.push((c, slot));
        }
    }

    /// Materializes a slot into the [`Entry`] form the tables store.
    fn slot_to_entry(&self, slot: Slot) -> Entry {
        match slot {
            Slot::Red { red, via } => {
                let (abs, shared) = self.pool.red(red);
                Entry::Red {
                    abs,
                    via: (via != NO_VIA).then(|| ClassId::from_index(via as usize)),
                    shared: self.pool.set(shared).to_vec(),
                }
            }
            Slot::Blue { set } => Entry::Blue(self.pool.set(set).to_vec()),
        }
    }
}

/// Builds all per-class entry maps with the sequential batched sweep.
pub(crate) fn build_entries(chg: &Chg, options: LookupOptions) -> Vec<FxHashMap<MemberId, Entry>> {
    let start = Instant::now();
    let n = chg.class_count();
    let mut entries: Vec<FxHashMap<MemberId, Entry>> = vec![FxHashMap::default(); n];
    let csr = Csr::build(chg);
    let (frontiers, live) = member_frontiers(chg, &csr);
    let mut space = ColumnSpace::new(n);
    let mut out = Vec::new();
    for (i, m) in chg.member_ids().enumerate() {
        out.clear();
        space.sweep_member(chg, &csr, options, m, &frontiers[i], &mut out);
        crate::obs::propagation().nodes_visited_add(out.len() as u64);
        for &(c, slot) in &out {
            entries[c.index()].insert(m, space.slot_to_entry(slot));
        }
    }
    let pruned = (n as u64) * (frontiers.len() as u64) - live;
    crate::obs::table_built("batched", live, pruned, elapsed_ns(start));
    entries
}

/// Builds all per-class entry maps with the work-stealing parallel
/// sweep: members are sorted by frontier size (largest first) and
/// drained from a shared atomic cursor by `threads` workers, each with
/// its private [`ColumnSpace`]. Output is identical for every thread
/// count.
pub(crate) fn build_entries_parallel(
    chg: &Chg,
    options: LookupOptions,
    threads: usize,
) -> Vec<FxHashMap<MemberId, Entry>> {
    let members: Vec<MemberId> = chg.member_ids().collect();
    let threads = threads.max(1).min(members.len().max(1));
    if threads == 1 {
        return build_entries(chg, options);
    }
    let start = Instant::now();
    let n = chg.class_count();
    let csr = Csr::build(chg);
    let (frontiers, live) = member_frontiers(chg, &csr);
    // Largest frontiers first, so no big column lands at the tail.
    let mut order: Vec<u32> = (0..members.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(frontiers[i as usize].len()));
    let cursor = AtomicUsize::new(0);

    let mut columns: Vec<(MemberId, Vec<(ClassId, Entry)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut space = ColumnSpace::new(n);
                    let mut out = Vec::new();
                    let mut cols = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&mi) = order.get(i) else { break };
                        let m = members[mi as usize];
                        out.clear();
                        space.sweep_member(
                            chg,
                            &csr,
                            options,
                            m,
                            &frontiers[mi as usize],
                            &mut out,
                        );
                        crate::obs::propagation().nodes_visited_add(out.len() as u64);
                        let col: Vec<(ClassId, Entry)> = out
                            .iter()
                            .map(|&(c, slot)| (c, space.slot_to_entry(slot)))
                            .collect();
                        cols.push((m, col));
                    }
                    cols
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    // Insertion order must not depend on thread scheduling.
    columns.sort_by_key(|(m, _)| m.index());

    let mut entries: Vec<FxHashMap<MemberId, Entry>> = vec![FxHashMap::default(); n];
    for (m, col) in columns {
        for (c, e) in col {
            entries[c.index()].insert(m, e);
        }
    }
    let pruned = (n as u64) * (frontiers.len() as u64) - live;
    crate::obs::table_built("batched-parallel", live, pruned, elapsed_ns(start));
    entries
}

/// Elapsed nanoseconds since `start`, saturated into `u64`.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LookupTable;
    use cpplookup_chg::fixtures;

    fn graphs() -> Vec<Chg> {
        vec![
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::static_override_mix(),
            fixtures::dominance_diamond(),
            cpplookup_chg::ChgBuilder::new().finish().unwrap(),
        ]
    }

    #[test]
    fn batched_matches_reference_on_fixtures() {
        for g in graphs() {
            let reference = LookupTable::build_reference(&g, LookupOptions::default());
            let batched = LookupTable::build(&g);
            for c in g.classes() {
                for m in g.member_ids() {
                    assert_eq!(
                        batched.entry(c, m),
                        reference.entry(c, m),
                        "({}, {})",
                        g.class_name(c),
                        g.member_name(m)
                    );
                }
            }
            assert_eq!(batched.stats(), reference.stats());
        }
    }

    #[test]
    fn batched_respects_static_rule_options() {
        let g = fixtures::static_diamond();
        let options = LookupOptions {
            statics: StaticRule::Ignore,
        };
        let reference = LookupTable::build_reference(&g, options);
        let batched = LookupTable::build_with(&g, options);
        for c in g.classes() {
            for m in g.member_ids() {
                assert_eq!(batched.entry(c, m), reference.entry(c, m));
            }
        }
    }

    #[test]
    fn frontier_matches_visibility() {
        for g in graphs() {
            let csr = Csr::build(&g);
            let (frontiers, live) = member_frontiers(&g, &csr);
            let mut expected_live = 0u64;
            for (i, m) in g.member_ids().enumerate() {
                for c in g.classes() {
                    let visible = g.is_member_visible(c, m);
                    expected_live += u64::from(visible);
                    assert_eq!(
                        frontiers[i].contains(csr.rank_of(c) as usize),
                        visible,
                        "frontier({}) at {}",
                        g.member_name(m),
                        g.class_name(c)
                    );
                }
            }
            assert_eq!(live, expected_live);
        }
    }

    #[test]
    fn pool_interning_dedups_and_roundtrips() {
        let mut pool = Pool::new();
        let d = ClassId::from_index(3);
        let lvs = [LeastVirtual::Omega, LeastVirtual::Class(d)];
        let h1 = pool.intern_sorted(&lvs);
        let h2 = pool.intern_sorted(&lvs);
        assert_eq!(h1, h2);
        assert_eq!(pool.set(h1), &lvs);
        assert_eq!(pool.intern_sorted(&[]), EMPTY_SET);
        assert!(pool.set(EMPTY_SET).is_empty());

        // remove_lv: identity on absent, re-interned on present.
        assert_eq!(
            pool.remove_lv(h1, LeastVirtual::Class(ClassId::from_index(9))),
            h1
        );
        let stripped = pool.remove_lv(h1, LeastVirtual::Omega);
        assert_eq!(pool.set(stripped), &[LeastVirtual::Class(d)]);

        // extend_set: identity unless a virtual edge rewrites Ω.
        let base = ClassId::from_index(5);
        assert_eq!(pool.extend_set(h1, base, false), h1);
        assert_eq!(pool.extend_set(stripped, base, true), stripped);
        let ext = pool.extend_set(h1, base, true);
        assert_eq!(
            pool.set(ext),
            &[LeastVirtual::Class(d), LeastVirtual::Class(base)]
        );
        // Ω → Class(d) when d is already present: dedup, not duplicate.
        let ext2 = pool.extend_set(h1, d, true);
        assert_eq!(pool.set(ext2), &[LeastVirtual::Class(d)]);
    }

    #[test]
    fn parallel_batched_is_thread_count_independent() {
        let g = fixtures::fig3();
        let seq = build_entries(&g, LookupOptions::default());
        for threads in [1, 2, 3, 8] {
            let par = build_entries_parallel(&g, LookupOptions::default(), threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }
}
