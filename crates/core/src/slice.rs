//! Class hierarchy slicing — the application from Tip, Choi, Field and
//! Ramalingam (OOPSLA'96) that the paper cites as a client of fast
//! member lookup.
//!
//! A *slice* restricts a hierarchy to what a given set of lookup queries
//! can observe: the queried classes, all of their (transitive) bases,
//! the inheritance edges among them, and only the queried member names.
//! The guarantee — checked exhaustively by the tests — is that every
//! preserved query resolves in the slice exactly as it did in the
//! original hierarchy, because `lookup(C, m)` depends only on the
//! base-closed subgraph above `C` and the declarations of `m` within it.

use std::collections::{HashMap, HashSet};

use cpplookup_chg::{Chg, ChgBuilder, ChgError, ClassId, MemberId};

/// The result of slicing: the reduced hierarchy plus id mappings back
/// and forth.
#[derive(Debug)]
pub struct Slice {
    /// The sliced hierarchy.
    pub chg: Chg,
    /// Maps original class ids to slice class ids (only for retained
    /// classes).
    class_map: HashMap<ClassId, ClassId>,
    /// Maps original member ids to slice member ids (only for retained
    /// names).
    member_map: HashMap<MemberId, MemberId>,
    /// Classes of the original hierarchy that were dropped.
    pub dropped_classes: usize,
    /// Member declarations dropped from *retained* classes (declarations
    /// in dropped classes disappear with their class and are not
    /// counted here).
    pub dropped_declarations: usize,
}

impl Slice {
    /// The slice id of an original class, if it was retained.
    pub fn class(&self, original: ClassId) -> Option<ClassId> {
        self.class_map.get(&original).copied()
    }

    /// The slice id of an original member name, if it was retained.
    pub fn member(&self, original: MemberId) -> Option<MemberId> {
        self.member_map.get(&original).copied()
    }
}

/// Slices `chg` down to what lookups of `members` in `roots` (and their
/// bases) can observe.
///
/// Retained: every root, every base class of a root, every inheritance
/// edge between retained classes, and every declaration of a queried
/// member name in a retained class. Everything else is dropped.
///
/// # Errors
///
/// Propagates [`ChgError`] from rebuilding (cannot occur for well-formed
/// inputs: slicing preserves acyclicity and base uniqueness).
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::slice::slice_hierarchy;
/// use cpplookup_core::{LookupTable, LookupOutcome};
///
/// let g = fixtures::fig3();
/// let h = g.class_by_name("H").unwrap();
/// let foo = g.member_by_name("foo").unwrap();
/// let slice = slice_hierarchy(&g, &[h], &[foo])?;
/// // E declares only `bar`: it is irrelevant to foo-lookups... but it is
/// // a base of H, so the class itself is kept (with no members).
/// assert_eq!(slice.chg.class_count(), 8);
/// assert!(slice.dropped_declarations > 0);
/// // The preserved lookup gives the same answer.
/// let table = LookupTable::build(&slice.chg);
/// let (h2, foo2) = (slice.class(h).unwrap(), slice.member(foo).unwrap());
/// match table.lookup(h2, foo2) {
///     LookupOutcome::Resolved { class, .. } => {
///         assert_eq!(slice.chg.class_name(class), "G");
///     }
///     other => panic!("{other:?}"),
/// }
/// # Ok::<(), cpplookup_chg::ChgError>(())
/// ```
pub fn slice_hierarchy(
    chg: &Chg,
    roots: &[ClassId],
    members: &[MemberId],
) -> Result<Slice, ChgError> {
    // Retained classes: roots plus all their proper bases.
    let mut retained: HashSet<ClassId> = HashSet::new();
    for &r in roots {
        retained.insert(r);
        retained.extend(chg.bases_of(r));
    }
    let member_set: HashSet<MemberId> = members.iter().copied().collect();

    // Rebuild in original creation order to keep things deterministic.
    let mut b = ChgBuilder::new();
    let mut class_map: HashMap<ClassId, ClassId> = HashMap::new();
    for c in chg.classes() {
        if retained.contains(&c) {
            class_map.insert(c, b.class(chg.class_name(c)));
        }
    }
    let mut member_map: HashMap<MemberId, MemberId> = HashMap::new();
    let mut dropped_declarations = 0usize;
    for c in chg.classes() {
        let Some(&new_c) = class_map.get(&c) else {
            continue;
        };
        for spec in chg.direct_bases(c) {
            let new_base = class_map[&spec.base]; // bases of retained classes are retained
            b.derive_with_access(new_c, new_base, spec.inheritance, spec.access)?;
        }
        for &(m, decl) in chg.declared_members(c) {
            if member_set.contains(&m) {
                let new_m = b.member_with(new_c, chg.member_name(m), decl)?;
                member_map.insert(m, new_m);
            } else {
                dropped_declarations += 1;
            }
        }
    }
    // Queried names that no retained class declares still map (interned,
    // undeclared), so preserved NotFound queries stay expressible.
    for &m in members {
        member_map
            .entry(m)
            .or_insert_with(|| b.intern_member_name(chg.member_name(m)));
    }
    let sliced = b.finish()?;
    Ok(Slice {
        dropped_classes: chg.class_count() - class_map.len(),
        dropped_declarations,
        chg: sliced,
        class_map,
        member_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::LookupOutcome;
    use crate::table::LookupTable;
    use cpplookup_chg::fixtures;

    /// The slicing contract: every preserved query resolves identically.
    fn assert_preserved(chg: &Chg, roots: &[ClassId], members: &[MemberId]) {
        let slice = slice_hierarchy(chg, roots, members).unwrap();
        let original = LookupTable::build(chg);
        let sliced = LookupTable::build(&slice.chg);
        for &r in roots {
            for &m in members {
                let before = original.lookup(r, m);
                let after = sliced.lookup(
                    slice.class(r).expect("roots are retained"),
                    slice.member(m).expect("queried members are mapped"),
                );
                match (&before, &after) {
                    (LookupOutcome::NotFound, LookupOutcome::NotFound) => {}
                    (
                        LookupOutcome::Ambiguous { witnesses: a },
                        LookupOutcome::Ambiguous { witnesses: b },
                    ) => assert_eq!(a.len(), b.len()),
                    (
                        LookupOutcome::Resolved { class: a, .. },
                        LookupOutcome::Resolved { class: b, .. },
                    ) => {
                        assert_eq!(
                            chg.class_name(*a),
                            slice.chg.class_name(*b),
                            "winner preserved"
                        );
                    }
                    other => panic!("slicing changed a verdict: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn preserves_all_fixture_lookups() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::static_override_mix(),
        ] {
            let all_classes: Vec<ClassId> = g.classes().collect();
            let all_members: Vec<MemberId> = g.member_ids().collect();
            // Slice to every single (class, member) query individually...
            for &c in &all_classes {
                for &m in &all_members {
                    assert_preserved(&g, &[c], &[m]);
                }
            }
            // ... and to everything at once (identity-ish slice).
            assert_preserved(&g, &all_classes, &all_members);
        }
    }

    #[test]
    fn drops_unrelated_classes_and_members() {
        let g = fixtures::fig3();
        // Slicing to lookups in D drops E, F, G, H (not bases of D).
        let d = g.class_by_name("D").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let slice = slice_hierarchy(&g, &[d], &[foo]).unwrap();
        assert_eq!(slice.chg.class_count(), 4); // A, B, C, D
        assert_eq!(slice.dropped_classes, 4);
        assert!(slice.chg.class_by_name("H").is_none());
        // bar declarations dropped entirely (D::bar is the one retained
        // class that declared it).
        assert!(slice.chg.member_by_name("bar").is_none());
        assert_eq!(slice.dropped_declarations, 1);
    }

    #[test]
    fn unqueried_roots_keep_structure_only() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let slice = slice_hierarchy(&g, &[h], &[bar]).unwrap();
        // All 8 classes are bases of H (or H), so all retained...
        assert_eq!(slice.chg.class_count(), 8);
        // ...but the foo declarations are gone.
        assert!(slice.chg.member_by_name("foo").is_none());
        // And the bar ambiguity at H is intact.
        let t = LookupTable::build(&slice.chg);
        let h2 = slice.class(h).unwrap();
        let bar2 = slice.member(bar).unwrap();
        assert!(matches!(
            t.lookup(h2, bar2),
            LookupOutcome::Ambiguous { .. }
        ));
    }

    #[test]
    fn not_found_queries_stay_not_found() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        let bar = g.member_by_name("bar").unwrap(); // invisible in A
        let slice = slice_hierarchy(&g, &[a], &[bar]).unwrap();
        assert_eq!(slice.chg.class_count(), 1);
        let t = LookupTable::build(&slice.chg);
        assert_eq!(
            t.lookup(slice.class(a).unwrap(), slice.member(bar).unwrap()),
            LookupOutcome::NotFound
        );
    }

    #[test]
    fn random_hierarchy_slices_preserve_lookups() {
        // A light random sweep (the heavy differential suite lives in
        // tests/): slice every class to a couple of member names.
        for seed in 0..30 {
            let g = cpplookup_hiergen_stub::stress(seed);
            let members: Vec<MemberId> = g.member_ids().collect();
            for c in g.classes() {
                assert_preserved(&g, &[c], &members);
            }
        }
    }

    /// Local stand-in to avoid a dev-dependency cycle with hiergen: a
    /// tiny seeded hierarchy generator of the same flavor.
    mod cpplookup_hiergen_stub {
        use cpplookup_chg::{Chg, ChgBuilder, Inheritance, MemberDecl, MemberKind};

        pub fn stress(seed: u64) -> Chg {
            // Simple xorshift so we need no extra dependency here.
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
            let mut next = move |bound: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % bound
            };
            let mut b = ChgBuilder::new();
            let ids: Vec<_> = (0..10).map(|i| b.class(&format!("K{i}"))).collect();
            for i in 1..10usize {
                let bases = 1 + (next(2) as usize);
                for _ in 0..bases {
                    let base = ids[next(i as u64) as usize];
                    let inh = if next(3) == 0 {
                        Inheritance::Virtual
                    } else {
                        Inheritance::NonVirtual
                    };
                    let _ = b.derive(ids[i], base, inh);
                }
            }
            for &c in &ids {
                for m in 0..3 {
                    if next(3) == 0 {
                        let kind = if next(4) == 0 {
                            MemberKind::StaticData
                        } else {
                            MemberKind::Data
                        };
                        let _ = b.member_with(c, &format!("m{m}"), MemberDecl::public(kind));
                    }
                }
            }
            b.finish().expect("creation order is topological")
        }
    }
}
