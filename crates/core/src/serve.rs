//! The flat dispatch index: a pre-decoded, cache-dense read path for
//! query serving.
//!
//! Every other backend pays per-query interpretation: the eager
//! [`LookupTable`] probes an `FxHashMap` per class and
//! [`LookupOutcome::from_entry`] clones the blue witness set on every
//! ambiguous hit; a `SnapshotTable` binary-searches its row and then
//! re-decodes a varint payload on every hit. [`DispatchIndex`] is the
//! serving half of the paper's "constant time once the table is built"
//! promise (Definition 9 / Figure 8): the constant is a couple of cache
//! lines and zero allocation.
//!
//! # Layout
//!
//! A CSR-style structure over five flat arrays:
//!
//! ```text
//! row_starts  : class → first pair            (|N|+1 × u32)
//! pairs       : (member: u32, slot: u32)      one contiguous run per
//!               sorted by member id per class  class — rank iteration
//!                                              and batch locality
//! directory   : 16-byte cells {key, a, b}     the global probe path,
//!               key = class | member << 32     verdict decoded inline:
//!               red  → a = ldc, b = lv         · mph: minimal perfect
//!               blue → a = pool off,             hash, n cells, zero
//!                      b = len | BLUE_BIT        collision chains
//!                                              · open: linear probing,
//!                                                α ≤ 0.6 (fallback)
//! entries     : fixed-width pre-decoded slots (24 bytes each)
//!               red  → {ldc, lv, via, shared off+len}
//!               blue → {witness off+len}
//! pool        : shared u32 leastVirtual sets  (0 = Ω, else class+1),
//!               interned — equal sets share one range
//! ```
//!
//! The rank-sorted `pairs` rows serve ordered iteration
//! ([`members_of`](DispatchIndex::members_of)); the cell directory
//! answers a point probe with one hashed 16-byte load. The key set is
//! *static between epochs*, so the default directory is a minimal
//! perfect hash ([`crate::mph`]): exactly `n` cells for `n` entries,
//! every probe is one displacement-array load plus one data-dependent
//! cache line, with **zero collision chains** — a miss is decided by
//! the same single key compare a hit needs. (Old snapshots without a
//! serialized hash fall back to the original open-addressed directory,
//! [`DirectoryKind::Open`].) Cells live in 64-byte-aligned blocks of
//! four, so a cell never straddles a cache line. Because a cell carries
//! the decoded verdict inline, a red hit costs exactly one
//! data-dependent line — not the `log₂(row)` lines a binary search pays
//! on member-heavy classes, and not the two-level bucket walk of the
//! hashmap table. Blue hits add one pool read for the witnesses; the
//! `entries` arena is only touched by the cold reconstruction paths
//! ([`entry`](DispatchIndex::entry), refresh copying, which binary-
//! search the rank-sorted rows instead).
//!
//! [`lookup_batch_into`](DispatchIndex::lookup_batch_into) is the
//! SWAR-style batch probe: stripes of eight probes are packed and
//! hashed first (independent, register-only work), then all eight cells
//! are loaded back-to-back so the misses overlap, then decoded — and
//! the caller's output buffer is reused, so a server BATCH frame costs
//! zero allocation on resolved/not-found probes.
//!
//! Three construction paths feed it:
//!
//! * [`DispatchIndex::from_table`] — one pass over
//!   `LookupTable::into_entries`, no entry clones;
//! * [`DispatchIndex::from_entries`] — any `(class, member, entry)`
//!   stream; `SnapshotTable::dispatch_index` uses it to decode each
//!   varint payload exactly once at load, then never again;
//! * [`DispatchIndex::from_engine`] / [`DispatchIndex::refreshed`] —
//!   (re)packs the engine's memo; after
//!   [`LookupEngine::apply`](crate::LookupEngine::apply) only the dirty
//!   classes are re-probed, clean rows and their pool ranges are copied
//!   verbatim.
//!
//! # Epoch publish
//!
//! [`ServeHandle`] is the `arc-swap`-style publication point: readers
//! [`load`](ServeHandle::load) an `Arc` of the current
//! [`PublishedIndex`] (the lock is held only to clone the pointer —
//! never while an index is built) and then serve from that `Arc`
//! without any synchronization at all. A publisher builds the
//! replacement off to the side and [`publish`](ServeHandle::publish)es
//! it as one pointer swap, so a reader observes either the old epoch or
//! the new one in full — never a torn index, never a state older than
//! the snapshot it loaded. [`IndexedEngine`] packages the protocol:
//! `apply` edits the engine, incrementally refreshes the index, and
//! republishes.

use std::collections::VecDeque;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use cpplookup_chg::fxmap::FxHashMap;
use cpplookup_chg::{ChgError, ClassId, Edit, MemberId};

use crate::abstraction::{LeastVirtual, RedAbs};
use crate::api::MemberLookup;
use crate::batched::elapsed_ns;
use crate::engine::LookupEngine;
use crate::mph::MphFunction;
use crate::result::{Entry, LookupOutcome};
use crate::table::LookupTable;

pub use crate::dispatch::{
    build_dispatch_map, dynamic_target, DispatchEntry, DispatchMap, DispatchTarget,
};

/// A backend that can be packed into a [`DispatchIndex`] — the unified
/// construction surface behind [`DispatchIndex::from_backend`] and
/// [`ServeHandle::publish_backend`].
///
/// Before this trait existed every backend grew its own ad-hoc entry
/// point (`DispatchIndex::from_table`, `DispatchIndex::from_engine`,
/// `SnapshotTable::dispatch_index`), and every caller — the CLI, the
/// server, the benches — had to know which one to reach for. Now any
/// code that serves lookups takes `impl IntoDispatchIndex` and lets the
/// backend describe itself; the old constructors remain as thin
/// documented delegates.
///
/// Implementors in this workspace:
///
/// * [`LookupTable`] (by value — the entries are moved, not cloned),
/// * [`&LookupEngine`](LookupEngine) (the memo is probed, the engine
///   keeps serving),
/// * [`DispatchIndex`] itself (identity — lets already-packed indexes
///   flow through backend-generic call sites),
/// * `&SnapshotTable` in `cpplookup-snapshot` (each varint payload is
///   decoded exactly once).
pub trait IntoDispatchIndex {
    /// Short stable label for metrics and diagnostics: `"table"`,
    /// `"engine"`, `"snapshot"`, or `"index"` — the same values the
    /// CLI's `--backend` flag accepts.
    fn backend_label(&self) -> &'static str;

    /// Packs this backend into a flat [`DispatchIndex`].
    fn into_dispatch_index(self) -> DispatchIndex;
}

impl IntoDispatchIndex for LookupTable {
    fn backend_label(&self) -> &'static str {
        "table"
    }

    fn into_dispatch_index(self) -> DispatchIndex {
        DispatchIndex::from_table(self)
    }
}

impl IntoDispatchIndex for &LookupEngine {
    fn backend_label(&self) -> &'static str {
        "engine"
    }

    fn into_dispatch_index(self) -> DispatchIndex {
        DispatchIndex::from_engine(self)
    }
}

impl IntoDispatchIndex for DispatchIndex {
    fn backend_label(&self) -> &'static str {
        "index"
    }

    fn into_dispatch_index(self) -> DispatchIndex {
        self
    }
}

/// Entry flag bit: the slot is blue (ambiguous).
const FLAG_BLUE: u32 = 1;
/// Entry flag bit: the red slot has a via edge.
const FLAG_VIA: u32 = 2;

/// Marks a blue cell in [`Cell::b`]'s top bit (encoded `leastVirtual`
/// values and witness counts both stay far below 2³¹).
const BLUE_BIT: u32 = 1 << 31;

/// One directory cell: the packed `(class, member)` probe key plus the
/// fully pre-decoded verdict, so `lookup_ref` resolves a red hit from
/// this single 16-byte load (a blue hit adds one pool read for the
/// witnesses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Cell {
    /// `class | member << 32`; [`Cell::VACANT`] marks an empty cell.
    key: u64,
    /// Red: declaring class. Blue: pool offset.
    a: u32,
    /// Red: encoded `leastVirtual`. Blue: witness count | [`BLUE_BIT`].
    b: u32,
}

impl Cell {
    /// The vacant key (no real probe packs to it: it would need both a
    /// class and a member id of `u32::MAX`).
    const VACANT: u64 = u64::MAX;
    /// An unoccupied cell.
    const EMPTY: Cell = Cell {
        key: Cell::VACANT,
        a: 0,
        b: 0,
    };
}

/// Which probe directory a [`DispatchIndex`] carries — reported by
/// [`DispatchIndex::directory_kind`] and surfaced per tenant through
/// the `serve_directory_kind` gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectoryKind {
    /// The minimal perfect hash directory ([`crate::mph`]): exactly one
    /// displacement load + one cell line per probe, zero collision
    /// chains. The default for every freshly built index and for
    /// current-version snapshots (which serialize the hash).
    Mph,
    /// The open-addressed directory (multiplicative hash, linear
    /// probing, load ≤ 0.6) — the compatibility fallback for snapshots
    /// written before the hash section existed.
    Open,
}

impl DirectoryKind {
    /// Stable label for metrics and reports: `"mph"` / `"open"`.
    pub fn label(&self) -> &'static str {
        match self {
            DirectoryKind::Mph => "mph",
            DirectoryKind::Open => "open",
        }
    }
}

/// Four cells on one 64-byte line: the arena's unit of alignment, so a
/// 16-byte cell can never straddle a cache-line boundary and every
/// probe touches exactly one line of directory.
#[derive(Clone, Copy, Debug)]
#[repr(align(64))]
struct CellBlock([Cell; 4]);

/// The cell store: 64-byte-aligned blocks of four, indexed flat.
#[derive(Clone, Debug)]
struct CellArena {
    blocks: Vec<CellBlock>,
    len: usize,
}

impl CellArena {
    /// An arena of `len` vacant cells (rounded up to whole blocks).
    fn vacant(len: usize) -> CellArena {
        CellArena {
            blocks: vec![CellBlock([Cell::EMPTY; 4]); len.div_ceil(4)],
            len,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> &Cell {
        &self.blocks[i >> 2].0[i & 3]
    }

    #[inline]
    fn set(&mut self, i: usize, cell: Cell) {
        self.blocks[i >> 2].0[i & 3] = cell;
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Allocated bytes (whole blocks, including block padding).
    fn bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<CellBlock>()
    }
}

/// The probe directory behind [`DispatchIndex::lookup_ref`]: either the
/// minimal perfect hash (one displacement + one cell, every cell
/// occupied by a live key) or the open-addressed fallback.
#[derive(Clone, Debug)]
enum Directory {
    /// Linear probing over a power-of-two arena at load ≤ 0.6.
    Open(CellArena),
    /// One cell per key at the hash's slot; misses are rejected by the
    /// key compare on the single probed cell.
    Mph { mph: MphFunction, cells: CellArena },
}

/// How a constructor obtains its directory: build one of the given
/// kind, or place cells under a hash that already exists (the snapshot
/// loader deserializes and validates one instead of re-running the
/// displacement search).
enum DirectoryInit {
    Build(DirectoryKind),
    Prebuilt(MphFunction),
}

impl Directory {
    fn kind(&self) -> DirectoryKind {
        match self {
            Directory::Open(_) => DirectoryKind::Open,
            Directory::Mph { .. } => DirectoryKind::Mph,
        }
    }

    /// The cell holding `key`, if the key is live — the single-probe
    /// core of every point lookup.
    #[inline]
    fn get(&self, key: u64) -> Option<&Cell> {
        match self {
            Directory::Mph { mph, cells } => {
                if cells.len() == 0 {
                    return None;
                }
                let cell = cells.get(mph.position(key));
                (cell.key == key).then_some(cell)
            }
            Directory::Open(cells) => {
                let mask = cells.len() - 1;
                let mut at = hash_key(key) & mask;
                loop {
                    let cell = cells.get(at);
                    if cell.key == key {
                        return Some(cell);
                    }
                    if cell.key == Cell::VACANT {
                        return None;
                    }
                    at = (at + 1) & mask;
                }
            }
        }
    }

    /// Allocated directory bytes (cells + hash metadata).
    fn bytes(&self) -> usize {
        match self {
            Directory::Open(cells) => cells.bytes(),
            Directory::Mph { mph, cells } => mph.size_bytes() + cells.bytes(),
        }
    }
}

/// Directory capacity for `n` occupied cells under open addressing: the
/// next power of two at or above `n / 0.6`, so the load factor never
/// exceeds 0.6 and linear probing terminates on a vacant cell.
#[inline]
fn directory_cap(n: usize) -> usize {
    (n.max(1) * 5 / 3 + 1).next_power_of_two()
}

/// Mixes a packed probe key for the directory (fxhash's 64-bit
/// multiplier; the high product bits are the well-mixed ones, so fold
/// them down before masking).
#[inline]
fn hash_key(key: u64) -> usize {
    (key.wrapping_mul(0x517c_c1b7_2722_0a95) >> 32) as usize
}

/// Encodes a `leastVirtual` into the pool's `u32` form (`0` = Ω,
/// otherwise class index + 1 — the snapshot format's encoding).
#[inline]
fn enc_lv(lv: LeastVirtual) -> u32 {
    match lv {
        LeastVirtual::Omega => 0,
        LeastVirtual::Class(c) => c.index() as u32 + 1,
    }
}

/// Decodes the pool's `u32` `leastVirtual` form.
#[inline]
fn dec_lv(raw: u32) -> LeastVirtual {
    match raw {
        0 => LeastVirtual::Omega,
        c => LeastVirtual::Class(ClassId::from_index(c as usize - 1)),
    }
}

/// One `(member, slot)` record of a class's rank-sorted index row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IndexPair {
    member: u32,
    slot: u32,
}

/// A fixed-width, fully pre-decoded table slot: everything a query
/// needs without interpretation. 24 bytes, so a 64-byte line holds the
/// better part of three entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PackedEntry {
    /// [`FLAG_BLUE`] | [`FLAG_VIA`].
    flags: u32,
    /// Red: declaring class of the winning definition. Blue: 0.
    ldc: u32,
    /// Red: encoded `leastVirtual` of the winner. Blue: 0.
    lv: u32,
    /// Red with [`FLAG_VIA`]: the via-edge class index. Otherwise 0.
    via: u32,
    /// Pool offset of the shared set (red) / witness set (blue).
    set_off: u32,
    /// Pool length of that set.
    set_len: u32,
}

/// A borrowed, pool-backed `leastVirtual` set — the allocation-free
/// form of a blue entry's witnesses or a red entry's shared set.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LvSlice<'a>(&'a [u32]);

impl<'a> LvSlice<'a> {
    /// Number of abstractions in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The `i`-th abstraction (sets are sorted ascending).
    pub fn get(&self, i: usize) -> Option<LeastVirtual> {
        self.0.get(i).map(|&raw| dec_lv(raw))
    }

    /// Iterates the abstractions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LeastVirtual> + 'a {
        self.0.iter().map(|&raw| dec_lv(raw))
    }

    /// Materializes the set (one allocation — the thing the ref path
    /// avoids until the caller asks for it).
    pub fn to_vec(&self) -> Vec<LeastVirtual> {
        self.iter().collect()
    }
}

impl std::fmt::Debug for LvSlice<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The outcome of `lookup(c, m)` as a borrow into the index — the
/// allocation-free twin of [`LookupOutcome`]. `Copy`: ambiguity
/// witnesses stay in the shared pool instead of being cloned per hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeRef<'a> {
    /// `m ∉ Members[c]`.
    NotFound,
    /// The lookup resolved to the member declared in `class`.
    Resolved {
        /// The declaring class of the winning definition.
        class: ClassId,
        /// `leastVirtual` of the winning definition.
        least_virtual: LeastVirtual,
    },
    /// The lookup is ambiguous; the witnesses borrow the index's pool.
    Ambiguous {
        /// The `leastVirtual` witnesses, sorted ascending.
        witnesses: LvSlice<'a>,
    },
}

impl OutcomeRef<'_> {
    /// Whether the lookup resolved.
    pub fn is_resolved(&self) -> bool {
        matches!(self, OutcomeRef::Resolved { .. })
    }

    /// The resolved declaring class, if any.
    pub fn resolved_class(&self) -> Option<ClassId> {
        match self {
            OutcomeRef::Resolved { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// Materializes the owned [`LookupOutcome`] (allocates only for
    /// ambiguous outcomes, like every owned path does).
    pub fn to_outcome(&self) -> LookupOutcome {
        match self {
            OutcomeRef::NotFound => LookupOutcome::NotFound,
            OutcomeRef::Resolved {
                class,
                least_virtual,
            } => LookupOutcome::Resolved {
                class: *class,
                least_virtual: *least_virtual,
            },
            OutcomeRef::Ambiguous { witnesses } => LookupOutcome::Ambiguous {
                witnesses: witnesses.to_vec(),
            },
        }
    }
}

/// Interns encoded `leastVirtual` sets into the shared pool during
/// construction, so equal sets (ambiguity witnesses repeat heavily
/// across sibling classes) share one range.
struct PoolBuilder {
    pool: Vec<u32>,
    interned: FxHashMap<Vec<u32>, (u32, u32)>,
}

impl PoolBuilder {
    fn new() -> Self {
        PoolBuilder {
            pool: Vec::new(),
            interned: FxHashMap::default(),
        }
    }

    /// Resumes interning on top of an existing pool (incremental
    /// refresh keeps old ranges valid by only appending). Previously
    /// interned sets are not re-deduplicated — refresh batches are
    /// small, so rebuilding the whole intern map would cost more than
    /// the duplicates it saves.
    fn resume(pool: Vec<u32>) -> Self {
        PoolBuilder {
            pool,
            interned: FxHashMap::default(),
        }
    }

    fn intern(&mut self, lvs: &[LeastVirtual]) -> (u32, u32) {
        if lvs.is_empty() {
            return (0, 0);
        }
        let encoded: Vec<u32> = lvs.iter().map(|&lv| enc_lv(lv)).collect();
        if let Some(&range) = self.interned.get(&encoded) {
            return range;
        }
        let off = u32::try_from(self.pool.len()).expect("leastVirtual pool overflow");
        let len = encoded.len() as u32;
        self.pool.extend_from_slice(&encoded);
        self.interned.insert(encoded, (off, len));
        (off, len)
    }

    fn pack(&mut self, entry: &Entry) -> PackedEntry {
        match entry {
            Entry::Red { abs, via, shared } => {
                let (set_off, set_len) = self.intern(shared);
                PackedEntry {
                    flags: if via.is_some() { FLAG_VIA } else { 0 },
                    ldc: abs.ldc.index() as u32,
                    lv: enc_lv(abs.lv),
                    via: via.map_or(0, |v| v.index() as u32),
                    set_off,
                    set_len,
                }
            }
            Entry::Blue(set) => {
                let (set_off, set_len) = self.intern(set);
                PackedEntry {
                    flags: FLAG_BLUE,
                    ldc: 0,
                    lv: 0,
                    via: 0,
                    set_off,
                    set_len,
                }
            }
        }
    }
}

/// The flat serving structure. See the [module docs](self) for the
/// layout; construction is one pass from any entry source, queries are
/// a row binary search plus one fixed-width load.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::serve::{DispatchIndex, OutcomeRef};
/// use cpplookup_core::LookupTable;
///
/// let g = fixtures::fig9();
/// let index = DispatchIndex::from_table(LookupTable::build(&g));
/// let e = g.class_by_name("E").unwrap();
/// let m = g.member_by_name("m").unwrap();
/// match index.lookup_ref(e, m) {
///     OutcomeRef::Resolved { class, .. } => assert_eq!(g.class_name(class), "C"),
///     other => panic!("expected C::m, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct DispatchIndex {
    class_count: usize,
    member_count: usize,
    /// `class → first pair index`, length `class_count + 1`.
    row_starts: Vec<u32>,
    /// Per-class runs sorted by member id.
    pairs: Vec<IndexPair>,
    /// The global probe directory of pre-decoded verdicts — minimal
    /// perfect hash by default, open-addressed fallback.
    directory: Directory,
    /// The pre-decoded entry arena; `pairs[i].slot` indexes it.
    entries: Vec<PackedEntry>,
    /// Shared encoded `leastVirtual` pool.
    pool: Vec<u32>,
}

impl DispatchIndex {
    /// Builds the index from any backend — the canonical construction
    /// entry point. [`LookupTable`]s are consumed, engines are probed
    /// through a shared reference, snapshots decode each payload once;
    /// the backend itself decides via its [`IntoDispatchIndex`] impl.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpplookup_chg::fixtures;
    /// use cpplookup_core::serve::DispatchIndex;
    /// use cpplookup_core::{LookupEngine, LookupTable};
    ///
    /// let g = fixtures::fig2();
    /// let from_table = DispatchIndex::from_backend(LookupTable::build(&g));
    /// let engine = LookupEngine::new(g);
    /// let from_engine = DispatchIndex::from_backend(&engine);
    /// assert_eq!(from_table.entry_count(), from_engine.entry_count());
    /// ```
    pub fn from_backend(backend: impl IntoDispatchIndex) -> Self {
        backend.into_dispatch_index()
    }

    /// Builds the index in one pass from any `(class, member, entry)`
    /// stream. `class_count` must cover every class id in the stream;
    /// the stream may arrive in any order. The probe directory is the
    /// default minimal perfect hash, built here.
    pub fn from_entries(
        class_count: usize,
        entries: impl IntoIterator<Item = (ClassId, MemberId, Entry)>,
    ) -> Self {
        Self::from_entries_init(
            class_count,
            entries,
            DirectoryInit::Build(DirectoryKind::Mph),
        )
    }

    /// [`from_entries`](Self::from_entries) on the open-addressed
    /// directory — the compatibility path for snapshots written before
    /// the hash section existed (the loader cannot place cells under a
    /// hash the container never stored, and rebuilding one at load time
    /// would charge the displacement search to every cold start).
    pub fn from_entries_open(
        class_count: usize,
        entries: impl IntoIterator<Item = (ClassId, MemberId, Entry)>,
    ) -> Self {
        Self::from_entries_init(
            class_count,
            entries,
            DirectoryInit::Build(DirectoryKind::Open),
        )
    }

    /// [`from_entries`](Self::from_entries) under a minimal perfect
    /// hash that already exists — the snapshot load path, where the
    /// hash was built once at compile time, serialized, and validated
    /// against the container's key set, so load skips the displacement
    /// search entirely and only places cells.
    ///
    /// `mph` must be a valid minimal perfect hash for exactly the
    /// packed keys of the stream (the snapshot loader verifies this
    /// before calling); if its key count disagrees with the stream the
    /// hash is discarded and rebuilt from scratch.
    pub fn from_entries_mph(
        class_count: usize,
        entries: impl IntoIterator<Item = (ClassId, MemberId, Entry)>,
        mph: MphFunction,
    ) -> Self {
        Self::from_entries_init(class_count, entries, DirectoryInit::Prebuilt(mph))
    }

    fn from_entries_init(
        class_count: usize,
        entries: impl IntoIterator<Item = (ClassId, MemberId, Entry)>,
        init: DirectoryInit,
    ) -> Self {
        let mut rows: Vec<Vec<(u32, Entry)>> = vec![Vec::new(); class_count];
        let mut member_count = 0usize;
        for (c, m, e) in entries {
            member_count = member_count.max(m.index() + 1);
            rows[c.index()].push((m.index() as u32, e));
        }
        Self::from_rows_init(member_count, rows, init)
    }

    /// Builds the index from a consumed [`LookupTable`] — one pass over
    /// its per-class entry maps, moving every entry instead of cloning.
    ///
    /// Prefer the backend-generic [`DispatchIndex::from_backend`] in new
    /// code; this remains as the table-specific delegate behind
    /// `LookupTable`'s [`IntoDispatchIndex`] impl.
    pub fn from_table(table: LookupTable) -> Self {
        let start = Instant::now();
        let mut member_count = 0usize;
        let rows: Vec<Vec<(u32, Entry)>> = table
            .into_entries()
            .into_iter()
            .map(|class_tbl| {
                class_tbl
                    .into_iter()
                    .map(|(m, e)| {
                        member_count = member_count.max(m.index() + 1);
                        (m.index() as u32, e)
                    })
                    .collect()
            })
            .collect();
        let index = Self::from_rows(member_count, rows);
        crate::obs::index_built(
            "table",
            index.entry_count() as u64,
            index.size_bytes() as u64,
            elapsed_ns(start),
        );
        index
    }

    /// Packs the engine's memo into an index: every `(class, member)`
    /// pair is probed once through [`LookupEngine::entry`] (memo hits
    /// under complete backings; the lazy backing computes missing
    /// columns on demand, so the result always covers the full table).
    ///
    /// Prefer the backend-generic [`DispatchIndex::from_backend`] in new
    /// code; this remains as the engine-specific delegate behind
    /// `&LookupEngine`'s [`IntoDispatchIndex`] impl.
    pub fn from_engine(engine: &LookupEngine) -> Self {
        let start = Instant::now();
        let chg = engine.chg();
        let mut rows: Vec<Vec<(u32, Entry)>> = vec![Vec::new(); chg.class_count()];
        for c in chg.classes() {
            for m in chg.member_ids() {
                if let Some(e) = engine.entry(c, m) {
                    rows[c.index()].push((m.index() as u32, e));
                }
            }
        }
        let index = Self::from_rows(chg.member_name_count(), rows);
        crate::obs::index_built(
            "engine",
            index.entry_count() as u64,
            index.size_bytes() as u64,
            elapsed_ns(start),
        );
        index
    }

    /// Incrementally refreshes this index against an engine whose
    /// hierarchy just changed: rows of classes in `dirty` (plus any
    /// classes beyond the old `class_count`) are re-probed from the
    /// engine's memo; every clean row — pairs, packed entries, and
    /// their pool ranges — is copied verbatim. The pool only grows, so
    /// copied `set_off` ranges stay valid. The probe directory is
    /// rebuilt whole (its key set changed) on the same
    /// [`DirectoryKind`] this index carries.
    pub fn refreshed(&self, engine: &LookupEngine, dirty: &[(ClassId, MemberId)]) -> Self {
        let start = Instant::now();
        let chg = engine.chg();
        let class_count = chg.class_count();
        let mut is_dirty = vec![false; class_count];
        for &(c, _) in dirty {
            is_dirty[c.index()] = true;
        }
        let mut pool = PoolBuilder::resume(self.pool.clone());
        let mut row_starts = Vec::with_capacity(class_count + 1);
        let mut pairs = Vec::with_capacity(self.pairs.len());
        let mut entries = Vec::with_capacity(self.entries.len());
        row_starts.push(0u32);
        for (ci, &row_dirty) in is_dirty.iter().enumerate() {
            if ci < self.class_count && !row_dirty {
                let (lo, hi) = (
                    self.row_starts[ci] as usize,
                    self.row_starts[ci + 1] as usize,
                );
                for pair in &self.pairs[lo..hi] {
                    let slot = entries.len() as u32;
                    entries.push(self.entries[pair.slot as usize]);
                    pairs.push(IndexPair {
                        member: pair.member,
                        slot,
                    });
                }
            } else {
                let c = ClassId::from_index(ci);
                for m in chg.member_ids() {
                    if let Some(e) = engine.entry(c, m) {
                        let slot = entries.len() as u32;
                        entries.push(pool.pack(&e));
                        pairs.push(IndexPair {
                            member: m.index() as u32,
                            slot,
                        });
                    }
                }
            }
            row_starts.push(u32::try_from(pairs.len()).expect("dispatch index overflow"));
        }
        let directory = Self::build_directory(
            DirectoryInit::Build(self.directory_kind()),
            &row_starts,
            &pairs,
            &entries,
        );
        let index = DispatchIndex {
            class_count,
            member_count: chg.member_name_count(),
            row_starts,
            pairs,
            directory,
            entries,
            pool: pool.pool,
        };
        crate::obs::index_built(
            "refresh",
            index.entry_count() as u64,
            index.size_bytes() as u64,
            elapsed_ns(start),
        );
        index
    }

    /// The shared layout pass: sorts each row by member id and packs
    /// entries into the arena + pool.
    fn from_rows(member_count: usize, rows: Vec<Vec<(u32, Entry)>>) -> Self {
        Self::from_rows_init(member_count, rows, DirectoryInit::Build(DirectoryKind::Mph))
    }

    fn from_rows_init(
        member_count: usize,
        rows: Vec<Vec<(u32, Entry)>>,
        init: DirectoryInit,
    ) -> Self {
        let class_count = rows.len();
        let mut pool = PoolBuilder::new();
        let mut row_starts = Vec::with_capacity(class_count + 1);
        let mut pairs = Vec::new();
        let mut entries = Vec::new();
        row_starts.push(0u32);
        for mut row in rows {
            row.sort_unstable_by_key(|&(m, _)| m);
            for (m, e) in &row {
                let slot = entries.len() as u32;
                entries.push(pool.pack(e));
                pairs.push(IndexPair { member: *m, slot });
            }
            row_starts.push(u32::try_from(pairs.len()).expect("dispatch index overflow"));
        }
        let directory = Self::build_directory(init, &row_starts, &pairs, &entries);
        DispatchIndex {
            class_count,
            member_count,
            row_starts,
            pairs,
            directory,
            entries,
            pool: pool.pool,
        }
    }

    /// The packed key and pre-decoded cell of one CSR pair.
    #[inline]
    fn cell_of(class: usize, pair: &IndexPair, entries: &[PackedEntry]) -> (u64, Cell) {
        let key = class as u64 | u64::from(pair.member) << 32;
        debug_assert_ne!(key, Cell::VACANT, "probe key collides with sentinel");
        let e = &entries[pair.slot as usize];
        let cell = if e.flags & FLAG_BLUE != 0 {
            debug_assert_eq!(e.set_len & BLUE_BIT, 0, "witness count overflow");
            Cell {
                key,
                a: e.set_off,
                b: e.set_len | BLUE_BIT,
            }
        } else {
            debug_assert_eq!(e.lv & BLUE_BIT, 0, "leastVirtual encoding overflow");
            Cell {
                key,
                a: e.ldc,
                b: e.lv,
            }
        };
        (key, cell)
    }

    /// Builds the global probe directory from the finished CSR rows,
    /// every cell carrying its entry's decoded verdict inline.
    ///
    /// * `Build(Mph)` runs the hash-and-displace construction over the
    ///   packed key set (class-ascending, member-ascending — the same
    ///   order the snapshot serializes) and places each cell at its
    ///   unique slot: `n` cells for `n` entries, all occupied.
    /// * `Prebuilt` places cells under an already-validated hash (the
    ///   snapshot load path) — no displacement search at load time.
    /// * `Build(Open)` fills a power-of-two table at load ≤ 0.6 by
    ///   linear probing — the pre-MPH directory, kept as the fallback.
    fn build_directory(
        init: DirectoryInit,
        row_starts: &[u32],
        pairs: &[IndexPair],
        entries: &[PackedEntry],
    ) -> Directory {
        let start = Instant::now();
        let class_count = row_starts.len() - 1;
        let mut packed: Vec<(u64, Cell)> = Vec::with_capacity(pairs.len());
        for ci in 0..class_count {
            let (lo, hi) = (row_starts[ci] as usize, row_starts[ci + 1] as usize);
            for pair in &pairs[lo..hi] {
                packed.push(Self::cell_of(ci, pair, entries));
            }
        }
        let directory = match init {
            DirectoryInit::Build(DirectoryKind::Open) => {
                let mut cells = CellArena::vacant(directory_cap(packed.len()));
                let mask = cells.len() - 1;
                for &(key, cell) in &packed {
                    let mut at = hash_key(key) & mask;
                    while cells.get(at).key != Cell::VACANT {
                        at = (at + 1) & mask;
                    }
                    cells.set(at, cell);
                }
                Directory::Open(cells)
            }
            DirectoryInit::Build(DirectoryKind::Mph) => {
                let keys: Vec<u64> = packed.iter().map(|&(key, _)| key).collect();
                Self::place_mph(MphFunction::build(&keys), &packed)
                    .expect("freshly built mph collided on its own key set")
            }
            DirectoryInit::Prebuilt(mph) => {
                // A hash that cannot cover this key set — wrong count,
                // or a displacement array that maps two live keys to
                // one slot (a mismatched or adversarial container
                // section; random corruption is already caught by the
                // file checksum) — is rebuilt instead of served
                // through: a collision would silently overwrite a cell
                // and turn live probes into NotFound.
                let placed = (mph.n() as usize == packed.len())
                    .then(|| Self::place_mph(mph, &packed))
                    .flatten();
                placed.unwrap_or_else(|| {
                    let keys: Vec<u64> = packed.iter().map(|&(key, _)| key).collect();
                    Self::place_mph(MphFunction::build(&keys), &packed)
                        .expect("freshly built mph collided on its own key set")
                })
            }
        };
        crate::obs::directory_built(
            directory.kind().label(),
            packed.len() as u64,
            matches!(directory, Directory::Mph { .. }).then(|| elapsed_ns(start)),
        );
        directory
    }

    /// Places every cell at its minimal-perfect-hash slot; `None` if
    /// two keys land on one slot (the hash does not cover this key
    /// set — possible only for a deserialized hash).
    fn place_mph(mph: MphFunction, packed: &[(u64, Cell)]) -> Option<Directory> {
        let mut cells = CellArena::vacant(mph.n() as usize);
        for &(key, cell) in packed {
            let at = mph.position(key);
            if cells.get(at).key != Cell::VACANT {
                return None;
            }
            cells.set(at, cell);
        }
        Some(Directory::Mph { mph, cells })
    }

    /// The directory cell behind `(c, m)`, if any — the hot probe
    /// behind every point query: on the default MPH directory, one
    /// displacement load plus one hashed 16-byte cell load with zero
    /// collision chains; on the open fallback, a hashed load stepping
    /// linearly past collisions (bounded because that directory is at
    /// most 0.6 full).
    #[inline]
    fn cell(&self, c: ClassId, m: MemberId) -> Option<&Cell> {
        if c.index() >= self.class_count || m.index() > u32::MAX as usize {
            return None;
        }
        let key = c.index() as u64 | (m.index() as u64) << 32;
        self.directory.get(key)
    }

    /// Decodes an occupied cell's inline verdict — shared by the point
    /// and batch probe paths.
    #[inline]
    fn decode(&self, cell: &Cell) -> OutcomeRef<'_> {
        if cell.b & BLUE_BIT != 0 {
            OutcomeRef::Ambiguous {
                witnesses: LvSlice(
                    &self.pool[cell.a as usize..(cell.a + (cell.b & !BLUE_BIT)) as usize],
                ),
            }
        } else {
            OutcomeRef::Resolved {
                class: ClassId::from_index(cell.a as usize),
                least_virtual: dec_lv(cell.b),
            }
        }
    }

    /// The packed entry behind `(c, m)`, if any — the cold, fully
    /// detailed form behind [`entry`](Self::entry), found by binary
    /// search of the class's rank-sorted row; point queries go through
    /// [`cell`](Self::cell) instead.
    fn packed(&self, c: ClassId, m: MemberId) -> Option<&PackedEntry> {
        let ci = c.index();
        if ci >= self.class_count {
            return None;
        }
        let row = &self.pairs[self.row_starts[ci] as usize..self.row_starts[ci + 1] as usize];
        let target = u32::try_from(m.index()).ok()?;
        row.binary_search_by(|p| p.member.cmp(&target))
            .ok()
            .map(|i| &self.entries[row[i].slot as usize])
    }

    /// `lookup(c, m)` without a single allocation: ambiguity witnesses
    /// are returned as a borrow of the shared pool. This is the serving
    /// hot path; pair it with [`lookup`](Self::lookup) when an owned
    /// [`LookupOutcome`] is required.
    #[inline]
    pub fn lookup_ref(&self, c: ClassId, m: MemberId) -> OutcomeRef<'_> {
        match self.cell(c, m) {
            None => OutcomeRef::NotFound,
            Some(cell) => self.decode(cell),
        }
    }

    /// `lookup(c, m)` as an owned outcome (counts one
    /// `serve_queries_total{backend="index"}` query; allocates only for
    /// ambiguous hits, when the witness set is materialized).
    pub fn lookup(&self, c: ClassId, m: MemberId) -> LookupOutcome {
        crate::obs::serve_query("index", 1);
        self.lookup_ref(c, m).to_outcome()
    }

    /// Answers a batch of probes in input order into a caller-owned
    /// buffer — the allocation-free batch path the server's BATCH frame
    /// loop runs on. `out` is cleared and refilled; reusing one buffer
    /// across calls amortizes its capacity to zero allocations per
    /// frame (the outcomes themselves are [`Copy`] borrows).
    ///
    /// On the MPH directory this is the SWAR-style striped probe: each
    /// stripe of eight probes is packed and hashed first — independent,
    /// register-only work after the displacement loads — then all eight
    /// cells are copied out back-to-back, so their (potentially
    /// missing) cache lines are requested together and the loads
    /// overlap instead of serializing, then decoded. A probe outside
    /// the class/member id range packs to the vacant sentinel key,
    /// which no occupied cell carries, and falls out as `NotFound`
    /// through the same key compare as any dead key.
    pub fn lookup_batch_into<'a>(
        &'a self,
        probes: &[(ClassId, MemberId)],
        out: &mut Vec<OutcomeRef<'a>>,
    ) {
        crate::obs::serve_query("index", probes.len() as u64);
        out.clear();
        out.reserve(probes.len());
        match &self.directory {
            Directory::Mph { mph, cells } if cells.len() > 0 => {
                let mut keys = [0u64; 8];
                let mut slots = [0usize; 8];
                let mut hit = [Cell::EMPTY; 8];
                for stripe in probes.chunks(8) {
                    for (i, &(c, m)) in stripe.iter().enumerate() {
                        let key = if c.index() < self.class_count && m.index() <= u32::MAX as usize
                        {
                            c.index() as u64 | (m.index() as u64) << 32
                        } else {
                            Cell::VACANT
                        };
                        keys[i] = key;
                        slots[i] = mph.position(key);
                    }
                    for i in 0..stripe.len() {
                        hit[i] = *cells.get(slots[i]);
                    }
                    for i in 0..stripe.len() {
                        out.push(if hit[i].key == keys[i] {
                            self.decode(&hit[i])
                        } else {
                            OutcomeRef::NotFound
                        });
                    }
                }
            }
            _ => {
                for &(c, m) in probes {
                    out.push(self.lookup_ref(c, m));
                }
            }
        }
    }

    /// Answers a batch of probes in input order as owned outcomes —
    /// [`lookup_batch_into`](Self::lookup_batch_into) plus the
    /// materialization each owned outcome pays anyway. Callers on the
    /// hot serve loop should prefer the `_into` form with a reused
    /// buffer.
    pub fn lookup_batch(&self, probes: &[(ClassId, MemberId)]) -> Vec<LookupOutcome> {
        let mut refs = Vec::with_capacity(probes.len());
        self.lookup_batch_into(probes, &mut refs);
        refs.iter().map(|r| r.to_outcome()).collect()
    }

    /// Reconstructs the full [`Entry`] for `(c, m)` — the slow,
    /// allocating form used by differential tests and
    /// [`MemberLookup::entry`].
    pub fn entry(&self, c: ClassId, m: MemberId) -> Option<Entry> {
        self.packed(c, m).map(|e| {
            let set = &self.pool[e.set_off as usize..(e.set_off + e.set_len) as usize];
            if e.flags & FLAG_BLUE != 0 {
                Entry::Blue(set.iter().map(|&raw| dec_lv(raw)).collect())
            } else {
                Entry::Red {
                    abs: RedAbs {
                        ldc: ClassId::from_index(e.ldc as usize),
                        lv: dec_lv(e.lv),
                    },
                    via: (e.flags & FLAG_VIA != 0).then(|| ClassId::from_index(e.via as usize)),
                    shared: set.iter().map(|&raw| dec_lv(raw)).collect(),
                }
            }
        })
    }

    /// The final binding of a virtual call when the receiver's dynamic
    /// type is `dynamic_type` — [`dynamic_target`] served from the
    /// index instead of the hash table, without touching the pool.
    pub fn dynamic_target(&self, dynamic_type: ClassId, m: MemberId) -> Option<ClassId> {
        self.lookup_ref(dynamic_type, m).resolved_class()
    }

    /// The member ids visible in `c`, ascending — `Members[c]` straight
    /// from the row, no hash map walk.
    pub fn members_of(&self, c: ClassId) -> impl Iterator<Item = MemberId> + '_ {
        let (lo, hi) = if c.index() < self.class_count {
            (
                self.row_starts[c.index()] as usize,
                self.row_starts[c.index() + 1] as usize,
            )
        } else {
            (0, 0)
        };
        self.pairs[lo..hi]
            .iter()
            .map(|p| MemberId::from_index(p.member as usize))
    }

    /// Number of classes the index covers.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of member names the index covers.
    pub fn member_name_count(&self) -> usize {
        self.member_count
    }

    /// Total `(class, member)` entries.
    pub fn entry_count(&self) -> usize {
        self.pairs.len()
    }

    /// Which probe directory this index carries — MPH for everything
    /// built fresh, Open only for indexes loaded from pre-hash
    /// snapshots (or forced via
    /// [`with_directory_kind`](Self::with_directory_kind)).
    pub fn directory_kind(&self) -> DirectoryKind {
        self.directory.kind()
    }

    /// This index repacked onto the other probe directory — the CSR
    /// rows, entry arena, and pool are shared verbatim (cloned), only
    /// the directory is rebuilt. Differential tests and the e22 smoke
    /// gate use it to exercise the open fallback against the same data
    /// the MPH path serves.
    pub fn with_directory_kind(&self, kind: DirectoryKind) -> Self {
        let mut out = self.clone();
        out.directory = Self::build_directory(
            DirectoryInit::Build(kind),
            &out.row_starts,
            &out.pairs,
            &out.entries,
        );
        out
    }

    /// Bytes of flat storage: row starts + pairs + probe directory
    /// (cells in their 64-byte blocks, plus hash metadata) + entry
    /// arena + pool.
    pub fn size_bytes(&self) -> usize {
        self.row_starts.len() * 4
            + self.pairs.len() * 8
            + self.directory.bytes()
            + self.entries.len() * 24
            + self.pool.len() * 4
    }

    /// Flat bytes per entry — the density figure `stats` reports.
    pub fn bytes_per_entry(&self) -> f64 {
        if self.pairs.is_empty() {
            0.0
        } else {
            self.size_bytes() as f64 / self.pairs.len() as f64
        }
    }
}

impl MemberLookup for DispatchIndex {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        DispatchIndex::lookup(self, c, m)
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        DispatchIndex::entry(self, c, m)
    }
}

/// One published index version: the epoch stamps which hierarchy
/// generation a reader is serving from.
#[derive(Debug)]
pub struct PublishedIndex {
    epoch: u64,
    index: DispatchIndex,
}

impl PublishedIndex {
    /// The publish epoch: 0 for the initial index, +1 per
    /// [`ServeHandle::publish`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The index itself.
    pub fn index(&self) -> &DispatchIndex {
        &self.index
    }
}

/// The publication slot behind a [`ServeHandle`]: the live version
/// plus a bounded tail of superseded versions for time-travel reads.
#[derive(Debug)]
struct Publications {
    current: Arc<PublishedIndex>,
    /// Superseded versions, oldest at the front. Holds at most
    /// `retain - 1` entries (the current version is the rest of the
    /// retention budget).
    history: VecDeque<Arc<PublishedIndex>>,
    retain: usize,
}

/// The atomic publication point for index versions — the `arc-swap`
/// protocol built from safe primitives (this crate forbids `unsafe`):
/// the lock guards only the `Arc` pointer, held for a clone on the read
/// side and a swap on the write side, both O(1). Readers then serve
/// from their `Arc` with no synchronization; a republish can never tear
/// an index a reader holds, and a reader is at most "one epoch behind"
/// in the instant between its load and a concurrent publish.
///
/// A handle can also *retain* superseded versions: with
/// [`set_retention`](ServeHandle::set_retention)`(k)`, the `k` most
/// recent epochs stay loadable through
/// [`load_at`](ServeHandle::load_at), giving readers repeatable
/// point-in-time queries ("time travel") while the write side keeps
/// publishing. The default retention is 1 — current only, exactly the
/// pre-retention behavior and memory footprint.
///
/// Handles are cheap to clone and share one published state.
#[derive(Clone, Debug)]
pub struct ServeHandle {
    current: Arc<RwLock<Publications>>,
}

impl ServeHandle {
    /// Publishes `index` as epoch 0.
    pub fn new(index: DispatchIndex) -> Self {
        ServeHandle {
            current: Arc::new(RwLock::new(Publications {
                current: Arc::new(PublishedIndex { epoch: 0, index }),
                history: VecDeque::new(),
                retain: 1,
            })),
        }
    }

    /// Packs any backend and publishes it as epoch 0 — the
    /// backend-generic twin of [`ServeHandle::new`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cpplookup_chg::fixtures;
    /// use cpplookup_core::serve::ServeHandle;
    /// use cpplookup_core::LookupTable;
    ///
    /// let handle = ServeHandle::serving(LookupTable::build(&fixtures::fig2()));
    /// assert_eq!(handle.epoch(), 0);
    /// ```
    pub fn serving(backend: impl IntoDispatchIndex) -> Self {
        Self::new(backend.into_dispatch_index())
    }

    /// The current index version. The returned `Arc` stays valid (and
    /// unchanged) for as long as the reader holds it, across any number
    /// of republishes.
    pub fn load(&self) -> Arc<PublishedIndex> {
        self.current
            .read()
            .expect("serve handle lock poisoned")
            .current
            .clone()
    }

    /// The retained version published as `epoch`, if it is still
    /// within the retention window. The current epoch is always
    /// loadable this way.
    pub fn load_at(&self, epoch: u64) -> Option<Arc<PublishedIndex>> {
        let slot = self.current.read().expect("serve handle lock poisoned");
        if slot.current.epoch == epoch {
            return Some(slot.current.clone());
        }
        slot.history.iter().find(|p| p.epoch == epoch).cloned()
    }

    /// Sets how many recent epochs (current included) stay loadable
    /// through [`load_at`](Self::load_at); clamped to at least 1.
    /// Shrinking drops the oldest retained versions immediately.
    pub fn set_retention(&self, k: usize) {
        let mut slot = self.current.write().expect("serve handle lock poisoned");
        slot.retain = k.max(1);
        let keep = slot.retain - 1;
        while slot.history.len() > keep {
            slot.history.pop_front();
        }
    }

    /// The epochs currently loadable through [`load_at`](Self::load_at),
    /// oldest first (the last entry is the current epoch).
    pub fn retained_epochs(&self) -> Vec<u64> {
        let slot = self.current.read().expect("serve handle lock poisoned");
        let mut epochs: Vec<u64> = slot.history.iter().map(|p| p.epoch).collect();
        epochs.push(slot.current.epoch);
        epochs
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// Atomically replaces the published index, returning the new
    /// epoch. Build the replacement *before* calling: the write lock is
    /// held only for the pointer swap (plus an O(1) push into the
    /// retention window when retention is above 1).
    pub fn publish(&self, index: DispatchIndex) -> u64 {
        let start = Instant::now();
        let mut slot = self.current.write().expect("serve handle lock poisoned");
        let epoch = slot.current.epoch + 1;
        let superseded =
            std::mem::replace(&mut slot.current, Arc::new(PublishedIndex { epoch, index }));
        if slot.retain > 1 {
            slot.history.push_back(superseded);
            let keep = slot.retain - 1;
            while slot.history.len() > keep {
                slot.history.pop_front();
            }
        }
        drop(slot);
        crate::obs::index_published(epoch, elapsed_ns(start));
        epoch
    }

    /// Packs any backend and atomically publishes it, returning the new
    /// epoch — [`publish`](Self::publish) behind the unified
    /// [`IntoDispatchIndex`] surface. The pack happens *before* the
    /// write lock is taken, so readers are never blocked on an index
    /// build.
    pub fn publish_backend(&self, backend: impl IntoDispatchIndex) -> u64 {
        let index = backend.into_dispatch_index();
        self.publish(index)
    }
}

/// A [`LookupEngine`] paired with a published [`DispatchIndex`]: edits
/// go through [`apply`](IndexedEngine::apply), which recomputes only
/// the dirty entries (the engine's incremental invalidation), refreshes
/// only the dirty index rows, and republishes — while clones of
/// [`handle`](IndexedEngine::handle) keep serving wait-free from
/// whatever epoch they loaded.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::{fixtures, Edit};
/// use cpplookup_core::serve::IndexedEngine;
/// use cpplookup_core::LookupEngine;
///
/// let mut serving = IndexedEngine::new(LookupEngine::new(fixtures::fig2()));
/// let handle = serving.handle();
/// let v0 = handle.load();
/// serving.apply(&[Edit::AddClass { name: "Z".into() }])?;
/// assert_eq!(handle.load().epoch(), v0.epoch() + 1);
/// # Ok::<(), cpplookup_chg::ChgError>(())
/// ```
pub struct IndexedEngine {
    engine: LookupEngine,
    handle: ServeHandle,
}

impl IndexedEngine {
    /// Builds the initial index from the engine's memo and publishes it
    /// as epoch 0.
    pub fn new(engine: LookupEngine) -> Self {
        let index = DispatchIndex::from_engine(&engine);
        IndexedEngine {
            engine,
            handle: ServeHandle::new(index),
        }
    }

    /// Pairs `engine` with an *existing* publication point: the index
    /// is rebuilt from the engine's memo and published on `handle` as a
    /// fresh epoch, so readers already serving from clones of `handle`
    /// (for example, a tenant that has been answering queries straight
    /// from a snapshot-packed index) migrate to the engine-backed
    /// versions without ever re-resolving a handle.
    ///
    /// This is the promotion step a write path takes when a previously
    /// read-only backend receives its first edit.
    pub fn attach(engine: LookupEngine, handle: ServeHandle) -> Self {
        handle.publish_backend(&engine);
        IndexedEngine { engine, handle }
    }

    /// A serving handle; clone freely across reader threads.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// The engine behind the index.
    pub fn engine(&self) -> &LookupEngine {
        &self.engine
    }

    /// Applies edits to the engine (incremental invalidation +
    /// recompute), refreshes the dirty index rows, and publishes the new
    /// version. On error the engine, the index, and the epoch are
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Any [`ChgError`] of [`LookupEngine::apply`].
    pub fn apply(&mut self, edits: &[Edit]) -> Result<u64, ChgError> {
        self.engine.apply(edits)?;
        let dirty = crate::engine::dirty_set(self.engine.chg(), edits);
        let refreshed = self.handle.load().index.refreshed(&self.engine, &dirty);
        Ok(self.handle.publish(refreshed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LookupOptions;
    use crate::StaticRule;
    use cpplookup_chg::{fixtures, Access, Chg, Inheritance, MemberDecl, MemberKind};

    fn graphs() -> Vec<Chg> {
        vec![
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::static_override_mix(),
            fixtures::dominance_diamond(),
            cpplookup_chg::ChgBuilder::new().finish().unwrap(),
        ]
    }

    #[test]
    fn index_matches_table_on_fixtures_and_both_rules() {
        for g in graphs() {
            for statics in [StaticRule::Cpp, StaticRule::Ignore] {
                let options = LookupOptions { statics };
                let table = LookupTable::build_with(&g, options);
                let index = DispatchIndex::from_table(LookupTable::build_with(&g, options));
                for c in g.classes() {
                    for m in g.member_ids() {
                        assert_eq!(
                            index.entry(c, m),
                            table.entry(c, m).cloned(),
                            "entry ({}, {})",
                            g.class_name(c),
                            g.member_name(m)
                        );
                        assert_eq!(
                            index.lookup_ref(c, m).to_outcome(),
                            table.lookup(c, m),
                            "outcome ({}, {})",
                            g.class_name(c),
                            g.member_name(m)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn from_engine_matches_from_table() {
        for g in graphs() {
            let by_table = DispatchIndex::from_table(LookupTable::build(&g));
            let engine = LookupEngine::new(g.clone());
            let by_engine = DispatchIndex::from_engine(&engine);
            for c in g.classes() {
                for m in g.member_ids() {
                    assert_eq!(by_table.entry(c, m), by_engine.entry(c, m));
                }
            }
            assert_eq!(by_table.entry_count(), by_engine.entry_count());
        }
    }

    #[test]
    fn members_of_is_sorted_and_complete() {
        let g = fixtures::fig3();
        let table = LookupTable::build(&g);
        let index = DispatchIndex::from_table(LookupTable::build(&g));
        for c in g.classes() {
            let ids: Vec<MemberId> = index.members_of(c).collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted, "row of {} unsorted", g.class_name(c));
            let mut expected: Vec<MemberId> = table.members_of(c).collect();
            expected.sort();
            assert_eq!(ids, expected);
        }
    }

    #[test]
    fn batch_preserves_order_and_dedupes() {
        let g = fixtures::fig3();
        let index = DispatchIndex::from_table(LookupTable::build(&g));
        let h = g.class_by_name("H").unwrap();
        let d = g.class_by_name("D").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let probes = vec![(h, bar), (d, foo), (h, bar), (h, foo), (d, foo), (h, bar)];
        let batched = index.lookup_batch(&probes);
        let singles: Vec<LookupOutcome> = probes
            .iter()
            .map(|&(c, m)| index.lookup_ref(c, m).to_outcome())
            .collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn default_directory_is_mph_and_open_repack_agrees_everywhere() {
        for g in graphs() {
            let mph = DispatchIndex::from_table(LookupTable::build(&g));
            assert_eq!(mph.directory_kind(), DirectoryKind::Mph);
            let open = mph.with_directory_kind(DirectoryKind::Open);
            assert_eq!(open.directory_kind(), DirectoryKind::Open);
            // Probe well past the live id range on both axes, so dead
            // keys go through both directories' miss paths too.
            for ci in 0..g.class_count() + 3 {
                for mi in 0..g.member_name_count() + 3 {
                    let (c, m) = (ClassId::from_index(ci), MemberId::from_index(mi));
                    assert_eq!(mph.lookup_ref(c, m), open.lookup_ref(c, m));
                }
            }
            // Repacking back lands on MPH again.
            assert_eq!(
                open.with_directory_kind(DirectoryKind::Mph)
                    .directory_kind(),
                DirectoryKind::Mph
            );
        }
    }

    #[test]
    fn batch_into_matches_singles_and_reuses_the_buffer() {
        for g in graphs() {
            let index = DispatchIndex::from_table(LookupTable::build(&g));
            let mut probes: Vec<(ClassId, MemberId)> = Vec::new();
            for ci in 0..g.class_count() + 2 {
                for mi in 0..g.member_name_count() + 2 {
                    probes.push((ClassId::from_index(ci), MemberId::from_index(mi)));
                }
            }
            // Odd lengths exercise the partial tail stripe.
            let mut out = Vec::new();
            for take in [0, 1, 5, 8, 9, probes.len()] {
                let take = take.min(probes.len());
                index.lookup_batch_into(&probes[..take], &mut out);
                assert_eq!(out.len(), take);
                for (i, &(c, m)) in probes[..take].iter().enumerate() {
                    assert_eq!(out[i], index.lookup_ref(c, m), "probe {i}");
                }
            }
            // The open fallback's batch path answers identically.
            let open = index.with_directory_kind(DirectoryKind::Open);
            let mut open_out = Vec::new();
            open.lookup_batch_into(&probes, &mut open_out);
            index.lookup_batch_into(&probes, &mut out);
            assert_eq!(out, open_out);
        }
    }

    #[test]
    fn refresh_preserves_directory_kind() {
        let g = fixtures::fig2();
        let engine = LookupEngine::new(g);
        let open = DispatchIndex::from_engine(&engine).with_directory_kind(DirectoryKind::Open);
        let refreshed = open.refreshed(&engine, &[]);
        assert_eq!(refreshed.directory_kind(), DirectoryKind::Open);
        let mph = DispatchIndex::from_engine(&engine);
        assert_eq!(
            mph.refreshed(&engine, &[]).directory_kind(),
            DirectoryKind::Mph
        );
    }

    #[test]
    fn directory_kind_labels_are_stable() {
        assert_eq!(DirectoryKind::Mph.label(), "mph");
        assert_eq!(DirectoryKind::Open.label(), "open");
    }

    #[test]
    fn pool_shares_equal_witness_sets() {
        // Sibling classes inherit the same ambiguity: their witness
        // sets must intern to one pool range.
        let g = fixtures::fig1();
        let index = DispatchIndex::from_table(LookupTable::build(&g));
        let blues: Vec<&PackedEntry> = index
            .entries
            .iter()
            .filter(|e| e.flags & FLAG_BLUE != 0)
            .collect();
        assert!(!blues.is_empty());
        assert!(
            index.pool.len() * 4 <= index.entries.len() * 24,
            "pool should stay small relative to the arena"
        );
    }

    #[test]
    fn outcome_ref_conversions() {
        let g = fixtures::fig1();
        let index = DispatchIndex::from_table(LookupTable::build(&g));
        let e = g.class_by_name("E").unwrap();
        let d = g.class_by_name("D").unwrap();
        let m = g.member_by_name("m").unwrap();
        let amb = index.lookup_ref(e, m);
        assert!(!amb.is_resolved());
        assert_eq!(amb.resolved_class(), None);
        match amb {
            OutcomeRef::Ambiguous { witnesses } => {
                assert!(!witnesses.is_empty());
                assert_eq!(witnesses.get(0), Some(witnesses.iter().next().unwrap()));
                assert_eq!(witnesses.len(), witnesses.to_vec().len());
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
        let res = index.lookup_ref(d, m);
        assert_eq!(res.resolved_class(), Some(d));
        assert_eq!(res.to_outcome(), index.lookup(d, m));
        let missing = MemberId::from_index(index.member_name_count() + 7);
        assert_eq!(index.lookup_ref(d, missing), OutcomeRef::NotFound);
        assert_eq!(
            index.lookup_ref(ClassId::from_index(999), m),
            OutcomeRef::NotFound
        );
    }

    #[test]
    fn dynamic_target_served_from_index() {
        let g = fixtures::dominance_diamond();
        let table = LookupTable::build(&g);
        let index = DispatchIndex::from_table(LookupTable::build(&g));
        let f = g.member_by_name("f").unwrap();
        for c in g.classes() {
            assert_eq!(
                index.dynamic_target(c, f),
                dynamic_target(&table, c, f),
                "{}",
                g.class_name(c)
            );
        }
    }

    #[test]
    fn member_lookup_trait_resolves_paths() {
        let g = fixtures::fig3();
        let mut index = DispatchIndex::from_table(LookupTable::build(&g));
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        assert_eq!(
            MemberLookup::resolve_path(&mut index, &g, h, foo)
                .unwrap()
                .display(&g)
                .to_string(),
            "GH"
        );
    }

    #[test]
    fn from_backend_matches_every_specific_constructor() {
        for g in graphs() {
            let by_table = DispatchIndex::from_table(LookupTable::build(&g));
            let via_table = DispatchIndex::from_backend(LookupTable::build(&g));
            let engine = LookupEngine::new(g.clone());
            let via_engine = DispatchIndex::from_backend(&engine);
            let via_identity = DispatchIndex::from_backend(by_table.clone());
            for c in g.classes() {
                for m in g.member_ids() {
                    assert_eq!(by_table.entry(c, m), via_table.entry(c, m));
                    assert_eq!(by_table.entry(c, m), via_engine.entry(c, m));
                    assert_eq!(by_table.entry(c, m), via_identity.entry(c, m));
                }
            }
        }
    }

    #[test]
    fn backend_labels_are_stable() {
        let g = fixtures::fig2();
        let table = LookupTable::build(&g);
        assert_eq!(table.backend_label(), "table");
        let engine = LookupEngine::new(g.clone());
        assert_eq!((&engine).backend_label(), "engine");
        let index = DispatchIndex::from_backend(table);
        assert_eq!(index.backend_label(), "index");
    }

    #[test]
    fn publish_backend_and_serving_bump_and_seed_epochs() {
        let g = fixtures::fig2();
        let handle = ServeHandle::serving(LookupTable::build(&g));
        assert_eq!(handle.epoch(), 0);
        let engine = LookupEngine::new(g.clone());
        assert_eq!(handle.publish_backend(&engine), 1);
        assert_eq!(handle.epoch(), 1);
    }

    #[test]
    fn attach_publishes_engine_index_on_existing_handle() {
        let g = fixtures::fig2();
        // A tenant starts serving from a table-packed index…
        let handle = ServeHandle::serving(LookupTable::build(&g));
        let reader = handle.clone();
        // …then its first edit promotes it to an engine-backed writer
        // on the *same* handle.
        let mut serving = IndexedEngine::attach(LookupEngine::new(g.clone()), handle);
        assert_eq!(reader.epoch(), 1, "attach republishes as a fresh epoch");
        let epoch = serving
            .apply(&[Edit::AddClass { name: "Z".into() }])
            .unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(reader.epoch(), 2, "readers of the old handle see edits");
    }

    #[test]
    fn publish_bumps_epochs_and_readers_keep_their_version() {
        let g = fixtures::fig2();
        let handle = ServeHandle::new(DispatchIndex::from_table(LookupTable::build(&g)));
        let v0 = handle.load();
        assert_eq!(v0.epoch(), 0);
        assert_eq!(
            handle.publish(DispatchIndex::from_table(LookupTable::build(&g))),
            1
        );
        assert_eq!(handle.epoch(), 1);
        // The reader's Arc still serves the old version, untorn.
        assert_eq!(v0.epoch(), 0);
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert!(v0.index().lookup_ref(e, m).is_resolved());
    }

    #[test]
    fn default_retention_keeps_only_the_current_epoch() {
        let g = fixtures::fig2();
        let handle = ServeHandle::new(DispatchIndex::from_table(LookupTable::build(&g)));
        handle.publish(DispatchIndex::from_table(LookupTable::build(&g)));
        handle.publish(DispatchIndex::from_table(LookupTable::build(&g)));
        assert_eq!(handle.retained_epochs(), vec![2]);
        assert!(handle.load_at(2).is_some());
        assert!(handle.load_at(1).is_none());
        assert!(handle.load_at(0).is_none());
    }

    #[test]
    fn retention_window_serves_time_travel_reads() {
        let g = fixtures::fig2();
        let mut serving = IndexedEngine::new(LookupEngine::new(g.clone()));
        let handle = serving.handle();
        handle.set_retention(3);
        let e = serving.engine().chg().class_by_name("E").unwrap();
        for i in 0..4 {
            serving
                .apply(&[Edit::AddMember {
                    class: e,
                    name: format!("m{i}"),
                    decl: MemberDecl::public(MemberKind::Function),
                }])
                .unwrap();
        }
        // Epochs 0 and 1 aged out of the 3-deep window; 2, 3, 4 remain.
        assert_eq!(handle.retained_epochs(), vec![2, 3, 4]);
        assert!(handle.load_at(1).is_none());
        // Old epochs answer from their frozen index: the member added
        // at epoch 3 is visible at 3 and 4, unknown at 2.
        let chg = serving.engine().chg();
        let m2 = chg.member_by_name("m2").unwrap();
        let at = |epoch: u64| handle.load_at(epoch).unwrap();
        assert!(!at(2).index().lookup_ref(e, m2).is_resolved());
        assert!(at(3).index().lookup_ref(e, m2).is_resolved());
        assert!(at(4).index().lookup_ref(e, m2).is_resolved());
        // Shrinking retention drops the oldest retained epoch.
        handle.set_retention(1);
        assert_eq!(handle.retained_epochs(), vec![4]);
        assert!(handle.load_at(3).is_none());
    }

    #[test]
    fn indexed_engine_refresh_matches_rebuild() {
        let g = fixtures::fig2();
        let mut serving = IndexedEngine::new(LookupEngine::new(g));
        let handle = serving.handle();
        let edits = [
            Edit::AddClass { name: "Z".into() },
            Edit::AddMember {
                class: serving.engine().chg().class_by_name("E").unwrap(),
                name: "fresh".into(),
                decl: MemberDecl::public(MemberKind::Function),
            },
        ];
        let epoch = serving.apply(&edits).unwrap();
        assert_eq!(epoch, 1);
        let refreshed = handle.load();
        let rebuilt = DispatchIndex::from_engine(serving.engine());
        let chg = serving.engine().chg();
        for c in chg.classes() {
            for m in chg.member_ids() {
                assert_eq!(
                    refreshed.index().entry(c, m),
                    rebuilt.entry(c, m),
                    "({}, {})",
                    chg.class_name(c),
                    chg.member_name(m)
                );
            }
        }
        assert_eq!(refreshed.index().entry_count(), rebuilt.entry_count());
        // A rejected edit changes nothing, including the epoch.
        let bad = serving.apply(&[Edit::AddEdge {
            derived: ClassId::from_index(0),
            base: ClassId::from_index(0),
            inheritance: Inheritance::NonVirtual,
            access: Access::Public,
        }]);
        assert!(bad.is_err());
        assert_eq!(handle.epoch(), 1);
    }

    #[test]
    fn refresh_after_edge_edit_updates_dirty_rows_only() {
        let g = fixtures::fig9();
        let mut serving = IndexedEngine::new(LookupEngine::new(g));
        let chg = serving.engine().chg();
        let d = chg.class_by_name("D").unwrap();
        let s = chg.class_by_name("S").unwrap();
        serving
            .apply(&[Edit::AddEdge {
                derived: d,
                base: s,
                inheritance: Inheritance::Virtual,
                access: Access::Public,
            }])
            .unwrap();
        let index = serving.handle().load();
        let rebuilt = DispatchIndex::from_engine(serving.engine());
        let chg = serving.engine().chg();
        for c in chg.classes() {
            for m in chg.member_ids() {
                assert_eq!(index.index().entry(c, m), rebuilt.entry(c, m));
            }
        }
    }
}
