//! The Ramalingam–Srinivasan member lookup algorithm for C++
//! (PLDI 1997) — the paper's primary contribution.
//!
//! Member lookup resolves a member name `m` in the context of a class
//! `C`: the lookup succeeds iff one definition of `m` *dominates* all
//! others inside a `C` object, which is subtle in the presence of
//! multiple and virtual inheritance. This crate implements the paper's
//! efficient, polynomial-time algorithm:
//!
//! * [`LeastVirtual`] / [`RedAbs`] — the path abstractions of Section 4
//!   and the `∘` extension operator (Definition 15),
//! * [`red_dominates`] — the constant-time dominance test (Lemma 4), with
//!   the static-member extension of Section 6,
//! * [`LookupTable`] — the eager, whole-table algorithm of Figure 8
//!   (`O((|M|+|N|)·(|N|+|E|))` when all lookups are unambiguous), with
//!   member-name-sharded parallel construction
//!   ([`LookupTable::build_parallel`]),
//! * [`LazyLookup`] — the memoising on-demand variant,
//! * [`LookupEngine`] — a thread-safe, stat-counting query engine over a
//!   sharded memo cache that survives hierarchy edits by incremental
//!   invalidation,
//! * [`MemberLookup`] — the trait unifying all of the above (and the
//!   baselines) behind one query interface,
//! * [`serve`] — the flat [`DispatchIndex`]: a pre-decoded, cache-dense
//!   serving read path with an allocation-free
//!   [`lookup_ref`](DispatchIndex::lookup_ref) fast path and wait-free
//!   epoch-published versions ([`ServeHandle`] / [`IndexedEngine`]),
//! * [`obs`] — the observability facade: per-engine metric registries,
//!   propagation work counters, and structured event sinks (feature
//!   `obs`, on by default; disabling it compiles the hooks away),
//! * [`trace`] — instrumented propagation reproducing Figures 6–7,
//! * [`access`] — post-lookup access-rights checking (Section 6),
//! * the applications the paper names in Section 1: [`dispatch`]
//!   (virtual-function tables), [`cha`] (static analysis of virtual
//!   calls), and [`slice`](mod@slice) (class hierarchy slicing).
//!
//! Every variant is differentially tested against the executable
//! Rossie–Friedman specification in `cpplookup-subobject`.
//!
//! # Examples
//!
//! The paper's Figure 9 program, on which g++ 2.7.2.1 wrongly reported an
//! ambiguity — the algorithm resolves it to `C::m`:
//!
//! ```
//! use cpplookup_chg::fixtures;
//! use cpplookup_core::{LookupOutcome, LookupTable};
//!
//! let g = fixtures::fig9();
//! let table = LookupTable::build(&g);
//! let e = g.class_by_name("E").unwrap();
//! let m = g.member_by_name("m").unwrap();
//! match table.lookup(e, m) {
//!     LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "C"),
//!     other => panic!("expected C::m, got {other:?}"),
//! }
//! // And the winning definition path is recoverable:
//! let path = table.resolve_path(&g, e, m).unwrap();
//! assert_eq!(path.display(&g).to_string(), "CDE");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod abstraction;
pub mod access;
mod api;
mod batched;
pub mod cha;
pub mod dispatch;
mod engine;
pub mod fxmap;
mod lazy;
pub mod mph;
pub mod obs;
mod parallel;
mod result;
pub mod serve;
pub mod slice;
mod table;
pub mod trace;

pub use abstraction::{
    red_dominates, red_dominates_blue, DisplayLv, LeastVirtual, RedAbs, StaticRule,
};
pub use api::MemberLookup;
pub use engine::{EngineBacking, EngineOptions, EngineStats, LookupEngine};
pub use lazy::LazyLookup;
pub use result::{DisplayEntry, Entry, LookupOutcome};
pub use serve::{
    DirectoryKind, DispatchIndex, IndexedEngine, IntoDispatchIndex, OutcomeRef, PublishedIndex,
    ServeHandle,
};
pub use table::{LookupOptions, LookupTable, TableStats};

pub mod prelude {
    //! The stable one-line import for lookup consumers:
    //! `use cpplookup_core::prelude::*;`.
    //!
    //! Re-exports the types almost every caller touches — the
    //! [`MemberLookup`] query trait and its [`LookupOutcome`], the
    //! buildable backends ([`LookupTable`], [`LookupEngine`]), and the
    //! serving layer ([`DispatchIndex`], [`ServeHandle`],
    //! [`IndexedEngine`]) behind the unified [`IntoDispatchIndex`]
    //! construction surface. Downstream facades (the root `cpplookup`
    //! crate) extend this with the snapshot types.
    pub use crate::abstraction::{LeastVirtual, StaticRule};
    pub use crate::api::MemberLookup;
    pub use crate::engine::{EngineOptions, LookupEngine};
    pub use crate::result::{Entry, LookupOutcome};
    pub use crate::serve::{
        DirectoryKind, DispatchIndex, IndexedEngine, IntoDispatchIndex, OutcomeRef, PublishedIndex,
        ServeHandle,
    };
    pub use crate::table::{LookupOptions, LookupTable};
}
