//! Parallel whole-table construction.
//!
//! The paper observes that once the preprocessing (topological order and
//! virtual-base closure) is done, the table columns for distinct member
//! names are **independent**: `lookup[·, m]` depends only on entries for
//! the same `m`. [`LookupTable::build_parallel`] exploits that with the
//! work-stealing batched sweep of [`crate::batched`]: workers drain
//! member columns (largest frontier first) from a shared cursor over
//! one CSR view of the hierarchy. Results are bit-identical to the
//! sequential [`LookupTable`] (asserted by tests).

use cpplookup_chg::Chg;

use crate::table::{LookupOptions, LookupTable};

impl LookupTable {
    /// Builds the complete lookup table using `threads` worker threads
    /// (clamped to at least 1), sharding member names round-robin.
    ///
    /// Produces exactly the same entries as [`LookupTable::build_with`].
    ///
    /// # Examples
    ///
    /// ```
    /// use cpplookup_chg::fixtures;
    /// use cpplookup_core::{LookupOptions, LookupTable};
    ///
    /// let g = fixtures::fig3();
    /// let par = LookupTable::build_parallel(&g, LookupOptions::default(), 4);
    /// let seq = LookupTable::build(&g);
    /// let h = g.class_by_name("H").unwrap();
    /// let foo = g.member_by_name("foo").unwrap();
    /// assert_eq!(par.entry(h, foo), seq.entry(h, foo));
    /// ```
    pub fn build_parallel(chg: &Chg, options: LookupOptions, threads: usize) -> LookupTable {
        let entries = crate::batched::build_entries_parallel(chg, options, threads.max(1));
        LookupTable::from_parts(options, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Entry;
    use crate::table::compute_entry_with;
    use cpplookup_chg::{fixtures, ClassId, MemberId};

    /// The old per-member reference column: for every class where `m` is
    /// visible, its entry, in topological order of class.
    fn member_column(chg: &Chg, m: MemberId, options: LookupOptions) -> Vec<(ClassId, Entry)> {
        let mut slots: Vec<Option<Entry>> = vec![None; chg.class_count()];
        let mut out = Vec::new();
        for &c in chg.topo_order() {
            let entry = compute_entry_with(chg, options, c, m, |b| slots[b.index()].as_ref());
            if let Some(e) = entry {
                out.push((c, e.clone()));
                slots[c.index()] = Some(e);
            }
        }
        out
    }

    #[test]
    fn parallel_equals_sequential_on_fixtures() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
        ] {
            let seq = LookupTable::build(&g);
            for threads in [1, 2, 7] {
                let par = LookupTable::build_parallel(&g, LookupOptions::default(), threads);
                for c in g.classes() {
                    for m in g.member_ids() {
                        assert_eq!(
                            par.entry(c, m),
                            seq.entry(c, m),
                            "threads={threads} ({}, {})",
                            g.class_name(c),
                            g.member_name(m)
                        );
                    }
                }
                assert_eq!(par.stats(), seq.stats());
            }
        }
    }

    #[test]
    fn column_matches_table() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        for m in g.member_ids() {
            let col = member_column(&g, m, LookupOptions::default());
            for (c, e) in &col {
                assert_eq!(t.entry(*c, m), Some(e));
            }
            // Column covers exactly the classes where m is visible.
            let visible = g.classes().filter(|&c| g.is_member_visible(c, m)).count();
            assert_eq!(col.len(), visible);
        }
    }

    #[test]
    fn zero_threads_clamps() {
        let g = fixtures::fig1();
        let par = LookupTable::build_parallel(&g, LookupOptions::default(), 0);
        assert_eq!(par.stats(), LookupTable::build(&g).stats());
    }

    #[test]
    fn empty_graph() {
        let g = cpplookup_chg::ChgBuilder::new().finish().unwrap();
        let par = LookupTable::build_parallel(&g, LookupOptions::default(), 4);
        assert_eq!(par.stats().entries, 0);
    }
}
