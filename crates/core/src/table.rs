//! The member lookup algorithm of Figure 8: eager, whole-table
//! construction by propagation of red/blue abstractions over the CHG in
//! topological order.
//!
//! For every class `C` (bases first) and every member `m` visible in `C`,
//! the algorithm computes `lookup[C, m]`:
//!
//! * `m ∈ M[C]` — the generated definition trivially dominates everything:
//!   `Red (C, Ω)` (line 12);
//! * otherwise the entries of the direct bases are merged: each base
//!   contributes either one red abstraction (extended through the edge
//!   with `∘`) or a set of blue abstractions. A single *candidate* red is
//!   maintained; reds that neither dominate nor are dominated demote both
//!   parties' `leastVirtual`s into the `toBeDominated` set (lines 14–33).
//!   Finally the candidate must dominate everything in `toBeDominated`,
//!   else the result is blue (lines 34–44).
//!
//! Complexity: `O((|M| + |N|) * (|N| + |E|))` for the whole table when all
//! lookups are unambiguous, `O(|M| * |N| * (|N| + |E|))` in the worst
//! case — versus the exponential subobject-graph approaches.

use std::collections::BTreeSet;
use std::fmt;

use cpplookup_chg::fxmap::{FxBuildHasher, FxHashMap};
use cpplookup_chg::{Chg, ClassId, MemberId, Path};

use crate::abstraction::{LeastVirtual, RedAbs, StaticRule};
use crate::api::MemberLookup;
use crate::result::{Entry, LookupOutcome};

/// Computes `lookup[c, m]` from the entries of `c`'s direct bases,
/// supplied by `base_entry` — the single propagation step of Figure 8
/// shared by the eager builder, the lazy cache, the parallel column
/// workers, and the engine's incremental recomputation.
///
/// `base_entry` is consulted once per direct base and must return that
/// base's entry for `m` (or `None` when `m` is not visible there); the
/// caller guarantees base entries are already up to date. Returns `None`
/// when `m ∉ Members[c]`.
pub(crate) fn compute_entry_with<'e, F>(
    chg: &Chg,
    options: LookupOptions,
    c: ClassId,
    m: MemberId,
    mut base_entry: F,
) -> Option<Entry>
where
    F: FnMut(ClassId) -> Option<&'e Entry>,
{
    crate::obs::propagation().node_visited();
    // Line 12: a generated definition kills everything arriving from
    // bases.
    if chg.declares(c, m) {
        return Some(Entry::Red {
            abs: RedAbs::generated(c),
            via: None,
            shared: Vec::new(),
        });
    }
    let mut merge = Merge::new();
    let mut visible = false;
    for spec in chg.direct_bases(c) {
        match base_entry(spec.base) {
            None => {}
            Some(Entry::Red { abs, shared, .. }) => {
                visible = true;
                let ext_shared: Vec<_> = shared
                    .iter()
                    .map(|lv| lv.extend(spec.base, spec.inheritance))
                    .collect();
                merge.add_red(
                    chg,
                    m,
                    abs.extend(spec.base, spec.inheritance),
                    &ext_shared,
                    spec.base,
                    options.statics,
                );
            }
            Some(Entry::Blue(set)) => {
                visible = true;
                for &lv in set {
                    merge.add_blue(lv.extend(spec.base, spec.inheritance));
                }
            }
        }
    }
    visible.then(|| merge.finish(chg))
}

/// Options controlling table construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct LookupOptions {
    /// Whether the static-member rule participates in dominance
    /// (default: full C++ semantics).
    pub statics: StaticRule,
}

/// A candidate red during a merge: the representative abstraction, the
/// edge it arrived through, and — for shared-static sets — the
/// `leastVirtual`s of the co-maximal definitions (excluding `abs.lv`).
#[derive(Clone, Debug)]
struct RedCand {
    abs: RedAbs,
    via: ClassId,
    shared: BTreeSet<LeastVirtual>,
}

impl RedCand {
    /// All `leastVirtual` abstractions of the candidate's definitions.
    fn lvs(&self) -> impl Iterator<Item = LeastVirtual> + '_ {
        std::iter::once(self.abs.lv).chain(self.shared.iter().copied())
    }

    /// Whether this (red) candidate dominates *every* definition abstracted
    /// by `others` — Lemma 4 applied element-wise, with rule 2 generalized
    /// to "the lv matches one of the candidate's definitions".
    fn dominates_all<I: IntoIterator<Item = LeastVirtual>>(&self, chg: &Chg, others: I) -> bool {
        others.into_iter().all(|b| match b {
            LeastVirtual::Class(v) => {
                chg.is_virtual_base_of(v, self.abs.ldc)
                    || self.abs.lv == b
                    || self.shared.contains(&b)
            }
            LeastVirtual::Omega => false,
        })
    }
}

/// The per-member merge state of Figure 8's inner loop (lines 14–33),
/// generalized to shared-static definition *sets* (see
/// [`Entry::Red`]'s `shared` field).
#[derive(Clone, Debug, Default)]
pub(crate) struct Merge {
    /// The current candidate (None both before the first red and after a
    /// demotion — the paper's `nocandidate`).
    candidate: Option<RedCand>,
    /// Whether any red was ever fed (for assertions).
    saw_red: bool,
    /// The `toBeDominated` set.
    demoted: BTreeSet<LeastVirtual>,
    /// Work counts accumulated locally and flushed to the global
    /// propagation counters in one batch by [`finish`](Merge::finish),
    /// keeping the per-abstraction cost at a plain integer increment.
    #[cfg(feature = "obs")]
    work: MergeWork,
}

/// Local merge work tallies (reds/blues fed, demotion events).
#[cfg(feature = "obs")]
#[derive(Clone, Copy, Debug, Default)]
struct MergeWork {
    reds: u32,
    blues: u32,
    demotions: u32,
}

impl Merge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Lines 18–28: a red definition (possibly a shared-static set)
    /// arrives from direct base `via`, already extended through the edge.
    pub(crate) fn add_red(
        &mut self,
        chg: &Chg,
        m: MemberId,
        abs: RedAbs,
        shared: &[LeastVirtual],
        via: ClassId,
        statics: StaticRule,
    ) {
        self.saw_red = true;
        #[cfg(feature = "obs")]
        {
            self.work.reds += 1;
        }
        let incoming = RedCand {
            abs,
            via,
            shared: shared.iter().copied().filter(|&lv| lv != abs.lv).collect(),
        };
        let Some(mut cand) = self.candidate.take() else {
            self.candidate = Some(incoming);
            return;
        };
        let mergeable = statics == StaticRule::Cpp
            && cand.abs.ldc == abs.ldc
            && chg
                .member_decl(abs.ldc, m)
                .is_some_and(|d| d.kind.is_static_for_lookup());
        if mergeable {
            // Definition 17, condition 2: co-maximal definitions of the
            // same static member stay live as one set.
            let extra: Vec<LeastVirtual> = incoming.lvs().filter(|&lv| lv != cand.abs.lv).collect();
            cand.shared.extend(extra);
            self.candidate = Some(cand);
        } else if incoming.dominates_all(chg, cand.lvs().collect::<Vec<_>>()) {
            self.candidate = Some(incoming);
        } else if !cand.dominates_all(chg, incoming.lvs().collect::<Vec<_>>()) {
            // Neither dominates: everything becomes blue.
            #[cfg(feature = "obs")]
            {
                self.work.demotions += 1;
            }
            let all: Vec<LeastVirtual> = cand.lvs().chain(incoming.lvs()).collect();
            self.demoted.extend(all);
            // candidate stays None (the paper's `nocandidate := true`).
        } else {
            // The incoming definition is dominated — killed.
            self.candidate = Some(cand);
        }
    }

    /// Lines 29–32: one element of a blue set arrives, already extended
    /// through the edge.
    pub(crate) fn add_blue(&mut self, lv: LeastVirtual) {
        #[cfg(feature = "obs")]
        {
            self.work.blues += 1;
        }
        self.demoted.insert(lv);
    }

    /// Lines 34–44: resolve the merge into a table entry.
    pub(crate) fn finish(self, chg: &Chg) -> Entry {
        #[cfg(feature = "obs")]
        let work = self.work;
        let entry = match self.candidate {
            None => Entry::Blue(self.demoted.into_iter().collect()),
            Some(cand) => {
                let surviving: BTreeSet<LeastVirtual> = self
                    .demoted
                    .into_iter()
                    .filter(|&b| !cand.dominates_all(chg, [b]))
                    .collect();
                if surviving.is_empty() {
                    Entry::Red {
                        abs: cand.abs,
                        via: Some(cand.via),
                        shared: cand.shared.into_iter().collect(),
                    }
                } else {
                    let mut blue = surviving;
                    blue.extend(cand.lvs());
                    Entry::Blue(blue.into_iter().collect())
                }
            }
        };
        #[cfg(feature = "obs")]
        crate::obs::propagation().flush_merge(
            work.reds,
            work.blues,
            work.demotions,
            matches!(entry, Entry::Blue(_)),
        );
        entry
    }

    /// Whether anything has been merged.
    pub(crate) fn is_empty(&self) -> bool {
        !self.saw_red && self.candidate.is_none() && self.demoted.is_empty()
    }
}

/// A fully tabulated lookup: `lookup[C, m]` for every class `C` and every
/// member `m ∈ Members[C]`.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::{LookupOutcome, LookupTable};
///
/// let g = fixtures::fig2();
/// let table = LookupTable::build(&g);
/// let e = g.class_by_name("E").unwrap();
/// let m = g.member_by_name("m").unwrap();
/// match table.lookup(e, m) {
///     LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "D"),
///     other => panic!("expected D::m, got {other:?}"),
/// }
/// ```
#[derive(Clone)]
pub struct LookupTable {
    options: LookupOptions,
    entries: Vec<FxHashMap<MemberId, Entry>>,
}

impl LookupTable {
    /// Builds the whole table with default options (full C++ semantics).
    pub fn build(chg: &Chg) -> Self {
        Self::build_with(chg, LookupOptions::default())
    }

    /// Builds the whole table with explicit options.
    ///
    /// Uses the single-sweep batched compiler: one CSR flattening of
    /// the hierarchy, member-frontier pruning so only live
    /// `(class, member)` pairs are touched, and arena-interned
    /// abstractions in the merge loop. Produces entries identical to
    /// [`LookupTable::build_reference`] (asserted by the differential
    /// suite), several-fold faster on large hierarchies.
    pub fn build_with(chg: &Chg, options: LookupOptions) -> Self {
        LookupTable {
            options,
            entries: crate::batched::build_entries(chg, options),
        }
    }

    /// Builds the whole table with the retired per-member strategy:
    /// for each member name, one full topological sweep over *all*
    /// classes through [`compute_entry_with`] — `Θ(|N|·|M|)`
    /// propagation steps regardless of where the member is actually
    /// visible. This is the column build the pre-batched parallel
    /// fan-out ran per member, and the "old" baseline of the E21
    /// experiment and the `e21-smoke` regression gate; not used on any
    /// production path.
    pub fn build_per_member(chg: &Chg, options: LookupOptions) -> Self {
        let start = std::time::Instant::now();
        let n = chg.class_count();
        let mut entries: Vec<FxHashMap<MemberId, Entry>> = vec![FxHashMap::default(); n];
        let mut slots: Vec<Option<Entry>> = vec![None; n];
        for m in chg.member_ids() {
            slots.iter_mut().for_each(|s| *s = None);
            for &c in chg.topo_order() {
                let entry = compute_entry_with(chg, options, c, m, |b| slots[b.index()].as_ref());
                if let Some(e) = entry {
                    entries[c.index()].insert(m, e.clone());
                    slots[c.index()] = Some(e);
                }
            }
        }
        crate::obs::table_built(
            "per-member",
            (n as u64) * (chg.member_name_count() as u64),
            0,
            crate::batched::elapsed_ns(start),
        );
        LookupTable { options, entries }
    }

    /// Builds the whole table with the original per-class/per-member
    /// propagation — a literal transcription of Figure 8's doubly
    /// nested loop.
    ///
    /// Kept as the differential oracle for the batched compiler (see
    /// `tests/build_equiv.rs` and the `e21-smoke` CI gate); not used on
    /// any production path.
    pub fn build_reference(chg: &Chg, options: LookupOptions) -> Self {
        let start = std::time::Instant::now();
        let n = chg.class_count();
        let mut total_entries = 0u64;
        let mut entries: Vec<FxHashMap<MemberId, Entry>> = vec![FxHashMap::default(); n];
        for &c in chg.topo_order() {
            let mut acc: FxHashMap<MemberId, Merge> = FxHashMap::default();
            for spec in chg.direct_bases(c) {
                for (&m, entry) in &entries[spec.base.index()] {
                    // Line 12: a generated definition kills everything
                    // arriving from bases; skip the merge entirely.
                    if chg.declares(c, m) {
                        continue;
                    }
                    let merge = acc.entry(m).or_default();
                    match entry {
                        Entry::Red { abs, shared, .. } => {
                            let ext_shared: Vec<_> = shared
                                .iter()
                                .map(|lv| lv.extend(spec.base, spec.inheritance))
                                .collect();
                            merge.add_red(
                                chg,
                                m,
                                abs.extend(spec.base, spec.inheritance),
                                &ext_shared,
                                spec.base,
                                options.statics,
                            );
                        }
                        Entry::Blue(set) => {
                            for &lv in set {
                                merge.add_blue(lv.extend(spec.base, spec.inheritance));
                            }
                        }
                    }
                }
            }
            let mut tbl: FxHashMap<MemberId, Entry> = FxHashMap::with_capacity_and_hasher(
                acc.len() + chg.declared_members(c).len(),
                FxBuildHasher,
            );
            for &(m, _) in chg.declared_members(c) {
                tbl.insert(
                    m,
                    Entry::Red {
                        abs: RedAbs::generated(c),
                        via: None,
                        shared: Vec::new(),
                    },
                );
            }
            for (m, merge) in acc {
                debug_assert!(!merge.is_empty());
                tbl.insert(m, merge.finish(chg));
            }
            // The eager builder bypasses `compute_entry_with`, so count
            // its per-(class, member) steps here in one batch.
            crate::obs::propagation().nodes_visited_add(tbl.len() as u64);
            total_entries += tbl.len() as u64;
            entries[c.index()] = tbl;
        }
        crate::obs::table_built(
            "reference",
            total_entries,
            0,
            crate::batched::elapsed_ns(start),
        );
        LookupTable { options, entries }
    }

    /// Assembles a table from prebuilt per-class entry maps (used by the
    /// parallel builder).
    pub(crate) fn from_parts(
        options: LookupOptions,
        entries: Vec<FxHashMap<MemberId, Entry>>,
    ) -> Self {
        LookupTable { options, entries }
    }

    /// Dismantles the table into its per-class entry maps (used by the
    /// engine to seed its cache without re-deriving every entry).
    pub(crate) fn into_entries(self) -> Vec<FxHashMap<MemberId, Entry>> {
        self.entries
    }

    /// The options the table was built with.
    pub fn options(&self) -> LookupOptions {
        self.options
    }

    /// The raw table entry for `(c, m)`, or `None` when
    /// `m ∉ Members[c]`.
    pub fn entry(&self, c: ClassId, m: MemberId) -> Option<&Entry> {
        self.entries[c.index()].get(&m)
    }

    /// `lookup(c, m)` — constant time once the table is built.
    pub fn lookup(&self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupOutcome::from_entry(self.entry(c, m))
    }

    /// The member names visible in `c` (`Members[c]` of Figure 8), in
    /// ascending member-id (rank) order — deterministic regardless of
    /// hash-map iteration order, so reports and golden files built from
    /// it are stable.
    pub fn members_of(&self, c: ClassId) -> impl Iterator<Item = MemberId> + '_ {
        let mut members: Vec<MemberId> = self.entries[c.index()].keys().copied().collect();
        members.sort_unstable();
        members.into_iter()
    }

    /// Recovers a concrete definition path for an unambiguous lookup —
    /// the "triple abstraction" of Section 4, realized as parent pointers:
    /// each red entry records the base edge it arrived through, so the
    /// full path is reassembled by walking down to the generated
    /// definition. Returns `None` for missing or ambiguous entries.
    ///
    /// The returned path `α` satisfies `ldc(α) =` the resolved class,
    /// `mdc(α) = c`, and is a member of the winning `≈`-equivalence class.
    pub fn resolve_path(&self, chg: &Chg, c: ClassId, m: MemberId) -> Option<Path> {
        let mut rev = vec![c];
        let mut cur = c;
        loop {
            match self.entry(cur, m)? {
                Entry::Red { via: Some(x), .. } => {
                    rev.push(*x);
                    cur = *x;
                }
                Entry::Red { via: None, .. } => break,
                Entry::Blue(_) => return None,
            }
        }
        rev.reverse();
        Some(Path::new(chg, rev).expect("parent pointers follow real edges"))
    }

    /// Table-wide statistics, used by the experiment reports. Classes
    /// are walked in id order and each class's members in rank order
    /// (via [`members_of`](Self::members_of)), so any future
    /// order-sensitive accumulation stays deterministic.
    pub fn stats(&self) -> TableStats {
        let mut stats = TableStats::default();
        for (ci, class_tbl) in self.entries.iter().enumerate() {
            for m in self.members_of(ClassId::from_index(ci)) {
                stats.entries += 1;
                match &class_tbl[&m] {
                    Entry::Red { .. } => stats.red += 1,
                    Entry::Blue(_) => stats.blue += 1,
                }
            }
        }
        stats
    }
}

impl MemberLookup for LookupTable {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupTable::lookup(self, c, m)
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        LookupTable::entry(self, c, m).cloned()
    }

    fn resolve_path(&mut self, chg: &Chg, c: ClassId, m: MemberId) -> Option<Path> {
        LookupTable::resolve_path(self, chg, c, m)
    }
}

impl fmt::Debug for LookupTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "LookupTable {{ classes: {}, entries: {}, red: {}, blue: {} }}",
            self.entries.len(),
            s.entries,
            s.red,
            s.blue
        )
    }
}

/// Aggregate counts over a [`LookupTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Total `(class, member)` entries (`Σ_C |Members[C]|`).
    pub entries: usize,
    /// Unambiguous entries.
    pub red: usize,
    /// Ambiguous entries.
    pub blue: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    fn outcome(g: &Chg, class: &str, member: &str) -> LookupOutcome {
        let t = LookupTable::build(g);
        t.lookup(
            g.class_by_name(class).unwrap(),
            g.member_by_name(member).unwrap(),
        )
    }

    #[test]
    fn members_of_is_rank_ordered() {
        let g = fixtures::fig3();
        let table = LookupTable::build(&g);
        for c in g.classes() {
            let ids: Vec<MemberId> = table.members_of(c).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(
                ids,
                sorted,
                "members_of({}) not rank-ordered",
                g.class_name(c)
            );
        }
        let h = g.class_by_name("H").unwrap();
        assert_eq!(table.members_of(h).count(), 2);
    }

    #[test]
    fn fig1_ambiguous() {
        let g = fixtures::fig1();
        assert!(matches!(
            outcome(&g, "E", "m"),
            LookupOutcome::Ambiguous { .. }
        ));
    }

    #[test]
    fn fig2_resolves_to_d() {
        let g = fixtures::fig2();
        match outcome(&g, "E", "m") {
            LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "D"),
            other => panic!("expected D, got {other:?}"),
        }
    }

    #[test]
    fn fig3_foo_and_bar() {
        let g = fixtures::fig3();
        match outcome(&g, "H", "foo") {
            LookupOutcome::Resolved {
                class,
                least_virtual,
            } => {
                assert_eq!(g.class_name(class), "G");
                assert!(least_virtual.is_omega());
            }
            other => panic!("expected G::foo, got {other:?}"),
        }
        match outcome(&g, "H", "bar") {
            LookupOutcome::Ambiguous { witnesses } => {
                // Figure 7: lookup[H, bar] = Blue {Ω}.
                assert_eq!(witnesses, vec![LeastVirtual::Omega]);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
        // Figure 6: lookup at D and F ambiguous for foo.
        assert!(matches!(
            outcome(&g, "D", "foo"),
            LookupOutcome::Ambiguous { .. }
        ));
        assert!(matches!(
            outcome(&g, "F", "foo"),
            LookupOutcome::Ambiguous { .. }
        ));
        assert!(matches!(
            outcome(&g, "F", "bar"),
            LookupOutcome::Ambiguous { .. }
        ));
        match outcome(&g, "G", "foo") {
            LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "G"),
            other => panic!("expected G, got {other:?}"),
        }
    }

    #[test]
    fn fig3_blue_abstractions_match_figure6() {
        // Figure 6: at D the reds demote to blue {Ω}; propagated through
        // the virtual edge D→F this becomes blue {D}.
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let foo = g.member_by_name("foo").unwrap();
        let d = g.class_by_name("D").unwrap();
        let f = g.class_by_name("F").unwrap();
        assert_eq!(
            t.entry(d, foo),
            Some(&Entry::Blue(vec![LeastVirtual::Omega]))
        );
        assert_eq!(
            t.entry(f, foo),
            Some(&Entry::Blue(vec![LeastVirtual::Class(d)]))
        );
    }

    #[test]
    fn fig9_unambiguous_c() {
        let g = fixtures::fig9();
        match outcome(&g, "E", "m") {
            LookupOutcome::Resolved {
                class,
                least_virtual,
            } => {
                assert_eq!(g.class_name(class), "C");
                assert!(least_virtual.is_omega());
            }
            other => panic!("fig9 must resolve to C::m, got {other:?}"),
        }
    }

    #[test]
    fn not_found_for_unknown_member() {
        let mut b = cpplookup_chg::ChgBuilder::new();
        let base = b.class("Base");
        let derived = b.class("Derived");
        let sibling = b.class("Sibling");
        b.member(base, "m");
        b.derive(derived, base, cpplookup_chg::Inheritance::NonVirtual)
            .unwrap();
        let ghost = b.intern_member_name("ghost");
        let g = b.finish().unwrap();
        let m = g.member_by_name("m").unwrap();
        let t = LookupTable::build(&g);
        assert!(t.lookup(base, m).is_resolved());
        assert!(t.lookup(derived, m).is_resolved(), "inherited member found");
        assert_eq!(t.lookup(sibling, m), LookupOutcome::NotFound);
        assert_eq!(t.lookup(derived, ghost), LookupOutcome::NotFound);
    }

    #[test]
    fn static_diamond_semantics() {
        let g = fixtures::static_diamond();
        let d = g.class_by_name("D").unwrap();
        let s = g.member_by_name("s").unwrap();
        let dm = g.member_by_name("d").unwrap();
        let t = LookupTable::build(&g);
        match t.lookup(d, s) {
            LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "A"),
            other => panic!("static member must resolve, got {other:?}"),
        }
        assert!(matches!(t.lookup(d, dm), LookupOutcome::Ambiguous { .. }));
        // With the rule disabled, both are ambiguous (pure Definition 9).
        let t9 = LookupTable::build_with(
            &g,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        assert!(matches!(t9.lookup(d, s), LookupOutcome::Ambiguous { .. }));
    }

    #[test]
    fn static_override_mix_is_ambiguous_at_t() {
        // The counterexample to propagating only a representative of a
        // shared-static set (see the fixture's docs): J resolves, T does
        // not.
        let g = fixtures::static_override_mix();
        let t = LookupTable::build(&g);
        let id = g.member_by_name("id").unwrap();
        let j = g.class_by_name("J").unwrap();
        let tt = g.class_by_name("T").unwrap();
        match t.lookup(j, id) {
            LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "S0"),
            other => panic!("lookup(J, id) must resolve, got {other:?}"),
        }
        // The J entry is a shared-static *set* carrying both lvs.
        match t.entry(j, id) {
            Some(Entry::Red { shared, .. }) => assert!(!shared.is_empty()),
            other => panic!("expected shared-static red at J, got {other:?}"),
        }
        assert!(
            matches!(t.lookup(tt, id), LookupOutcome::Ambiguous { .. }),
            "W::id does not dominate the replicated S0::id"
        );
    }

    #[test]
    fn path_recovery_matches_paper() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let p = t.resolve_path(&g, h, foo).unwrap();
        assert_eq!(p.display(&g).to_string(), "GH");
        assert_eq!(t.resolve_path(&g, h, bar), None, "ambiguous: no path");
        // fig2: the winning path for E::m is B·D? No — D declares m, so
        // the path is D→E.
        let g2 = fixtures::fig2();
        let t2 = LookupTable::build(&g2);
        let e2 = g2.class_by_name("E").unwrap();
        let m2 = g2.member_by_name("m").unwrap();
        assert_eq!(
            t2.resolve_path(&g2, e2, m2)
                .unwrap()
                .display(&g2)
                .to_string(),
            "DE"
        );
    }

    #[test]
    fn members_sets_accumulate() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let h = g.class_by_name("H").unwrap();
        let mut names: Vec<&str> = t.members_of(h).map(|m| g.member_name(m)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["bar", "foo"]);
        let a = g.class_by_name("A").unwrap();
        assert_eq!(t.members_of(a).count(), 1);
    }

    #[test]
    fn stats_count_red_and_blue() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let s = t.stats();
        assert_eq!(s.entries, s.red + s.blue);
        assert!(s.blue >= 4, "D/F for foo, F/H for bar at least");
        assert!(s.red >= 8);
        assert!(format!("{t:?}").contains("entries"));
    }

    #[test]
    fn dominance_diamond_resolves_left() {
        let g = fixtures::dominance_diamond();
        match outcome(&g, "Bottom", "f") {
            LookupOutcome::Resolved {
                class,
                least_virtual,
            } => {
                assert_eq!(g.class_name(class), "Left");
                assert!(least_virtual.is_omega());
            }
            other => panic!("expected Left::f, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let g = fixtures::fig3();
        let t1 = LookupTable::build(&g);
        let t2 = LookupTable::build(&g);
        for c in g.classes() {
            for m in g.member_ids() {
                assert_eq!(t1.entry(c, m), t2.entry(c, m));
            }
        }
    }
}

#[cfg(test)]
mod merge_micro_tests {
    //! Line-level coverage of the Figure 8 merge states.

    use super::*;
    use crate::abstraction::LeastVirtual;
    use cpplookup_chg::fixtures;

    fn fig3_ctx() -> (Chg, MemberId) {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        (g, foo)
    }

    #[test]
    fn first_red_becomes_candidate() {
        let (g, foo) = fig3_ctx();
        let a = g.class_by_name("A").unwrap();
        let b = g.class_by_name("B").unwrap();
        let mut merge = Merge::new();
        assert!(merge.is_empty());
        merge.add_red(&g, foo, RedAbs::generated(a), &[], b, StaticRule::Cpp);
        assert!(!merge.is_empty());
        match merge.finish(&g) {
            Entry::Red { abs, via, shared } => {
                assert_eq!(abs.ldc, a);
                assert_eq!(via, Some(b));
                assert!(shared.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomparable_reds_demote_to_blue() {
        // Two (A, Ω)-style reds from different classes: neither dominates
        // (rule 2 needs non-Ω, rule 1 needs a virtual base).
        let (g, foo) = fig3_ctx();
        let a = g.class_by_name("A").unwrap();
        let e = g.class_by_name("E").unwrap();
        let b = g.class_by_name("B").unwrap();
        let c = g.class_by_name("C").unwrap();
        let mut merge = Merge::new();
        merge.add_red(&g, foo, RedAbs::generated(a), &[], b, StaticRule::Cpp);
        merge.add_red(&g, foo, RedAbs::generated(e), &[], c, StaticRule::Cpp);
        match merge.finish(&g) {
            Entry::Blue(set) => assert_eq!(set, vec![LeastVirtual::Omega]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn late_red_can_rescue_after_demotion() {
        // Mirrors fig9's E: two incomparable reds demote, a third
        // dominates everything in toBeDominated.
        let g = fixtures::fig9();
        let m = g.member_by_name("m").unwrap();
        let a = g.class_by_name("A").unwrap();
        let b = g.class_by_name("B").unwrap();
        let c = g.class_by_name("C").unwrap();
        let d = g.class_by_name("D").unwrap();
        let mut merge = Merge::new();
        merge.add_red(
            &g,
            m,
            RedAbs {
                ldc: a,
                lv: LeastVirtual::Class(a),
            },
            &[],
            a,
            StaticRule::Cpp,
        );
        merge.add_red(
            &g,
            m,
            RedAbs {
                ldc: b,
                lv: LeastVirtual::Class(b),
            },
            &[],
            b,
            StaticRule::Cpp,
        );
        merge.add_red(&g, m, RedAbs::generated(c), &[], d, StaticRule::Cpp);
        match merge.finish(&g) {
            Entry::Red { abs, .. } => assert_eq!(abs.ldc, c),
            other => panic!("the rescue must happen: {other:?}"),
        }
    }

    #[test]
    fn dominated_incoming_red_is_killed() {
        // Candidate (G, Ω) then incoming (A, D): D is a virtual base of
        // G in fig3, so the incoming is dominated and dropped.
        let (g, foo) = fig3_ctx();
        let gg = g.class_by_name("G").unwrap();
        let a = g.class_by_name("A").unwrap();
        let d = g.class_by_name("D").unwrap();
        let f = g.class_by_name("F").unwrap();
        let mut merge = Merge::new();
        merge.add_red(&g, foo, RedAbs::generated(gg), &[], gg, StaticRule::Cpp);
        merge.add_red(
            &g,
            foo,
            RedAbs {
                ldc: a,
                lv: LeastVirtual::Class(d),
            },
            &[],
            f,
            StaticRule::Cpp,
        );
        match merge.finish(&g) {
            Entry::Red { abs, .. } => assert_eq!(abs.ldc, gg),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blue_only_merge_stays_blue() {
        let (g, _foo) = fig3_ctx();
        let d = g.class_by_name("D").unwrap();
        let mut merge = Merge::new();
        merge.add_blue(LeastVirtual::Class(d));
        merge.add_blue(LeastVirtual::Omega);
        merge.add_blue(LeastVirtual::Class(d)); // dedup
        match merge.finish(&g) {
            Entry::Blue(set) => {
                assert_eq!(set, vec![LeastVirtual::Omega, LeastVirtual::Class(d)])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn candidate_dominates_blue_leftovers() {
        // Candidate (G, Ω) dominates a blue D (virtual base of G) but not
        // a blue Ω.
        let (g, foo) = fig3_ctx();
        let gg = g.class_by_name("G").unwrap();
        let d = g.class_by_name("D").unwrap();
        let mut merge = Merge::new();
        merge.add_blue(LeastVirtual::Class(d));
        merge.add_red(&g, foo, RedAbs::generated(gg), &[], gg, StaticRule::Cpp);
        assert!(matches!(merge.finish(&g), Entry::Red { .. }));

        let mut merge = Merge::new();
        merge.add_blue(LeastVirtual::Omega);
        merge.add_red(&g, foo, RedAbs::generated(gg), &[], gg, StaticRule::Cpp);
        match merge.finish(&g) {
            Entry::Blue(set) => {
                // The candidate's own lv joins the surviving witnesses
                // (Figure 8, line 43).
                assert_eq!(set, vec![LeastVirtual::Omega]);
            }
            other => panic!("{other:?}"),
        }
    }
}
