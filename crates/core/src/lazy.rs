//! The memoising lazy variant of the lookup algorithm.
//!
//! Section 5 of the paper: *"It is easy enough to modify the algorithm
//! into a memoising lazy algorithm that does not compute table entries
//! that are unnecessary: a request for `lookup[C,m]` will recursively
//! invoke `lookup[B,m]` for every direct base class `B` of `C` if
//! necessary; as long as the algorithm caches or memoizes the results of
//! every lookup performed, this will not worsen the complexity of the
//! algorithm."*
//!
//! The recursion is realized with an explicit stack, so arbitrarily deep
//! hierarchies (the chain workloads of the benchmarks) cannot overflow the
//! call stack.

use cpplookup_chg::{Chg, ClassId, MemberId, Path};

use crate::api::MemberLookup;
use crate::fxmap::FxHashMap;
use crate::result::{Entry, LookupOutcome};
use crate::table::{compute_entry_with, LookupOptions};

/// Cached value for one `(class, member)` pair: either a real entry or
/// the knowledge that the member is not visible there.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    Present(Entry),
    Absent,
}

/// A memoising, on-demand member lookup over a class hierarchy.
///
/// Computes only the `(class, member)` entries a query transitively
/// needs, caching every intermediate result; repeated queries are `O(1)`.
/// Produces entries identical to [`crate::LookupTable`] (asserted by the
/// test suite over random hierarchies).
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::{LazyLookup, LookupOutcome};
///
/// let g = fixtures::fig9();
/// let mut lazy = LazyLookup::new(&g);
/// let e = g.class_by_name("E").unwrap();
/// let m = g.member_by_name("m").unwrap();
/// match lazy.lookup(e, m) {
///     LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "C"),
///     other => panic!("expected C::m, got {other:?}"),
/// }
/// ```
pub struct LazyLookup<'a> {
    chg: &'a Chg,
    options: LookupOptions,
    cache: Vec<FxHashMap<MemberId, Slot>>,
    computed_entries: usize,
}

impl<'a> LazyLookup<'a> {
    /// Creates an empty cache over `chg` with default options.
    pub fn new(chg: &'a Chg) -> Self {
        Self::with_options(chg, LookupOptions::default())
    }

    /// Creates an empty cache with explicit options.
    pub fn with_options(chg: &'a Chg, options: LookupOptions) -> Self {
        LazyLookup {
            chg,
            options,
            cache: vec![FxHashMap::default(); chg.class_count()],
            computed_entries: 0,
        }
    }

    /// Number of `(class, member)` entries computed so far — the measure
    /// of how much work laziness avoided.
    pub fn computed_entries(&self) -> usize {
        self.computed_entries
    }

    /// `lookup(c, m)`, computing and caching whatever it needs.
    pub fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        self.ensure(c, m);
        match &self.cache[c.index()][&m] {
            Slot::Absent => LookupOutcome::NotFound,
            Slot::Present(e) => LookupOutcome::from_entry(Some(e)),
        }
    }

    /// The raw entry for `(c, m)` (computing it if needed), or `None`
    /// when the member is not visible in `c`.
    pub fn entry(&mut self, c: ClassId, m: MemberId) -> Option<&Entry> {
        self.ensure(c, m);
        match &self.cache[c.index()][&m] {
            Slot::Absent => None,
            Slot::Present(e) => Some(e),
        }
    }

    /// Recovers the winning definition path like
    /// [`crate::LookupTable::resolve_path`].
    ///
    /// `chg` must be the hierarchy this cache was created over; the
    /// parameter exists so the signature matches the eager table's (and
    /// the [`MemberLookup`] trait's) shape.
    pub fn resolve_path(&mut self, chg: &Chg, c: ClassId, m: MemberId) -> Option<Path> {
        debug_assert!(std::ptr::eq(self.chg, chg) || chg.class_count() == self.chg.class_count());
        self.ensure(c, m);
        let mut rev = vec![c];
        let mut cur = c;
        loop {
            match self.cache[cur.index()].get(&m)? {
                Slot::Present(Entry::Red { via: Some(x), .. }) => {
                    let x = *x;
                    rev.push(x);
                    cur = x;
                }
                Slot::Present(Entry::Red { via: None, .. }) => break,
                _ => return None,
            }
        }
        rev.reverse();
        Some(Path::new(chg, rev).expect("parent pointers follow real edges"))
    }

    fn ensure(&mut self, c: ClassId, m: MemberId) {
        if self.cache[c.index()].contains_key(&m) {
            return;
        }
        let mut stack = vec![c];
        while let Some(&top) = stack.last() {
            if self.cache[top.index()].contains_key(&m) {
                stack.pop();
                continue;
            }
            // A declared member needs no base entries (line 12, handled
            // inside `compute_entry_with`); otherwise all bases must be
            // cached first.
            if !self.chg.declares(top, m) {
                let missing: Vec<ClassId> = self
                    .chg
                    .direct_bases(top)
                    .iter()
                    .map(|s| s.base)
                    .filter(|b| !self.cache[b.index()].contains_key(&m))
                    .collect();
                if !missing.is_empty() {
                    stack.extend(missing);
                    continue;
                }
            }
            // Merge exactly like the eager algorithm.
            let entry = compute_entry_with(self.chg, self.options, top, m, |b| {
                match &self.cache[b.index()][&m] {
                    Slot::Present(e) => Some(e),
                    Slot::Absent => None,
                }
            });
            let slot = match entry {
                Some(e) => Slot::Present(e),
                None => Slot::Absent,
            };
            self.insert(top, m, slot);
            stack.pop();
        }
    }

    fn insert(&mut self, c: ClassId, m: MemberId, slot: Slot) {
        if matches!(slot, Slot::Present(_)) {
            self.computed_entries += 1;
        }
        self.cache[c.index()].insert(m, slot);
    }
}

impl MemberLookup for LazyLookup<'_> {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        LazyLookup::lookup(self, c, m)
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        LazyLookup::entry(self, c, m).cloned()
    }

    fn resolve_path(&mut self, chg: &Chg, c: ClassId, m: MemberId) -> Option<Path> {
        LazyLookup::resolve_path(self, chg, c, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LookupTable;
    use cpplookup_chg::fixtures;

    #[test]
    fn lazy_matches_eager_on_all_fixtures() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::dominance_diamond(),
        ] {
            let eager = LookupTable::build(&g);
            let mut lazy = LazyLookup::new(&g);
            for c in g.classes() {
                for m in g.member_ids() {
                    assert_eq!(
                        lazy.entry(c, m),
                        eager.entry(c, m),
                        "mismatch at ({}, {})",
                        g.class_name(c),
                        g.member_name(m)
                    );
                }
            }
        }
    }

    #[test]
    fn laziness_computes_only_whats_needed() {
        let g = fixtures::fig3();
        let mut lazy = LazyLookup::new(&g);
        // Looking up foo in B touches only A and B.
        let bb = g.class_by_name("B").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        lazy.lookup(bb, foo);
        assert_eq!(lazy.computed_entries(), 2);
        // bar in H then explores the rest but never recomputes.
        let h = g.class_by_name("H").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        lazy.lookup(h, bar);
        let after = lazy.computed_entries();
        lazy.lookup(h, bar);
        assert_eq!(lazy.computed_entries(), after, "memoised");
    }

    #[test]
    fn lazy_path_recovery() {
        let g = fixtures::fig3();
        let mut lazy = LazyLookup::new(&g);
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        assert_eq!(
            lazy.resolve_path(&g, h, foo)
                .unwrap()
                .display(&g)
                .to_string(),
            "GH"
        );
        let bar = g.member_by_name("bar").unwrap();
        assert_eq!(lazy.resolve_path(&g, h, bar), None);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A 50_000-deep single-inheritance chain: the explicit stack keeps
        // this safe where naive recursion would overflow.
        let mut b = cpplookup_chg::ChgBuilder::new();
        let root = b.class("C0");
        b.member(root, "m");
        let mut prev = root;
        for i in 1..50_000 {
            let c = b.class(&format!("C{i}"));
            b.derive(c, prev, cpplookup_chg::Inheritance::NonVirtual)
                .unwrap();
            prev = c;
        }
        let g = b.finish().unwrap();
        let m = g.member_by_name("m").unwrap();
        let mut lazy = LazyLookup::new(&g);
        match lazy.lookup(prev, m) {
            LookupOutcome::Resolved { class, .. } => assert_eq!(class, root),
            other => panic!("expected C0::m, got {other:?}"),
        }
    }

    #[test]
    fn absent_member_is_not_found_and_cached() {
        let g = fixtures::fig1();
        let mut lazy = LazyLookup::new(&g);
        let e = g.class_by_name("E").unwrap();
        // fig1 has only member "m"; ask for a class with no members above.
        let a = g.class_by_name("A").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert!(matches!(lazy.lookup(e, m), LookupOutcome::Ambiguous { .. }));
        assert!(lazy.lookup(a, m).is_resolved());
    }
}
