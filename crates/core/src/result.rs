//! Lookup table entries and user-facing outcomes.
//!
//! The algorithm tabulates, per `(class, member)`, either `Red D` with
//! `D ∈ N × N_Ω` (the lookup is unambiguous and `D` abstracts the winning
//! definition) or `Blue S` with `S ⊆ N_Ω` (the lookup is ambiguous and `S`
//! abstracts the definitions that created the ambiguity) — exactly the two
//! values of Figure 8.

use std::fmt;

use cpplookup_chg::{Chg, ClassId};

use crate::abstraction::{LeastVirtual, RedAbs};

/// A tabulated lookup value for one `(class, member)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// The lookup is unambiguous. Carries the winning abstraction and, for
    /// path recovery, the direct base the winning definition was inherited
    /// through (`None` for a generated definition).
    Red {
        /// `(ldc, leastVirtual)` of the winning (representative)
        /// definition.
        abs: RedAbs,
        /// The direct base the definition arrived through, if inherited.
        via: Option<ClassId>,
        /// For *shared static* results (Definition 17, condition 2): the
        /// `leastVirtual` abstractions of the co-maximal definitions
        /// beyond the representative, sorted, deduplicated, and excluding
        /// `abs.lv`. Empty for ordinary unambiguous lookups.
        ///
        /// Carrying the whole set (rather than a representative, as a
        /// literal reading of the paper's Section 6 sketch would) is
        /// required for correctness: a later definition may dominate the
        /// representative without dominating its co-maximal twins, in
        /// which case the lookup *is* ambiguous.
        shared: Vec<LeastVirtual>,
    },
    /// The lookup is ambiguous. Carries the `leastVirtual` abstractions of
    /// the definitions that caused the ambiguity, sorted and deduplicated.
    Blue(Vec<LeastVirtual>),
}

impl Entry {
    /// Whether the entry is red (unambiguous).
    pub fn is_red(&self) -> bool {
        matches!(self, Entry::Red { .. })
    }

    /// The red abstraction, if unambiguous.
    pub fn red_abs(&self) -> Option<RedAbs> {
        match self {
            Entry::Red { abs, .. } => Some(*abs),
            Entry::Blue(_) => None,
        }
    }

    /// Renders the entry the way the paper annotates Figures 6–7:
    /// `red (A, Ω)` / `blue {D, Ω}`.
    pub fn display<'a>(&'a self, chg: &'a Chg) -> DisplayEntry<'a> {
        DisplayEntry { entry: self, chg }
    }
}

/// Helper returned by [`Entry::display`].
pub struct DisplayEntry<'a> {
    entry: &'a Entry,
    chg: &'a Chg,
}

impl fmt::Display for DisplayEntry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.entry {
            Entry::Red { abs, shared, .. } => {
                write!(
                    f,
                    "red ({}, {})",
                    self.chg.class_name(abs.ldc),
                    abs.lv.display(self.chg)
                )?;
                for lv in shared {
                    write!(f, "+{}", lv.display(self.chg))?;
                }
                Ok(())
            }
            Entry::Blue(set) => {
                write!(f, "blue {{")?;
                for (i, lv) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", lv.display(self.chg))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The outcome of `lookup(C, m)` as seen by a client (a compiler
/// diagnosing a member access).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// `m` is not a member of `C` at all (`m ∉ Members[C]`).
    NotFound,
    /// The lookup resolved to the member declared in `class`.
    Resolved {
        /// The declaring class (`ldc` of the winning definition).
        class: ClassId,
        /// `leastVirtual` of the winning definition — useful to clients
        /// that need to know whether the member lives in a shared virtual
        /// base.
        least_virtual: LeastVirtual,
    },
    /// The lookup is ambiguous.
    Ambiguous {
        /// The `leastVirtual` witnesses of the ambiguity, sorted.
        witnesses: Vec<LeastVirtual>,
    },
}

impl LookupOutcome {
    /// Whether the lookup resolved.
    pub fn is_resolved(&self) -> bool {
        matches!(self, LookupOutcome::Resolved { .. })
    }

    /// The resolved declaring class, if any.
    pub fn resolved_class(&self) -> Option<ClassId> {
        match self {
            LookupOutcome::Resolved { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// Builds an outcome from an optional table entry.
    pub fn from_entry(entry: Option<&Entry>) -> Self {
        match entry {
            None => LookupOutcome::NotFound,
            Some(Entry::Red { abs, .. }) => LookupOutcome::Resolved {
                class: abs.ldc,
                least_virtual: abs.lv,
            },
            Some(Entry::Blue(set)) => LookupOutcome::Ambiguous {
                witnesses: set.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn entry_display_matches_paper_notation() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        let d = g.class_by_name("D").unwrap();
        let red = Entry::Red {
            abs: RedAbs::generated(a),
            via: None,
            shared: Vec::new(),
        };
        assert_eq!(red.display(&g).to_string(), "red (A, Ω)");
        let blue = Entry::Blue(vec![LeastVirtual::Omega, LeastVirtual::Class(d)]);
        assert_eq!(blue.display(&g).to_string(), "blue {Ω, D}");
    }

    #[test]
    fn outcome_from_entry() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        assert_eq!(LookupOutcome::from_entry(None), LookupOutcome::NotFound);
        let red = Entry::Red {
            abs: RedAbs::generated(a),
            via: None,
            shared: Vec::new(),
        };
        let out = LookupOutcome::from_entry(Some(&red));
        assert!(out.is_resolved());
        assert_eq!(out.resolved_class(), Some(a));
        let blue = Entry::Blue(vec![LeastVirtual::Omega]);
        let out = LookupOutcome::from_entry(Some(&blue));
        assert!(!out.is_resolved());
        assert_eq!(out.resolved_class(), None);
    }

    #[test]
    fn red_abs_accessor() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        let red = Entry::Red {
            abs: RedAbs::generated(a),
            via: None,
            shared: Vec::new(),
        };
        assert!(red.is_red());
        assert_eq!(red.red_abs().unwrap().ldc, a);
        assert_eq!(Entry::Blue(vec![]).red_abs(), None);
    }
}
