//! Access rights, applied *after* a successful lookup.
//!
//! Section 6 of the paper: *"The access rights do not affect the member
//! lookup process in any way; they are applied only after a successful
//! member lookup to determine if that particular member access is
//! legal,"* with the details deferred to the companion technical report
//! \[8\]. This module implements the standard C++ composition of member
//! access with inheritance access along the *resolved definition path*:
//!
//! * a member starts with its declared access in `ldc`;
//! * crossing an edge `X → Y`, a `private` member of `X` becomes
//!   inaccessible in `Y`, and otherwise its access is capped by the
//!   edge's inheritance access (`class D : private B` makes `B`'s public
//!   members private in `D`);
//! * the final effective access in `mdc` is checked against the access
//!   context.
//!
//! Simplifications relative to full C++ (documented substitutions):
//! `friend` is not modelled, and for members reached through several
//! paths of one `≈`-class we use the recovered representative path rather
//! than the most permissive path.

use std::error::Error;
use std::fmt;

use cpplookup_chg::{Access, Chg, ClassId, MemberId, Path};

use crate::table::LookupTable;

/// Where a member access occurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessContext {
    /// Outside any member function (e.g. `obj.m` at file scope).
    External,
    /// Inside a member function of the given class.
    Inside(ClassId),
}

/// Why an access check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// Lookup found no such member.
    NotFound,
    /// Lookup was ambiguous; access rights are only checked after a
    /// *successful* lookup.
    Ambiguous,
    /// The member is inaccessible in the given context. Carries the
    /// effective access at the accessed class, if the member is visible
    /// there at all.
    Inaccessible {
        /// Effective access at the accessed class (`None` if a private
        /// cut along the path removed it entirely).
        effective: Option<Access>,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::NotFound => write!(f, "no such member"),
            AccessError::Ambiguous => write!(f, "member lookup is ambiguous"),
            AccessError::Inaccessible { effective: Some(a) } => {
                write!(f, "member is {a} in this context")
            }
            AccessError::Inaccessible { effective: None } => {
                write!(f, "member is private in an intermediate base")
            }
        }
    }
}

impl Error for AccessError {}

/// Computes the effective access of member `m` (declared in
/// `path.ldc()`) at `path.mdc()`, walking the inheritance edges of
/// `path`.
///
/// Returns `None` when the member is cut off by `private` visibility in
/// an intermediate class, or when `path.ldc()` does not declare `m`.
pub fn effective_access(chg: &Chg, path: &Path, m: MemberId) -> Option<Access> {
    let mut access = chg.member_decl(path.ldc(), m)?.access;
    for w in path.nodes().windows(2) {
        if access == Access::Private {
            // Private members of a base are inherited but inaccessible in
            // the derived class.
            return None;
        }
        let edge = chg.edge_spec(w[0], w[1]).expect("paths follow real edges");
        access = access.min(edge.access);
    }
    Some(access)
}

/// Checks whether the member `m` of class `c`, as resolved by `table`,
/// may be accessed in `context`. Returns the effective access on
/// success.
///
/// The rules, applied to the effective access `a` at `c`:
///
/// * [`AccessContext::Inside`] the declaring class itself: always allowed
///   (even for private members);
/// * [`AccessContext::Inside`] `c` or a class derived from `c`: requires
///   `a >= protected`;
/// * anywhere else (including [`AccessContext::External`]): requires
///   `a == public`.
///
/// # Errors
///
/// [`AccessError::NotFound`] / [`AccessError::Ambiguous`] if the lookup
/// did not succeed, [`AccessError::Inaccessible`] if it did but the
/// context may not touch the member.
pub fn check_access(
    chg: &Chg,
    table: &LookupTable,
    c: ClassId,
    m: MemberId,
    context: AccessContext,
) -> Result<Access, AccessError> {
    let path = match table.entry(c, m) {
        None => return Err(AccessError::NotFound),
        Some(e) if !e.is_red() => return Err(AccessError::Ambiguous),
        Some(_) => table
            .resolve_path(chg, c, m)
            .expect("red entries always recover a path"),
    };
    if let AccessContext::Inside(k) = context {
        if k == path.ldc() {
            // Inside the declaring class: unrestricted.
            return Ok(chg
                .member_decl(path.ldc(), m)
                .expect("ldc declares the member")
                .access);
        }
    }
    let effective = effective_access(chg, &path, m);
    let allowed = match (effective, context) {
        (None, _) => false,
        (Some(a), AccessContext::External) => a == Access::Public,
        (Some(a), AccessContext::Inside(k)) => {
            if k == c {
                // The member is part of c's own scope, whatever access it
                // ended up with (privately inherited members are private
                // members of c).
                true
            } else if chg.is_base_of(c, k) {
                a >= Access::Protected
            } else {
                a == Access::Public
            }
        }
    };
    if allowed {
        Ok(effective.expect("allowed implies visible"))
    } else {
        Err(AccessError::Inaccessible { effective })
    }
}

/// Precomputed effective access for every unambiguous table entry — the
/// "extend the lookup algorithm to compute access rights" idea the paper
/// attributes to its companion technical report \[8\].
///
/// Instead of re-walking the recovered definition path on every access
/// check (`O(depth)` per query), the effective access is propagated along
/// the same parent pointers once, in one pass over the table: a generated
/// entry starts at its declared access; an inherited entry composes its
/// base's effective access with the inheritance edge. Queries become
/// `O(1)`.
#[derive(Clone, Debug)]
pub struct AccessTable {
    /// Per class: member -> effective access (`None` = cut off by a
    /// `private` member in an intermediate base). Only unambiguous
    /// entries appear.
    effective: Vec<std::collections::HashMap<MemberId, Option<Access>>>,
}

impl AccessTable {
    /// Computes effective accesses for every red entry of `table`.
    pub fn compute(chg: &Chg, table: &LookupTable) -> Self {
        use crate::result::Entry;
        let mut effective: Vec<std::collections::HashMap<MemberId, Option<Access>>> =
            vec![std::collections::HashMap::new(); chg.class_count()];
        for &c in chg.topo_order() {
            let members: Vec<MemberId> = table.members_of(c).collect();
            for m in members {
                let Some(Entry::Red { via, .. }) = table.entry(c, m) else {
                    continue;
                };
                let value = match via {
                    None => Some(
                        chg.member_decl(c, m)
                            .expect("generated entries are declared here")
                            .access,
                    ),
                    Some(x) => {
                        let inherited = effective[x.index()]
                            .get(&m)
                            .copied()
                            .expect("bases processed first");
                        let edge = chg.edge_spec(*x, c).expect("via is a direct base");
                        match inherited {
                            None => None,
                            // Private members of a base are inaccessible
                            // in the derived class.
                            Some(Access::Private) => None,
                            Some(a) => Some(a.min(edge.access)),
                        }
                    }
                };
                effective[c.index()].insert(m, value);
            }
        }
        AccessTable { effective }
    }

    /// The effective access of the winning definition of `(c, m)`:
    /// `None` if the entry is missing or ambiguous, `Some(None)` if the
    /// member is cut off by an intermediate `private`, `Some(Some(a))`
    /// otherwise.
    pub fn effective(&self, c: ClassId, m: MemberId) -> Option<Option<Access>> {
        self.effective[c.index()].get(&m).copied()
    }
}

/// [`check_access`], answered from a precomputed [`AccessTable`] in
/// `O(1)` — same verdicts (asserted by tests), none of the per-query
/// path walking.
///
/// # Errors
///
/// As [`check_access`].
pub fn check_access_fast(
    chg: &Chg,
    table: &LookupTable,
    access_table: &AccessTable,
    c: ClassId,
    m: MemberId,
    context: AccessContext,
) -> Result<Access, AccessError> {
    let entry = match table.entry(c, m) {
        None => return Err(AccessError::NotFound),
        Some(e) if !e.is_red() => return Err(AccessError::Ambiguous),
        Some(e) => e,
    };
    if let AccessContext::Inside(k) = context {
        let ldc = entry.red_abs().expect("red entry").ldc;
        if k == ldc {
            return Ok(chg
                .member_decl(ldc, m)
                .expect("ldc declares the member")
                .access);
        }
    }
    let effective = access_table
        .effective(c, m)
        .expect("red entries have an access record");
    let allowed = match (effective, context) {
        (None, _) => false,
        (Some(a), AccessContext::External) => a == Access::Public,
        (Some(a), AccessContext::Inside(k)) => {
            if k == c {
                true
            } else if chg.is_base_of(c, k) {
                a >= Access::Protected
            } else {
                a == Access::Public
            }
        }
    };
    if allowed {
        Ok(effective.expect("allowed implies visible"))
    } else {
        Err(AccessError::Inaccessible { effective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{ChgBuilder, Inheritance, MemberDecl, MemberKind};

    /// `class B { public: int pub_m; protected: int prot_m; private: int priv_m; };`
    /// `class D : <edge_access> B {};`
    fn hierarchy(edge_access: Access) -> (Chg, ClassId, ClassId) {
        let mut b = ChgBuilder::new();
        let base = b.class("B");
        let derived = b.class("D");
        b.member_with(
            base,
            "pub_m",
            MemberDecl::with_access(MemberKind::Data, Access::Public),
        )
        .unwrap();
        b.member_with(
            base,
            "prot_m",
            MemberDecl::with_access(MemberKind::Data, Access::Protected),
        )
        .unwrap();
        b.member_with(
            base,
            "priv_m",
            MemberDecl::with_access(MemberKind::Data, Access::Private),
        )
        .unwrap();
        b.derive_with_access(derived, base, Inheritance::NonVirtual, edge_access)
            .unwrap();
        let g = b.finish().unwrap();
        (g, base, derived)
    }

    #[test]
    fn public_inheritance_preserves_access() {
        let (g, _base, derived) = hierarchy(Access::Public);
        let t = LookupTable::build(&g);
        let m = |n: &str| g.member_by_name(n).unwrap();
        assert_eq!(
            check_access(&g, &t, derived, m("pub_m"), AccessContext::External),
            Ok(Access::Public)
        );
        assert!(matches!(
            check_access(&g, &t, derived, m("prot_m"), AccessContext::External),
            Err(AccessError::Inaccessible {
                effective: Some(Access::Protected)
            })
        ));
        assert!(matches!(
            check_access(&g, &t, derived, m("priv_m"), AccessContext::External),
            Err(AccessError::Inaccessible { effective: None })
        ));
    }

    #[test]
    fn private_inheritance_hides_everything_externally() {
        let (g, _base, derived) = hierarchy(Access::Private);
        let t = LookupTable::build(&g);
        let m = g.member_by_name("pub_m").unwrap();
        assert!(matches!(
            check_access(&g, &t, derived, m, AccessContext::External),
            Err(AccessError::Inaccessible {
                effective: Some(Access::Private)
            })
        ));
        // But inside D itself the (privately inherited) member is usable.
        assert_eq!(
            check_access(&g, &t, derived, m, AccessContext::Inside(derived)),
            Ok(Access::Private)
        );
    }

    #[test]
    fn protected_members_inside_derived() {
        let (g, _base, derived) = hierarchy(Access::Public);
        let t = LookupTable::build(&g);
        let prot = g.member_by_name("prot_m").unwrap();
        assert_eq!(
            check_access(&g, &t, derived, prot, AccessContext::Inside(derived)),
            Ok(Access::Protected)
        );
    }

    #[test]
    fn declaring_class_sees_its_own_privates() {
        let (g, base, _derived) = hierarchy(Access::Public);
        let t = LookupTable::build(&g);
        let priv_m = g.member_by_name("priv_m").unwrap();
        assert_eq!(
            check_access(&g, &t, base, priv_m, AccessContext::Inside(base)),
            Ok(Access::Private)
        );
        assert!(check_access(&g, &t, base, priv_m, AccessContext::External).is_err());
    }

    #[test]
    fn ambiguous_lookup_reports_ambiguous() {
        let g = cpplookup_chg::fixtures::fig1();
        let t = LookupTable::build(&g);
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert_eq!(
            check_access(&g, &t, e, m, AccessContext::External),
            Err(AccessError::Ambiguous)
        );
    }

    #[test]
    fn missing_member_reports_not_found() {
        let mut b = ChgBuilder::new();
        let owner = b.class("Owner");
        let stranger = b.class("Stranger");
        b.member(owner, "m");
        let g = b.finish().unwrap();
        let m = g.member_by_name("m").unwrap();
        let t = LookupTable::build(&g);
        assert_eq!(
            check_access(&g, &t, stranger, m, AccessContext::External),
            Err(AccessError::NotFound)
        );
        assert!(check_access(&g, &t, owner, m, AccessContext::External).is_ok());
    }

    #[test]
    fn effective_access_composes_min() {
        // B -(protected)-> M -(public)-> D: public member ends protected.
        let mut b = ChgBuilder::new();
        let base = b.class("B");
        let mid = b.class("M");
        let der = b.class("D");
        b.member(base, "m");
        b.derive_with_access(mid, base, Inheritance::NonVirtual, Access::Protected)
            .unwrap();
        b.derive_with_access(der, mid, Inheritance::NonVirtual, Access::Public)
            .unwrap();
        let g = b.finish().unwrap();
        let m = g.member_by_name("m").unwrap();
        let p = Path::new(&g, vec![base, mid, der]).unwrap();
        assert_eq!(effective_access(&g, &p, m), Some(Access::Protected));
        let t = LookupTable::build(&g);
        assert!(check_access(&g, &t, der, m, AccessContext::External).is_err());
        assert_eq!(
            check_access(&g, &t, der, m, AccessContext::Inside(der)),
            Ok(Access::Protected)
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(AccessError::NotFound.to_string(), "no such member");
        assert!(AccessError::Ambiguous.to_string().contains("ambiguous"));
        assert!(AccessError::Inaccessible { effective: None }
            .to_string()
            .contains("intermediate"));
    }
}

#[cfg(test)]
mod access_table_tests {
    use super::*;
    use cpplookup_chg::{fixtures, ChgBuilder, Inheritance, MemberDecl, MemberKind};

    /// The precomputed table must agree with the path-walking spec on
    /// every red entry and every context.
    fn assert_equivalent(chg: &Chg) {
        let table = LookupTable::build(chg);
        let at = AccessTable::compute(chg, &table);
        for c in chg.classes() {
            for m in chg.member_ids() {
                // Effective access agrees with the recovered path.
                if let Some(path) = table.resolve_path(chg, c, m) {
                    assert_eq!(
                        at.effective(c, m),
                        Some(effective_access(chg, &path, m)),
                        "effective mismatch at ({}, {})",
                        chg.class_name(c),
                        chg.member_name(m)
                    );
                }
                // Verdicts agree in every context.
                let mut contexts = vec![AccessContext::External];
                contexts.extend(chg.classes().map(AccessContext::Inside));
                for ctx in contexts {
                    assert_eq!(
                        check_access_fast(chg, &table, &at, c, m, ctx),
                        check_access(chg, &table, c, m, ctx),
                        "verdict mismatch at ({}, {}) ctx {ctx:?}",
                        chg.class_name(c),
                        chg.member_name(m)
                    );
                }
            }
        }
    }

    #[test]
    fn fast_path_matches_spec_on_fixtures() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::static_override_mix(),
            fixtures::dominance_diamond(),
        ] {
            assert_equivalent(&g);
        }
    }

    #[test]
    fn fast_path_matches_spec_with_restricted_access() {
        // Mixed access members and edges.
        let mut b = ChgBuilder::new();
        let base = b.class("Base");
        let mid = b.class("Mid");
        let der = b.class("Der");
        b.member_with(
            base,
            "pub_m",
            MemberDecl::with_access(MemberKind::Data, Access::Public),
        )
        .unwrap();
        b.member_with(
            base,
            "prot_m",
            MemberDecl::with_access(MemberKind::Data, Access::Protected),
        )
        .unwrap();
        b.member_with(
            base,
            "priv_m",
            MemberDecl::with_access(MemberKind::Data, Access::Private),
        )
        .unwrap();
        b.derive_with_access(mid, base, Inheritance::Virtual, Access::Protected)
            .unwrap();
        b.derive_with_access(der, mid, Inheritance::NonVirtual, Access::Private)
            .unwrap();
        let g = b.finish().unwrap();
        assert_equivalent(&g);
        let table = LookupTable::build(&g);
        let at = AccessTable::compute(&g, &table);
        let pub_m = g.member_by_name("pub_m").unwrap();
        // public member, protected then private inheritance: private at Der.
        assert_eq!(at.effective(der, pub_m), Some(Some(Access::Private)));
        let priv_m = g.member_by_name("priv_m").unwrap();
        assert_eq!(
            at.effective(mid, priv_m),
            Some(None),
            "cut at the first edge"
        );
    }
}

/// The *most permissive* effective access over **all** paths of the
/// winning `≈`-equivalence class — the C++ rule ([class.paths]) that
/// access is granted if any inheritance path grants it, where
/// [`effective_access`] considers only the recovered representative.
///
/// Returns `None` when the lookup is missing/ambiguous; `Some(None)` when
/// every path is cut off by an intermediate `private`; `Some(Some(a))`
/// with the best access otherwise. At most `budget` paths are examined
/// (the class can be exponential); when it is exceeded the best access
/// seen so far is returned — a sound under-approximation.
pub fn most_permissive_access(
    chg: &Chg,
    table: &LookupTable,
    c: ClassId,
    m: MemberId,
    budget: usize,
) -> Option<Option<Access>> {
    let representative = table.resolve_path(chg, c, m)?;
    let fixed = representative.fixed(chg);
    let anchor = fixed.mdc();
    let mut best: Option<Access> = None;
    let mut seen = 0usize;
    let mut consider = |path_nodes: &[ClassId]| {
        let path = Path::new(chg, path_nodes.to_vec()).expect("real edges");
        let eff = effective_access(chg, &path, m);
        best = match (best, eff) {
            (None, e) => e,
            (b, None) => b,
            (Some(a), Some(b2)) => Some(a.max(b2)),
        };
    };
    if anchor == c {
        consider(fixed.nodes());
        return Some(best);
    }
    // Enumerate suffixes anchor -> c whose first edge is virtual.
    let mut stack: Vec<Vec<ClassId>> = vec![vec![anchor]];
    while let Some(suffix) = stack.pop() {
        if seen >= budget {
            break;
        }
        let last = *suffix.last().expect("nonempty");
        if last == c && suffix.len() > 1 {
            let mut nodes = fixed.nodes().to_vec();
            nodes.extend_from_slice(&suffix[1..]);
            consider(&nodes);
            seen += 1;
            continue;
        }
        for &next in chg.direct_derived(last) {
            let inh = chg.edge(last, next).expect("derived adjacency");
            if suffix.len() == 1 && !inh.is_virtual() {
                continue;
            }
            if next != c && !chg.is_base_of(next, c) {
                continue;
            }
            let mut longer = suffix.clone();
            longer.push(next);
            stack.push(longer);
        }
    }
    Some(best)
}

#[cfg(test)]
mod most_permissive_tests {
    use super::*;
    use cpplookup_chg::{fixtures, ChgBuilder, Inheritance, MemberDecl, MemberKind};

    #[test]
    fn any_granting_path_wins() {
        // Top::t reaches Bottom through a public-left and a private-right
        // route to the same shared virtual base: C++ grants access.
        let mut b = ChgBuilder::new();
        let top = b.class("Top");
        let left = b.class("Left");
        let right = b.class("Right");
        let bottom = b.class("Bottom");
        b.member_with(top, "t", MemberDecl::public(MemberKind::Data))
            .unwrap();
        b.derive_with_access(left, top, Inheritance::Virtual, Access::Public)
            .unwrap();
        b.derive_with_access(right, top, Inheritance::Virtual, Access::Private)
            .unwrap();
        b.derive(bottom, left, Inheritance::NonVirtual).unwrap();
        b.derive(bottom, right, Inheritance::NonVirtual).unwrap();
        let g = b.finish().unwrap();
        let table = LookupTable::build(&g);
        let t = g.member_by_name("t").unwrap();
        let best = most_permissive_access(&g, &table, bottom, t, 1000).unwrap();
        assert_eq!(best, Some(Access::Public), "the public route wins");
        // The representative path may have picked either route; the
        // multi-path answer is at least as permissive.
        let rep = table.resolve_path(&g, bottom, t).unwrap();
        let rep_access = effective_access(&g, &rep, t);
        assert!(best >= rep_access);
    }

    #[test]
    fn single_path_matches_representative() {
        for g in [fixtures::fig2(), fixtures::fig3(), fixtures::fig9()] {
            let table = LookupTable::build(&g);
            for c in g.classes() {
                for m in g.member_ids() {
                    let Some(best) = most_permissive_access(&g, &table, c, m, 10_000) else {
                        continue;
                    };
                    let rep = table.resolve_path(&g, c, m).unwrap();
                    let rep_access = effective_access(&g, &rep, m);
                    assert!(
                        best >= rep_access,
                        "multi-path access can only improve ({}, {})",
                        g.class_name(c),
                        g.member_name(m)
                    );
                }
            }
        }
    }

    #[test]
    fn ambiguous_and_missing_yield_none() {
        let g = fixtures::fig1();
        let table = LookupTable::build(&g);
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert_eq!(most_permissive_access(&g, &table, e, m, 100), None);
    }
}
