//! Dispatch-table construction — the "constructing virtual-function
//! tables" application the paper names in Section 1.
//!
//! A C++ compiler builds, per class, a table binding each callable member
//! name to the declaration that dominates in that class. This module
//! derives those tables directly from a [`LookupTable`]: each entry
//! records the declaring class of the winning definition, whether it
//! lives in a shared virtual base (which is what forces thunks/vbase
//! offsets in real ABIs — the `leastVirtual` component answers this for
//! free), or that the name is dispatch-ambiguous in this class (calling
//! it would be a compile error).

use std::collections::HashMap;
use std::fmt::Write as _;

use cpplookup_chg::{Chg, ClassId, MemberId};

use crate::result::LookupOutcome;
use crate::table::LookupTable;

/// Where a dispatchable name binds in a particular class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DispatchTarget {
    /// The call binds to the member declared in `declaring_class`.
    Bound {
        /// Class whose declaration is invoked.
        declaring_class: ClassId,
        /// Whether the winning definition lives in (or below) a shared
        /// virtual base — real ABIs need a vbase offset / thunk here.
        through_virtual_base: bool,
    },
    /// The name is visible but ambiguous; any call through this class is
    /// ill-formed.
    Ambiguous,
}

/// One row of a class's dispatch table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchEntry {
    /// The callable member name.
    pub member: MemberId,
    /// Its binding in this class.
    pub target: DispatchTarget,
}

/// Dispatch tables for every class of a hierarchy.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::dispatch::{build_dispatch_map, DispatchTarget};
/// use cpplookup_core::LookupTable;
///
/// let g = fixtures::dominance_diamond();
/// let table = LookupTable::build(&g);
/// let map = build_dispatch_map(&g, &table);
/// let bottom = g.class_by_name("Bottom").unwrap();
/// let f = g.member_by_name("f").unwrap();
/// match map.target(bottom, f) {
///     Some(DispatchTarget::Bound { declaring_class, .. }) => {
///         assert_eq!(g.class_name(*declaring_class), "Left");
///     }
///     other => panic!("expected Left::f, got {other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct DispatchMap {
    tables: Vec<Vec<DispatchEntry>>,
    index: Vec<HashMap<MemberId, usize>>,
}

impl DispatchMap {
    /// The dispatch table of `c`, sorted by member id.
    pub fn table_of(&self, c: ClassId) -> &[DispatchEntry] {
        &self.tables[c.index()]
    }

    /// The binding of `m` in `c`, if `m` is a callable member there.
    pub fn target(&self, c: ClassId, m: MemberId) -> Option<&DispatchTarget> {
        self.index[c.index()]
            .get(&m)
            .map(|&slot| &self.tables[c.index()][slot].target)
    }

    /// Total number of dispatch entries across all classes.
    pub fn entry_count(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Renders all tables, `clang -fdump-record-layouts` style.
    pub fn render(&self, chg: &Chg) -> String {
        let mut out = String::new();
        for c in chg.classes() {
            let table = self.table_of(c);
            if table.is_empty() {
                continue;
            }
            let _ = writeln!(out, "dispatch table for {}:", chg.class_name(c));
            for entry in table {
                let name = chg.member_name(entry.member);
                match &entry.target {
                    DispatchTarget::Bound {
                        declaring_class,
                        through_virtual_base,
                    } => {
                        let _ = writeln!(
                            out,
                            "  {name:<12} -> {}::{name}{}",
                            chg.class_name(*declaring_class),
                            if *through_virtual_base {
                                "  [virtual base]"
                            } else {
                                ""
                            }
                        );
                    }
                    DispatchTarget::Ambiguous => {
                        let _ = writeln!(out, "  {name:<12} -> <ambiguous>");
                    }
                }
            }
        }
        out
    }
}

/// Whether a member name is callable somewhere in the hierarchy: some
/// class declares it as a (possibly static) member function.
fn is_callable(chg: &Chg, m: MemberId) -> bool {
    chg.declaring_classes(m).iter().any(|&d| {
        chg.member_decl(d, m)
            .is_some_and(|decl| decl.kind.is_function())
    })
}

/// Builds the dispatch tables of every class from a prebuilt lookup
/// table. Only names that are member functions somewhere in the
/// hierarchy get entries.
pub fn build_dispatch_map(chg: &Chg, table: &LookupTable) -> DispatchMap {
    let callable: Vec<MemberId> = chg.member_ids().filter(|&m| is_callable(chg, m)).collect();
    let mut tables = Vec::with_capacity(chg.class_count());
    let mut index = Vec::with_capacity(chg.class_count());
    for c in chg.classes() {
        let mut rows: Vec<DispatchEntry> = Vec::new();
        for &m in &callable {
            let target = match table.lookup(c, m) {
                LookupOutcome::NotFound => continue,
                LookupOutcome::Ambiguous { .. } => DispatchTarget::Ambiguous,
                LookupOutcome::Resolved {
                    class,
                    least_virtual,
                } => {
                    // Only produce an entry when the winner actually is a
                    // function (the name may also be shadowed by data
                    // members in other classes).
                    let decl = chg
                        .member_decl(class, m)
                        .expect("resolved class declares the member");
                    if !decl.kind.is_function() {
                        continue;
                    }
                    DispatchTarget::Bound {
                        declaring_class: class,
                        through_virtual_base: !least_virtual.is_omega(),
                    }
                }
            };
            rows.push(DispatchEntry { member: m, target });
        }
        rows.sort_by_key(|e| e.member);
        let idx = rows
            .iter()
            .enumerate()
            .map(|(i, e)| (e.member, i))
            .collect();
        tables.push(rows);
        index.push(idx);
    }
    DispatchMap { tables, index }
}

/// The final binding of a *virtual call* when the receiver's dynamic
/// type is `dynamic_type` — the Rossie–Friedman `dyn` operation realized
/// through the table (constant time once the table exists).
pub fn dynamic_target(table: &LookupTable, dynamic_type: ClassId, m: MemberId) -> Option<ClassId> {
    match table.lookup(dynamic_type, m) {
        LookupOutcome::Resolved { class, .. } => Some(class),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, ChgBuilder, Inheritance, MemberDecl, MemberKind};

    fn map_of(chg: &Chg) -> DispatchMap {
        build_dispatch_map(chg, &LookupTable::build(chg))
    }

    #[test]
    fn dominance_diamond_binds_to_override() {
        let g = fixtures::dominance_diamond();
        let map = map_of(&g);
        let f = g.member_by_name("f").unwrap();
        let bottom = g.class_by_name("Bottom").unwrap();
        match map.target(bottom, f) {
            Some(DispatchTarget::Bound {
                declaring_class,
                through_virtual_base,
            }) => {
                assert_eq!(g.class_name(*declaring_class), "Left");
                assert!(
                    !through_virtual_base,
                    "Left is reached through a non-virtual edge"
                );
            }
            other => panic!("{other:?}"),
        }
        // In Right, Top::f is reached through the virtual base.
        let right = g.class_by_name("Right").unwrap();
        match map.target(right, f) {
            Some(DispatchTarget::Bound {
                declaring_class,
                through_virtual_base,
            }) => {
                assert_eq!(g.class_name(*declaring_class), "Top");
                assert!(*through_virtual_base);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ambiguous_names_marked() {
        let g = fixtures::fig1(); // m is a function, ambiguous in E
        let map = map_of(&g);
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert_eq!(map.target(e, m), Some(&DispatchTarget::Ambiguous));
        // But perfectly bound in D (its own override).
        let d = g.class_by_name("D").unwrap();
        assert!(matches!(
            map.target(d, m),
            Some(DispatchTarget::Bound { .. })
        ));
    }

    #[test]
    fn data_members_get_no_entries() {
        let g = fixtures::fig9(); // m is a data member everywhere
        let map = map_of(&g);
        assert_eq!(map.entry_count(), 0);
    }

    #[test]
    fn mixed_function_and_data_names() {
        // `m` is a function in Base but data in Other; classes seeing the
        // data declaration as winner get no dispatch entry.
        let mut b = ChgBuilder::new();
        let base = b.class("Base");
        let other = b.class("Other");
        let derived = b.class("Derived");
        b.member_with(base, "m", MemberDecl::public(MemberKind::Function))
            .unwrap();
        b.member_with(other, "m", MemberDecl::public(MemberKind::Data))
            .unwrap();
        b.derive(derived, base, Inheritance::NonVirtual).unwrap();
        let g = b.finish().unwrap();
        let map = map_of(&g);
        let m = g.member_by_name("m").unwrap();
        assert!(matches!(
            map.target(derived, m),
            Some(DispatchTarget::Bound { .. })
        ));
        assert_eq!(map.target(other, m), None, "data winner: no dispatch row");
    }

    #[test]
    fn dynamic_target_follows_dynamic_type() {
        let g = fixtures::dominance_diamond();
        let t = LookupTable::build(&g);
        let f = g.member_by_name("f").unwrap();
        let top = g.class_by_name("Top").unwrap();
        let bottom = g.class_by_name("Bottom").unwrap();
        // Static type Top, dynamic type Bottom: binds to Left::f.
        assert_eq!(
            dynamic_target(&t, bottom, f).map(|c| g.class_name(c)),
            Some("Left")
        );
        assert_eq!(
            dynamic_target(&t, top, f).map(|c| g.class_name(c)),
            Some("Top")
        );
    }

    #[test]
    fn render_is_stable_and_readable() {
        let g = fixtures::dominance_diamond();
        let map = map_of(&g);
        let text = map.render(&g);
        assert!(text.contains("dispatch table for Bottom:"));
        assert!(text.contains("f            -> Left::f"));
        assert!(text.contains("[virtual base]"));
    }

    #[test]
    fn tables_sorted_by_member_id() {
        let mut b = ChgBuilder::new();
        let c = b.class("C");
        for name in ["zeta", "alpha", "mid"] {
            b.member_with(c, name, MemberDecl::public(MemberKind::Function))
                .unwrap();
        }
        let g = b.finish().unwrap();
        let map = map_of(&g);
        let ids: Vec<MemberId> = map.table_of(c).iter().map(|e| e.member).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(map.entry_count(), 3);
    }
}
