//! Regenerates the paper's tables and figures on stdout.
//!
//! Usage:
//!
//! ```text
//! cargo run -p cpplookup-bench --bin report --release            # everything
//! cargo run -p cpplookup-bench --bin report --release -- e9 e10  # a subset
//! ```
//!
//! See `EXPERIMENTS.md` for the experiment index and expected shapes.

use std::io::Write;

use cpplookup_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        if let Err(e) = experiments::run(id, &mut out) {
            eprintln!("error running {id}: {e}");
            std::process::exit(1);
        }
    }
}
