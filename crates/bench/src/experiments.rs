//! The experiment implementations behind `EXPERIMENTS.md`: one function
//! per experiment id, each printing the paper-shaped table or trace to
//! the given writer.
//!
//! Absolute numbers are machine-dependent; the *shapes* (who wins, by
//! what factor, where the blowups are) are what reproduce the paper.

use std::io::{self, Write};

use cpplookup_baselines::gxx::{gxx_lookup, gxx_lookup_corrected, GxxResult};
use cpplookup_baselines::naive::{propagate, PropagationConfig};
use cpplookup_baselines::toposort::toposort_lookup;
use cpplookup_chg::{apply_edits, fixtures, Chg, Edit, Inheritance};
use cpplookup_core::access::{check_access, AccessContext};
use cpplookup_core::trace::{render_trace, trace_member};
use cpplookup_core::{
    LazyLookup, LookupEngine, LookupOptions, LookupOutcome, LookupTable, StaticRule,
};
use cpplookup_frontend::{analyze, parser};
use cpplookup_hiergen::families;
use cpplookup_hiergen::{edit_script, random_hierarchy, EditScriptConfig, RandomConfig};
use cpplookup_subobject::stats::count_subobjects;
use cpplookup_subobject::{
    defns, isomorphism, lookup as oracle_lookup, Resolution, SubobjectGraph,
};

use crate::timing::{fmt_duration, median_time};
use crate::workloads::{self, Workload};

/// All experiment ids, in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e23", "e24", "e25", "e26", "e27",
];

/// Runs one experiment by id (`"e1"`..`"e25"`), writing its report.
/// The extra ids `"e21-smoke"` through `"e25-smoke"` are
/// the CI guard variants: fast differential + perf checks that *fail*
/// (return an error) when the batched compiler, the dispatch index,
/// the wire-protocol server, or the replication stack regresses.
///
/// # Errors
///
/// Propagates I/O errors from the writer; unknown ids return
/// `InvalidInput`; the `"-smoke"` ids return an error when their
/// regression guard trips.
pub fn run(id: &str, w: &mut dyn Write) -> io::Result<()> {
    match id {
        "e1" => e1(w),
        "e2" => e2(w),
        "e3" => e3(w),
        "e4" => e4(w),
        "e5" => e5(w),
        "e6" => e6(w),
        "e7" => e7(w),
        "e8" => e8(w),
        "e9" => e9(w),
        "e10" => e10(w),
        "e11" => e11(w),
        "e12" => e12(w),
        "e13" => e13(w),
        "e14" => e14(w),
        "e15" => e15(w),
        "e16" => e16(w),
        "e17" => e17(w),
        "e18" => e18(w),
        "e19" => e19(w),
        "e20" => e20(w),
        "e21" => e21(w),
        "e21-smoke" => e21_smoke(w),
        "e22" => e22(w),
        "e22-smoke" => e22_smoke(w),
        "e23" => e23(w),
        "e23-smoke" => e23_smoke(w),
        "e24" => e24(w),
        "e24-smoke" => e24_smoke(w),
        "e25" => e25(w),
        "e25-smoke" => e25_smoke(w),
        "e26" => e26(w),
        "e26-smoke" => e26_smoke(w),
        "e27" => e27(w),
        "e27-smoke" => e27_smoke(w),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown experiment `{other}` (known: {})", ALL.join(", ")),
        )),
    }
}

fn verdict_named(chg: &Chg, o: &LookupOutcome, member: &str) -> String {
    match o {
        LookupOutcome::Resolved { class, .. } => {
            format!("{}::{member}", chg.class_name(*class))
        }
        LookupOutcome::Ambiguous { .. } => "ambiguous".to_owned(),
        LookupOutcome::NotFound => "not found".to_owned(),
    }
}

fn verdict(chg: &Chg, o: &LookupOutcome) -> String {
    verdict_named(chg, o, "m")
}

/// E1 — Figure 1: non-virtual inheritance makes `p->m` ambiguous.
fn e1(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E1 (Figure 1): non-virtual inheritance")?;
    let g = fixtures::fig1();
    let e = g.class_by_name("E").unwrap();
    let m = g.member_by_name("m").unwrap();
    let sg = SubobjectGraph::build(&g, e, 1000).expect("tiny");
    let a = g.class_by_name("A").unwrap();
    writeln!(
        w,
        "  E object: {} subobjects, {} of class A",
        sg.len(),
        sg.subobjects_of_class(a).count()
    )?;
    let t = LookupTable::build(&g);
    writeln!(
        w,
        "  lookup(E, m): {}   [paper: ambiguous]",
        verdict(&g, &t.lookup(e, m))
    )?;
    Ok(())
}

/// E2 — Figure 2: virtual inheritance makes the same lookup resolve.
fn e2(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E2 (Figure 2): virtual inheritance")?;
    let g = fixtures::fig2();
    let e = g.class_by_name("E").unwrap();
    let m = g.member_by_name("m").unwrap();
    let sg = SubobjectGraph::build(&g, e, 1000).expect("tiny");
    let a = g.class_by_name("A").unwrap();
    writeln!(
        w,
        "  E object: {} subobjects, {} of class A",
        sg.len(),
        sg.subobjects_of_class(a).count()
    )?;
    let t = LookupTable::build(&g);
    writeln!(
        w,
        "  lookup(E, m): {}   [paper: D::m]",
        verdict(&g, &t.lookup(e, m))
    )?;
    Ok(())
}

/// E3 — Figure 3: the `Defns` sets and lookups of the running example.
fn e3(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E3 (Figure 3): Defns(H, ·) and lookups")?;
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let sg = SubobjectGraph::build(&g, h, 1000).expect("tiny");
    for name in ["foo", "bar"] {
        let m = g.member_by_name(name).unwrap();
        let defs: Vec<String> = defns(&g, &sg, m)
            .into_iter()
            .map(|id| sg.subobject(id).display(&g).to_string())
            .collect();
        writeln!(w, "  Defns(H, {name}) = {{ {} }}", defs.join(", "))?;
        let res = match oracle_lookup(&g, &sg, m) {
            Resolution::Subobject(id) => sg.subobject(id).display(&g).to_string(),
            Resolution::Ambiguous(_) => "⊥ (ambiguous)".to_owned(),
            other => format!("{other:?}"),
        };
        writeln!(w, "  lookup(H, {name}) = {res}")?;
    }
    writeln!(w, "  [paper: lookup(H,foo) = {{GH}}, lookup(H,bar) = ⊥]")?;
    Ok(())
}

/// E4 — Figures 4–5: full-path propagation with killed definitions.
fn e4(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "E4 (Figures 4-5): definition propagation, ~~killed~~ / **winner**"
    )?;
    let g = fixtures::fig3();
    for name in ["foo", "bar"] {
        let m = g.member_by_name(name).unwrap();
        let prop = propagate(&g, m, PropagationConfig::default()).expect("tiny");
        writeln!(w, "  member {name}:")?;
        for node in &prop.nodes {
            let parts: Vec<String> = node
                .reaching
                .iter()
                .map(|p| {
                    let t = p.display(&g).to_string();
                    if node.killed.contains(p) {
                        format!("~~{t}~~")
                    } else if node.most_dominant.as_ref() == Some(p) {
                        format!("**{t}**")
                    } else {
                        t
                    }
                })
                .collect();
            writeln!(w, "    {}: {}", g.class_name(node.class), parts.join(", "))?;
        }
    }
    Ok(())
}

/// E5 — Figures 6–7: red/blue abstraction propagation.
fn e5(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E5 (Figures 6-7): abstraction propagation")?;
    let g = fixtures::fig3();
    for name in ["foo", "bar"] {
        let m = g.member_by_name(name).unwrap();
        writeln!(w, "  member {name}:")?;
        for line in render_trace(&g, &trace_member(&g, m, LookupOptions::default())).lines() {
            writeln!(w, "    {line}")?;
        }
    }
    Ok(())
}

/// E6 — Figure 8: quick differential summary of the algorithm against
/// the Rossie–Friedman oracle (the test suite runs the exhaustive
/// version).
fn e6(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "E6 (Figure 8): differential check vs the subobject oracle"
    )?;
    let mut checked = 0usize;
    for seed in 0..40 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, 100_000).expect("small");
            for m in chg.member_ids() {
                let ours = table.lookup(c, m);
                let oracle = oracle_lookup(&chg, &sg, m);
                let agree = matches!(
                    (&ours, &oracle),
                    (LookupOutcome::NotFound, Resolution::NotFound)
                        | (LookupOutcome::Ambiguous { .. }, Resolution::Ambiguous(_))
                ) || matches!((&ours, &oracle),
                    (LookupOutcome::Resolved { class, .. }, Resolution::Subobject(u))
                        if *class == sg.subobject(*u).class());
                assert!(agree, "differential mismatch at seed {seed}");
                checked += 1;
            }
        }
    }
    writeln!(
        w,
        "  {checked} lookups across 40 random hierarchies: all agree"
    )?;
    Ok(())
}

/// E7 — Figure 9: the g++ counterexample.
fn e7(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E7 (Figure 9): the g++ 2.7.2.1 counterexample")?;
    let g = fixtures::fig9();
    let e = g.class_by_name("E").unwrap();
    let m = g.member_by_name("m").unwrap();
    let sg = SubobjectGraph::build(&g, e, 1000).expect("tiny");
    let t = LookupTable::build(&g);
    writeln!(w, "  paper's algorithm : {}", verdict(&g, &t.lookup(e, m)))?;
    let faithful = match gxx_lookup(&g, &sg, m) {
        GxxResult::Ambiguous => "ambiguous   <- WRONG (the 1997 bug)".to_owned(),
        other => format!("{other:?}"),
    };
    writeln!(w, "  faithful g++ BFS  : {faithful}")?;
    let corrected = match gxx_lookup_corrected(&g, &sg, m) {
        GxxResult::Resolved(id) => format!("{}::m", g.class_name(sg.subobject(id).class())),
        other => format!("{other:?}"),
    };
    writeln!(w, "  corrected BFS     : {corrected}")?;
    Ok(())
}

/// E8 — Theorem 1: executable isomorphism check.
fn e8(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E8 (Theorem 1): ≈-class poset ≅ subobject poset")?;
    let fixtures_list = [
        ("fig1", fixtures::fig1()),
        ("fig2", fixtures::fig2()),
        ("fig3", fixtures::fig3()),
        ("fig9", fixtures::fig9()),
        ("static_diamond", fixtures::static_diamond()),
        ("static_override_mix", fixtures::static_override_mix()),
    ];
    for (name, g) in fixtures_list {
        isomorphism::check_theorem1_all(&g, 1_000_000)
            .unwrap_or_else(|e| panic!("theorem 1 failed on {name}: {e}"));
        writeln!(w, "  {name}: verified for all {} classes", g.class_count())?;
    }
    let mut classes = 0usize;
    for seed in 0..25 {
        let g = random_hierarchy(&RandomConfig::stress(seed));
        isomorphism::check_theorem1_all(&g, 1_000_000).expect("theorem 1 on random graph");
        classes += g.class_count();
    }
    writeln!(
        w,
        "  + verified on {classes} classes across 25 random hierarchies"
    )?;
    Ok(())
}

/// E9 — subobject blowup: CHG linear, subobject graph exponential.
fn e9(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E9: subobject-graph size vs CHG size (stacked diamonds)")?;
    writeln!(
        w,
        "  {:>3} {:>8} {:>8} {:>14} {:>14}",
        "k", "classes", "edges", "nonvirtual", "virtual"
    )?;
    for k in [2, 4, 6, 8, 10, 12, 14, 16, 18, 20] {
        let nv = families::stacked_diamonds(k, Inheritance::NonVirtual);
        let v = families::stacked_diamonds(k, Inheritance::Virtual);
        let bottom = format!("D{k}");
        let count = |g: &Chg| -> String {
            let c = g.class_by_name(&bottom).unwrap();
            match count_subobjects(g, c, 8_000_000) {
                Ok(n) => n.to_string(),
                Err(_) => "> 8,000,000".to_owned(),
            }
        };
        writeln!(
            w,
            "  {:>3} {:>8} {:>8} {:>14} {:>14}",
            k,
            nv.class_count(),
            nv.edge_count(),
            count(&nv),
            count(&v)
        )?;
    }
    writeln!(
        w,
        "  shape: non-virtual grows as 2^k; virtual stays linear in k"
    )?;
    Ok(())
}

fn time_single_lookup(w: &mut dyn Write, workload: &Workload, runs: usize) -> io::Result<()> {
    let Workload {
        name,
        chg,
        class,
        member,
    } = workload;
    let (ours, _) = median_time(runs, || {
        let mut lazy = LazyLookup::new(chg);
        lazy.lookup(*class, *member)
    });
    let (topo, _) = median_time(runs, || toposort_lookup(chg, *class, *member));
    let gxx = {
        let (d, outcome) = median_time(1, || {
            SubobjectGraph::build(chg, *class, 2_000_000)
                .map(|sg| gxx_lookup_corrected(chg, &sg, *member))
        });
        match outcome {
            Ok(_) => fmt_duration(d),
            Err(_) => "blowup".to_owned(),
        }
    };
    writeln!(
        w,
        "  {:<18} {:>10} {:>12} {:>12}",
        name,
        fmt_duration(ours),
        gxx,
        fmt_duration(topo)
    )
}

/// E10 — single-lookup cost: ours vs subobject-graph BFS vs the
/// (unsound) topological shortcut.
fn e10(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E10: single lookup cost (cold caches)")?;
    writeln!(
        w,
        "  {:<18} {:>10} {:>12} {:>12}",
        "workload", "ours(lazy)", "gxx(BFS)", "topo-num"
    )?;
    for workload in [
        workloads::chain(256),
        workloads::chain(1024),
        workloads::chain(4096),
        workloads::virtual_diamonds(64),
        workloads::virtual_diamonds(256),
        workloads::nonvirtual_diamonds(8),
        workloads::nonvirtual_diamonds(14),
        workloads::nonvirtual_diamonds(20),
        workloads::nonvirtual_diamonds(40),
        workloads::gxx_trap(64),
        workloads::realistic(2000, 11),
    ] {
        time_single_lookup(w, &workload, 5)?;
    }
    writeln!(
        w,
        "  shape: ours stays linear in |N|+|E|; BFS explodes with 2^k subobjects;"
    )?;
    writeln!(
        w,
        "  the topo shortcut is fastest but silently wrong on ambiguous lookups (E17)"
    )?;
    Ok(())
}

/// E11 — whole-table construction: eager vs lazy-everything vs parallel.
fn e11(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E11: whole-table construction")?;
    writeln!(
        w,
        "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "workload", "entries", "eager", "lazy-all", "par(4)", "ambiguous%"
    )?;
    let mut cases: Vec<(String, Chg)> = vec![
        (
            "realistic-500".into(),
            random_hierarchy(&RandomConfig::realistic(500, 1)),
        ),
        (
            "realistic-2000".into(),
            random_hierarchy(&RandomConfig::realistic(2000, 2)),
        ),
        (
            "clash-500".into(),
            random_hierarchy(&RandomConfig {
                classes: 500,
                extra_base_prob: 0.5,
                max_bases: 3,
                virtual_prob: 0.3,
                member_pool: 8,
                member_prob: 0.3,
                static_prob: 0.1,
                seed: 3,
            }),
        ),
    ];
    cases.push((
        "vdiamond-300".into(),
        families::stacked_diamonds(300, Inheritance::Virtual),
    ));
    for (name, chg) in &cases {
        let (eager, table) = median_time(3, || LookupTable::build(chg));
        let (lazy_all, _) = median_time(3, || {
            let mut lazy = LazyLookup::new(chg);
            let mut touched = 0usize;
            for c in chg.classes() {
                for m in chg.member_ids() {
                    if lazy.entry(c, m).is_some() {
                        touched += 1;
                    }
                }
            }
            touched
        });
        let (par, _) = median_time(3, || {
            LookupTable::build_parallel(chg, LookupOptions::default(), 4)
        });
        let stats = table.stats();
        writeln!(
            w,
            "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>11.1}%",
            name,
            stats.entries,
            fmt_duration(eager),
            fmt_duration(lazy_all),
            fmt_duration(par),
            100.0 * stats.blue as f64 / stats.entries.max(1) as f64
        )?;
    }
    writeln!(
        w,
        "  shape: all polynomial; parallel wins on wide member pools"
    )?;
    Ok(())
}

/// E12 — the killing optimization of Section 4, measured.
fn e12(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E12: killing ablation (naive Section-4 propagation)")?;
    writeln!(
        w,
        "  {:<16} {:>14} {:>14} {:>10} {:>10}",
        "workload", "defs(no-kill)", "defs(kill)", "t(nokill)", "t(kill)"
    )?;
    let cases = [
        ("fig3", fixtures::fig3()),
        (
            "nvdiamond-12",
            families::stacked_diamonds(12, Inheritance::NonVirtual),
        ),
        (
            "ovdiamond-12",
            families::stacked_diamonds_overridden(12, Inheritance::NonVirtual),
        ),
        ("grid-5x5", families::grid(5, 5)),
        ("gxxtrap-6", families::gxx_trap(6)),
    ];
    for (name, chg) in cases {
        let m = chg
            .member_by_name("m")
            .or_else(|| chg.member_by_name("foo"))
            .unwrap();
        let budget = 10_000_000;
        let (t_nokill, no_kill) = median_time(3, || {
            propagate(
                &chg,
                m,
                PropagationConfig {
                    kill: false,
                    budget,
                },
            )
        });
        let (t_kill, kill) = median_time(3, || {
            propagate(&chg, m, PropagationConfig { kill: true, budget })
        });
        let fmt_defs = |r: &Result<_, _>| match r {
            Ok(p) => {
                let p: &cpplookup_baselines::naive::Propagation = p;
                p.propagated_defs.to_string()
            }
            Err(_) => format!("> {budget}"),
        };
        writeln!(
            w,
            "  {:<16} {:>14} {:>14} {:>10} {:>10}",
            name,
            fmt_defs(&no_kill),
            fmt_defs(&kill),
            fmt_duration(t_nokill),
            fmt_duration(t_kill)
        )?;
    }
    writeln!(
        w,
        "  shape: killing collapses definition counts wherever overrides exist"
    )?;
    Ok(())
}

/// E13 — static members (Definition 17), including the set-propagation
/// counterexample found by differential testing.
fn e13(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E13: static members (Definition 16/17)")?;
    let g = fixtures::static_diamond();
    let t = LookupTable::build(&g);
    let d = g.class_by_name("D").unwrap();
    writeln!(
        w,
        "  static_diamond: lookup(D, s) = {}   lookup(D, d) = {}",
        verdict_named(&g, &t.lookup(d, g.member_by_name("s").unwrap()), "s"),
        verdict_named(&g, &t.lookup(d, g.member_by_name("d").unwrap()), "d")
    )?;
    let g = fixtures::static_override_mix();
    let t = LookupTable::build(&g);
    let j = g.class_by_name("J").unwrap();
    let tt = g.class_by_name("T").unwrap();
    let id = g.member_by_name("id").unwrap();
    writeln!(
        w,
        "  static_override_mix: lookup(J, id) = {}   lookup(T, id) = {}",
        verdict_named(&g, &t.lookup(j, id), "id"),
        verdict_named(&g, &t.lookup(tt, id), "id")
    )?;
    writeln!(
        w,
        "  note: lookup(T, id) is ambiguous only because shared-static entries"
    )?;
    writeln!(
        w,
        "  propagate the whole co-maximal set; a single representative (a literal"
    )?;
    writeln!(
        w,
        "  reading of the paper's Section 6 sketch) resolves it incorrectly"
    )?;
    Ok(())
}

/// E14 — access rights, applied after lookup.
fn e14(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E14: access rights (post-lookup)")?;
    let src = "class B { public: int pub_m; protected: int prot_m; private: int priv_m; };\n\
               class D : public B {};\n\
               class P : private B {};\n";
    let analysis = analyze(src);
    let chg = &analysis.chg;
    let table = &analysis.table;
    for (class, member, ctx, label) in [
        ("D", "pub_m", AccessContext::External, "external"),
        ("D", "prot_m", AccessContext::External, "external"),
        ("D", "priv_m", AccessContext::External, "external"),
        ("P", "pub_m", AccessContext::External, "external"),
    ] {
        let c = chg.class_by_name(class).unwrap();
        let m = chg.member_by_name(member).unwrap();
        let r = match check_access(chg, table, c, m, ctx) {
            Ok(a) => format!("accessible ({a})"),
            Err(e) => format!("rejected: {e}"),
        };
        writeln!(w, "  {class}::{member} from {label}: {r}")?;
    }
    let d = chg.class_by_name("D").unwrap();
    let prot = chg.member_by_name("prot_m").unwrap();
    let r = match check_access(chg, table, d, prot, AccessContext::Inside(d)) {
        Ok(a) => format!("accessible ({a})"),
        Err(e) => format!("rejected: {e}"),
    };
    writeln!(w, "  D::prot_m from inside D: {r}")?;
    Ok(())
}

/// E15 — unqualified-name resolution through nested scopes.
fn e15(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E15: unqualified names (Section 6)")?;
    let src = "int g;\n\
               struct Base { int inherited; };\n\
               struct S : Base {\n\
                 int own;\n\
                 void f() { int local; local = 1; own = 2; inherited = 3; g = 4; }\n\
               };\n";
    let analysis = analyze(src);
    for q in &analysis.queries {
        writeln!(w, "  `{}` -> {:?}", q.description, q.result)?;
    }
    writeln!(
        w,
        "  order: block locals, then member lookup (bases included), then globals"
    )?;
    Ok(())
}

/// E16 — the "lookups are a real fraction of compilation" motivation:
/// parse-only vs full analysis on a generated translation unit.
fn e16(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E16: frontend share of member lookup")?;
    writeln!(
        w,
        "  {:<24} {:>10} {:>12} {:>14}",
        "workload", "parse", "parse+lookup", "lookup share"
    )?;
    for (classes, accesses) in [(100, 500), (300, 3000), (600, 10_000)] {
        let src = workloads::frontend_source(classes, accesses);
        let (parse_only, _) = median_time(3, || parser::parse(&src));
        let (full, analysis) = median_time(3, || analyze(&src));
        assert_eq!(analysis.failed_queries().count(), 0);
        let share = 100.0 * (full.as_secs_f64() - parse_only.as_secs_f64()).max(0.0)
            / full.as_secs_f64().max(f64::EPSILON);
        writeln!(
            w,
            "  {:<24} {:>10} {:>12} {:>13.0}%",
            format!("{classes}cls/{accesses}acc"),
            fmt_duration(parse_only),
            fmt_duration(full),
            share
        )?;
    }
    writeln!(
        w,
        "  [paper, Section 7: member lookups can be as much as 15% of compilation]"
    )?;
    Ok(())
}

/// E17 — the topological-number shortcut: fast, and silently wrong
/// exactly on the ambiguous lookups.
fn e17(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E17: the topological-number shortcut (Section 7.2)")?;
    let mut resolved = 0usize;
    let mut resolved_agree = 0usize;
    let mut ambiguous = 0usize;
    let mut silently_answered = 0usize;
    for seed in 0..60 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        for c in chg.classes() {
            for m in chg.member_ids() {
                match table.lookup(c, m) {
                    LookupOutcome::Resolved { class, .. } => {
                        resolved += 1;
                        if toposort_lookup(&chg, c, m) == Some(class) {
                            resolved_agree += 1;
                        }
                    }
                    LookupOutcome::Ambiguous { .. } => {
                        ambiguous += 1;
                        if toposort_lookup(&chg, c, m).is_some() {
                            silently_answered += 1;
                        }
                    }
                    LookupOutcome::NotFound => {}
                }
            }
        }
    }
    writeln!(
        w,
        "  unambiguous lookups: {resolved_agree}/{resolved} match the real answer"
    )?;
    writeln!(
        w,
        "  ambiguous lookups:   {silently_answered}/{ambiguous} silently produce a wrong binding"
    )?;
    writeln!(
        w,
        "  [valid only under the Eiffel/Attali assumption of no ambiguity]"
    )?;
    Ok(())
}

/// E18 — edit-heavy workload: the incremental engine's dirty-set
/// recomputation vs rebuilding the whole table after every edit.
fn e18(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E18: incremental invalidation vs full rebuild")?;
    writeln!(
        w,
        "  {:<18} {:>6} {:>12} {:>12} {:>8} {:>14} {:>12} {:>12}",
        "workload",
        "edits",
        "full/edit",
        "incr/edit",
        "ratio",
        "edge-med-ratio",
        "rebuild",
        "incremental"
    )?;
    for (classes, seed) in [(500usize, 1u64), (2000, 2)] {
        let (base, script) = edit_script(&EditScriptConfig::realistic(classes, 40, seed));
        let mut engine = LookupEngine::new(base.clone());
        let mut g = base;
        let mut full_entries = 0u64;
        let mut incr_entries = 0u64;
        let mut edge_ratios: Vec<f64> = Vec::new();
        let mut rebuild_time = std::time::Duration::ZERO;
        let mut incr_time = std::time::Duration::ZERO;
        let mut prev_recomputed = 0u64;
        for edit in &script {
            let step = std::slice::from_ref(edit);
            g = apply_edits(&g, step).expect("generated edits always apply");
            let (dt, table) = crate::timing::time_once(|| LookupTable::build(&g));
            rebuild_time += dt;
            let (dt, result) = crate::timing::time_once(|| engine.apply(step));
            result.expect("generated edits always apply");
            incr_time += dt;
            let full = table.stats().entries as u64;
            let recomputed = engine.stats().entries_recomputed;
            let delta = recomputed - prev_recomputed;
            prev_recomputed = recomputed;
            full_entries += full;
            incr_entries += delta;
            if matches!(edit, Edit::AddEdge { .. }) {
                edge_ratios.push(full as f64 / delta.max(1) as f64);
            }
        }
        // Spot-check the incremental result against the last rebuild.
        let table = LookupTable::build(&g);
        for c in g.classes().step_by(7) {
            for m in g.member_ids().take(40) {
                assert_eq!(
                    engine.entry(c, m).as_ref(),
                    table.entry(c, m),
                    "incremental result diverged at ({}, {})",
                    g.class_name(c),
                    g.member_name(m)
                );
            }
        }
        edge_ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let median = edge_ratios
            .get(edge_ratios.len() / 2)
            .copied()
            .unwrap_or(f64::INFINITY);
        let edits = script.len() as u64;
        writeln!(
            w,
            "  {:<18} {:>6} {:>12} {:>12} {:>7.0}x {:>13.0}x {:>12} {:>12}",
            format!("realistic-{classes}"),
            edits,
            full_entries / edits,
            incr_entries / edits,
            full_entries as f64 / incr_entries.max(1) as f64,
            median,
            fmt_duration(rebuild_time),
            fmt_duration(incr_time)
        )?;
        assert!(
            median >= 5.0,
            "single-edge edits must recompute at least 5x fewer entries than a rebuild \
             (median ratio {median:.1} on realistic-{classes})"
        );
    }
    writeln!(
        w,
        "  [the dirty set of a single edit is its derived-class closure, not the table]"
    )?;
    Ok(())
}

/// E19 — observability overhead: cache-hit query cost on the
/// instrumented engine with no event sink, a counting sink, and a
/// buffering sink installed.
///
/// The cross-feature comparison (building the whole harness with
/// `--no-default-features` and rerunning the `single_lookup` bench) is
/// recorded in `EXPERIMENTS.md`; this experiment measures what a single
/// binary can: how much the *optional* machinery costs once the `obs`
/// feature is compiled in.
fn e19(w: &mut dyn Write) -> io::Result<()> {
    use cpplookup_core::obs;
    use std::sync::Arc;

    writeln!(w, "E19: observability overhead on the query hot path")?;
    writeln!(
        w,
        "  obs feature: {}",
        if cfg!(feature = "obs") {
            "enabled"
        } else {
            "disabled (counters still served; shard/latency/event extras compiled out)"
        }
    )?;
    let wl = workloads::realistic(2000, 7);
    let engine = LookupEngine::new(wl.chg.clone());
    let queries: Vec<_> = wl
        .chg
        .classes()
        .flat_map(|c| {
            let chg = &wl.chg;
            chg.member_ids().map(move |m| (c, m))
        })
        .take(50_000)
        .collect();
    engine.lookup_batch(&queries); // warm every shard

    let sinks: [(&str, Option<Arc<dyn obs::EventSink>>); 3] = [
        ("no sink", None),
        ("counting sink", Some(Arc::new(obs::CountingSink::new()))),
        ("memory sink", Some(Arc::new(obs::MemorySink::new()))),
    ];
    let mut baseline_ns = 0.0f64;
    writeln!(
        w,
        "  {:<16} {:>12} {:>10} {:>8}",
        "sink", "batch", "ns/query", "ratio"
    )?;
    for (name, sink) in sinks {
        engine.set_event_sink(sink);
        let (median, _) = median_time(5, || engine.lookup_batch(&queries));
        let per_query = median.as_nanos() as f64 / queries.len() as f64;
        if baseline_ns == 0.0 {
            baseline_ns = per_query.max(f64::MIN_POSITIVE);
        }
        writeln!(
            w,
            "  {:<16} {:>12} {:>9.1} {:>7.2}x",
            name,
            fmt_duration(median),
            per_query,
            per_query / baseline_ns
        )?;
    }
    engine.set_event_sink(None);
    let snapshot = engine.metrics_snapshot();
    writeln!(
        w,
        "  registry: {} metric series exported for {} queries",
        snapshot.metrics.len(),
        engine.stats().lookups
    )?;
    writeln!(
        w,
        "  [no-sink queries never construct events: one relaxed atomic load gates the path]"
    )?;
    Ok(())
}

/// E20: snapshot cold load vs building the table from the hierarchy.
///
/// The "compile once, serve many" pitch of `cpplookup-snapshot` is that
/// a server process should reach its first answered query by validating
/// pre-compiled bytes, not by re-running the closure computation. This
/// experiment measures time-to-first-query three ways across ascending
/// hierarchy families — eager build, parallel build (4 threads), and
/// snapshot load (checksum + structural validation of the byte image,
/// including the `memcpy` of the input buffer) — plus resident-set
/// growth while each result is held live.
///
/// The acceptance target is a >=10x load-vs-build advantage on the
/// largest family.
fn e20(w: &mut dyn Write) -> io::Result<()> {
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    fn vm_rss_kb() -> Option<i64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find(|l| l.starts_with("VmRSS:"))?
            .split_whitespace()
            .nth(1)?
            .parse()
            .ok()
    }
    fn fmt_kb(bytes: usize) -> String {
        if bytes < 1024 {
            format!("{bytes} B")
        } else {
            format!("{:.1} KB", bytes as f64 / 1024.0)
        }
    }
    fn fmt_rss(delta: Option<i64>) -> String {
        match delta {
            Some(kb) => format!("{kb:+} KB"),
            None => "n/a".to_owned(),
        }
    }

    writeln!(
        w,
        "E20: snapshot cold load vs table build (compile once, serve many)"
    )?;
    writeln!(
        w,
        "  every timing includes the first answered query; load includes full \
         checksum + structural validation"
    )?;
    let families: Vec<(&str, Chg)> = vec![
        ("chain_512", families::chain(512, Some(8))),
        ("interface_256x4", families::interface_heavy(256, 4)),
        ("grid_16x16", families::grid(16, 16)),
        (
            "realistic_1000",
            random_hierarchy(&RandomConfig::realistic(1000, 7)),
        ),
        (
            "realistic_4000",
            random_hierarchy(&RandomConfig::realistic(4000, 7)),
        ),
        (
            "realistic_8000",
            random_hierarchy(&RandomConfig::realistic(8000, 7)),
        ),
    ];

    writeln!(
        w,
        "  {:<16} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "family",
        "classes",
        "entries",
        "snapshot",
        "build",
        "par(4)",
        "load",
        "speedup",
        "rss build",
        "rss load"
    )?;

    let mut largest_speedup = 0.0f64;
    for (name, chg) in &families {
        let c0 = chg.classes().next().expect("non-empty hierarchy");
        let m0 = chg.member_ids().next().expect("hierarchy declares members");

        let rss_before_build = vm_rss_kb();
        let (t_build, table) = median_time(5, || {
            let t = LookupTable::build(chg);
            let _ = t.lookup(c0, m0);
            t
        });
        let rss_build = vm_rss_kb().zip(rss_before_build).map(|(a, b)| a - b);
        drop(table);
        let (t_par, par_table) = median_time(5, || {
            LookupTable::build_parallel(chg, LookupOptions::default(), 4)
        });
        drop(par_table);

        let bytes = Snapshot::compile(chg).into_bytes();
        let snap_len = bytes.len();
        let rss_before_load = vm_rss_kb();
        let (t_load, loaded) = median_time(5, || {
            let t = SnapshotTable::from_bytes(bytes.clone()).expect("writer output validates");
            let _ = t.lookup(c0, m0);
            t
        });
        let rss_load = vm_rss_kb().zip(rss_before_load).map(|(a, b)| a - b);

        let speedup = t_build.as_secs_f64() / t_load.as_secs_f64().max(f64::MIN_POSITIVE);
        largest_speedup = speedup; // families are ascending; last row is largest
        writeln!(
            w,
            "  {:<16} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8.1}x {:>10} {:>10}",
            name,
            loaded.class_count(),
            loaded.entry_count(),
            fmt_kb(snap_len),
            fmt_duration(t_build),
            fmt_duration(t_par),
            fmt_duration(t_load),
            speedup,
            fmt_rss(rss_build),
            fmt_rss(rss_load),
        )?;
    }
    writeln!(
        w,
        "  target >=10x faster time-to-first-query on the largest family: {} ({:.1}x)",
        if largest_speedup >= 10.0 {
            "PASS"
        } else {
            "FAIL"
        },
        largest_speedup
    )?;
    writeln!(
        w,
        "  [rss deltas are indicative only: the allocator reuses freed build pages for the load]"
    )?;
    Ok(())
}

/// E21 — the batched single-sweep compiler (CSR + member-frontier
/// pruning + arena-interned abstractions) against the per-member
/// reference build it replaced, plus the work-stealing parallel sweep
/// on top. Every family here is ≥2000 classes; the headline number is
/// the geometric-mean single-thread speedup (target ≥3×). The builders
/// are asserted entry-identical before any timing is reported.
fn e21(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "E21: batched single-sweep compiler vs the old per-member build"
    )?;
    let jobs = std::thread::available_parallelism().map_or(4, usize::from);
    writeln!(
        w,
        "  old = one full topological sweep over all classes per member \
         (Theta(|N|*|M|) steps); batched = one sweep per member *frontier*, \
         shared CSR, interned abstractions; parallel = work-stealing over \
         member columns ({jobs} jobs)"
    )?;
    let families: Vec<(&str, Chg)> = vec![
        ("chain_2500", families::chain(2500, Some(16))),
        ("grid_50x50", families::grid(50, 50)),
        ("interface_500x4", families::interface_heavy(500, 4)),
        (
            "realistic_2000",
            random_hierarchy(&RandomConfig::realistic(2000, 7)),
        ),
        (
            "realistic_4000",
            random_hierarchy(&RandomConfig::realistic(4000, 7)),
        ),
    ];
    writeln!(
        w,
        "  {:<16} {:>7} {:>8} {:>11} {:>11} {:>8} {:>11} {:>8}",
        "family", "classes", "entries", "old", "batched", "speedup", "parallel", "speedup"
    )?;
    let mut ratios: Vec<f64> = Vec::new();
    for (name, chg) in &families {
        let options = LookupOptions::default();
        let (t_old, old) = median_time(3, || LookupTable::build_per_member(chg, options));
        let (t_bat, batched) = median_time(3, || LookupTable::build(chg));
        assert_eq!(
            old.stats(),
            batched.stats(),
            "{name}: builders diverged — timing a wrong table is meaningless"
        );
        drop(old);
        let (t_par, parallel) = median_time(3, || LookupTable::build_parallel(chg, options, jobs));
        assert_eq!(
            batched.stats(),
            parallel.stats(),
            "{name}: parallel diverged"
        );
        let entries = batched.stats().entries;
        drop((batched, parallel));
        let speedup = t_old.as_secs_f64() / t_bat.as_secs_f64().max(f64::MIN_POSITIVE);
        let par_speedup = t_old.as_secs_f64() / t_par.as_secs_f64().max(f64::MIN_POSITIVE);
        ratios.push(speedup);
        writeln!(
            w,
            "  {:<16} {:>7} {:>8} {:>11} {:>11} {:>7.2}x {:>11} {:>7.2}x",
            name,
            chg.class_count(),
            entries,
            fmt_duration(t_old),
            fmt_duration(t_bat),
            speedup,
            fmt_duration(t_par),
            par_speedup,
        )?;
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    writeln!(
        w,
        "  target >=3x single-thread geomean speedup on families >=2000 classes: {} ({geomean:.2}x)",
        if geomean >= 3.0 { "PASS" } else { "FAIL" }
    )?;
    Ok(())
}

/// E21's CI guard: a fast batched-vs-old differential on one small
/// interface-heavy family, erroring out when the tables diverge or the
/// batched build is more than 1.25× slower than the old per-member
/// build it replaced.
fn e21_smoke(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "E21-smoke: batched-vs-old differential + perf guard")?;
    let chg = families::interface_heavy(200, 4);
    let options = LookupOptions::default();
    let old = LookupTable::build_per_member(&chg, options);
    let batched = LookupTable::build(&chg);
    for c in chg.classes() {
        for m in chg.member_ids() {
            if old.entry(c, m) != batched.entry(c, m) {
                return Err(io::Error::other(format!(
                    "builders diverge at ({}, {})",
                    chg.class_name(c),
                    chg.member_name(m)
                )));
            }
        }
    }
    writeln!(
        w,
        "  differential: {} classes, {} entries, batched == old per-member build",
        chg.class_count(),
        batched.stats().entries
    )?;
    let (t_old, _) = median_time(5, || LookupTable::build_per_member(&chg, options));
    let (t_bat, _) = median_time(5, || LookupTable::build(&chg));
    let ratio = t_bat.as_secs_f64() / t_old.as_secs_f64().max(f64::MIN_POSITIVE);
    writeln!(
        w,
        "  perf: old {} batched {} (batched/old = {ratio:.2})",
        fmt_duration(t_old),
        fmt_duration(t_bat)
    )?;
    if ratio > 1.25 {
        return Err(io::Error::other(format!(
            "batched build is {ratio:.2}x the old per-member build time (limit 1.25x)"
        )));
    }
    writeln!(w, "  guard: PASS (limit 1.25x)")?;
    Ok(())
}

/// A serving probe: one `(class, member)` query.
type Probe = (cpplookup_chg::ClassId, cpplookup_chg::MemberId);

/// Deterministic Fisher–Yates driven by an inline LCG (the bench crate
/// has no rand dependency). A fixed seed keeps probe order reproducible
/// across backends and runs, so every backend serves the same stream.
fn shuffle_probes<T>(v: &mut [T], mut seed: u64) {
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        v.swap(i, j);
    }
}

/// Folds an owned outcome into a checksum word. Keeps the optimizer
/// from discarding the lookups and doubles as a cross-backend agreement
/// check: every backend must produce the same per-family checksum.
fn outcome_word(outcome: &LookupOutcome) -> u64 {
    match outcome {
        LookupOutcome::NotFound => 1,
        LookupOutcome::Resolved { class, .. } => 2 + class.index() as u64,
        LookupOutcome::Ambiguous { witnesses } => 0x1000 + witnesses.len() as u64,
    }
}

/// The same checksum for the borrowed fast path, so table, snapshot,
/// and index sweeps are comparable word for word.
fn outcome_ref_word(outcome: &cpplookup_core::OutcomeRef<'_>) -> u64 {
    use cpplookup_core::OutcomeRef;
    match outcome {
        OutcomeRef::NotFound => 1,
        OutcomeRef::Resolved { class, .. } => 2 + class.index() as u64,
        OutcomeRef::Ambiguous { witnesses } => 0x1000 + witnesses.len() as u64,
    }
}

/// Times `reps` single-threaded passes over `probes` through `f`,
/// returning (ns per lookup, checksum).
fn serve_single(probes: &[Probe], reps: usize, f: impl Fn(Probe) -> u64) -> (f64, u64) {
    let (t, sum) = median_time(3, || {
        let mut sum = 0u64;
        for _ in 0..reps {
            for &p in probes {
                sum = sum.wrapping_add(f(p));
            }
        }
        sum
    });
    let lookups = (reps * probes.len()) as f64;
    (t.as_secs_f64() * 1e9 / lookups, sum)
}

/// Runs `threads` workers, each making `reps` rotated passes over
/// `probes` through `f` (each worker starts at a different offset so
/// the backends see spread-out access, not lockstep). Returns
/// (aggregate lookups per second, checksum).
fn serve_mt(
    threads: usize,
    probes: &[Probe],
    reps: usize,
    f: impl Fn(Probe) -> u64 + Sync,
) -> (f64, u64) {
    let (t, sum) = median_time(3, || {
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|tid| {
                    let f = &f;
                    let offset = tid * probes.len() / threads;
                    scope.spawn(move || {
                        let mut sum = 0u64;
                        for _ in 0..reps {
                            for &p in probes.iter().skip(offset).chain(probes.iter().take(offset)) {
                                sum = sum.wrapping_add(f(p));
                            }
                        }
                        sum
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|h| h.join().expect("serve worker"))
                .fold(0u64, u64::wrapping_add)
        })
    });
    let lookups = (threads * reps * probes.len()) as f64;
    (lookups / t.as_secs_f64().max(f64::MIN_POSITIVE), sum)
}

/// The live (class, member) pairs of a hierarchy — every pair the table
/// actually stores an entry for — LCG-shuffled and capped, so the probe
/// stream has no locality the backends could ride for free.
fn serve_probes(chg: &Chg, table: &LookupTable, seed: u64) -> Vec<Probe> {
    let mut probes: Vec<Probe> = chg
        .classes()
        .flat_map(|c| table.members_of(c).map(move |m| (c, m)))
        .collect();
    shuffle_probes(&mut probes, seed);
    probes.truncate(100_000);
    probes
}

/// E22 — the flat dispatch index against the two existing read paths:
/// the hashmap-of-hashmaps `LookupTable` and the binary-search +
/// varint-decode `SnapshotTable`. Single-thread ns/lookup and 8-thread
/// aggregate QPS on ≥2000-class families, shuffled live-pair probe
/// streams, checksum-verified across backends before any number is
/// reported. Also emits `BENCH_e22.json` for the CI no-regression
/// guard (`e22-smoke`).
fn e22(w: &mut dyn Write) -> io::Result<()> {
    use cpplookup_core::{DirectoryKind, DispatchIndex};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    const THREADS: usize = 8;
    writeln!(
        w,
        "E22: flat dispatch index vs hashmap table vs snapshot binary-search"
    )?;
    writeln!(
        w,
        "  table = FxHashMap-of-FxHashMap entry clone; snapshot = binary-search \
         + varint decode per hit; index = pre-decoded CSR rows served via \
         allocation-free lookup_ref (open-addressed directory: E22 is the \
         baseline-directory experiment; the MPH directory is E26's subject)"
    )?;
    let families: Vec<(&str, Chg)> = vec![
        ("chain_2500", families::chain(2500, Some(16))),
        ("grid_50x50", families::grid(50, 50)),
        ("interface_500x4", families::interface_heavy(500, 4)),
        (
            "realistic_2000",
            random_hierarchy(&RandomConfig::realistic(2000, 7)),
        ),
        (
            "realistic_4000",
            random_hierarchy(&RandomConfig::realistic(4000, 7)),
        ),
    ];
    writeln!(w, "  single thread, ns/lookup:")?;
    writeln!(
        w,
        "  {:<16} {:>7} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "family", "classes", "entries", "b/entry", "table", "snapshot", "index", "vs table"
    )?;
    let mut rows: Vec<String> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    let mut single_ratios: Vec<f64> = Vec::new();
    let mut qps_ratios: Vec<f64> = Vec::new();
    for (name, chg) in &families {
        let table = LookupTable::build(chg);
        let snap = SnapshotTable::from_bytes(Snapshot::compile(chg).into_bytes())
            .expect("snapshot roundtrip");
        let index = DispatchIndex::from_table(LookupTable::build(chg))
            .with_directory_kind(DirectoryKind::Open);
        let probes = serve_probes(chg, &table, 0x9E37 ^ name.len() as u64);
        let reps = (2_000_000 / probes.len()).max(1);
        let mt_reps = (1_000_000 / probes.len()).max(1);

        let (ns_table, s_table) =
            serve_single(&probes, reps, |(c, m)| outcome_word(&table.lookup(c, m)));
        let (ns_snap, s_snap) =
            serve_single(&probes, reps, |(c, m)| outcome_word(&snap.lookup(c, m)));
        let (ns_index, s_index) = serve_single(&probes, reps, |(c, m)| {
            outcome_ref_word(&index.lookup_ref(c, m))
        });
        assert_eq!(s_table, s_snap, "{name}: snapshot serve checksum diverged");
        assert_eq!(s_table, s_index, "{name}: index serve checksum diverged");

        let (qps_table, m_table) = serve_mt(THREADS, &probes, mt_reps, |(c, m)| {
            outcome_word(&table.lookup(c, m))
        });
        let (qps_snap, m_snap) = serve_mt(THREADS, &probes, mt_reps, |(c, m)| {
            outcome_word(&snap.lookup(c, m))
        });
        let (qps_index, m_index) = serve_mt(THREADS, &probes, mt_reps, |(c, m)| {
            outcome_ref_word(&index.lookup_ref(c, m))
        });
        assert_eq!(
            m_table, m_snap,
            "{name}: threaded snapshot checksum diverged"
        );
        assert_eq!(m_table, m_index, "{name}: threaded index checksum diverged");

        let single_ratio = ns_table / ns_index.max(f64::MIN_POSITIVE);
        let qps_ratio = qps_index / qps_snap.max(f64::MIN_POSITIVE);
        single_ratios.push(single_ratio);
        qps_ratios.push(qps_ratio);
        writeln!(
            w,
            "  {:<16} {:>7} {:>8} {:>8.1} {:>9.1} {:>9.1} {:>9.1} {:>8.2}x",
            name,
            chg.class_count(),
            index.entry_count(),
            index.bytes_per_entry(),
            ns_table,
            ns_snap,
            ns_index,
            single_ratio,
        )?;
        rows.push(format!(
            "  {:<16} {:>9.2} {:>9.2} {:>9.2} {:>11.2}x",
            name,
            qps_table / 1e6,
            qps_snap / 1e6,
            qps_index / 1e6,
            qps_ratio,
        ));
        json_rows.push(format!(
            "    {{\"name\": \"{name}\", \"classes\": {}, \"entries\": {}, \
             \"index_bytes\": {}, \"bytes_per_entry\": {bpe:.2}, \
             \"single_ns\": {{\"table\": {ns_table:.2}, \"snapshot\": {ns_snap:.2}, \
             \"index\": {ns_index:.2}}}, \
             \"qps\": {{\"table\": {qps_table:.0}, \"snapshot\": {qps_snap:.0}, \
             \"index\": {qps_index:.0}}}, \
             \"index_vs_table_single\": {single_ratio:.3}, \
             \"index_vs_snapshot_qps\": {qps_ratio:.3}}}",
            chg.class_count(),
            index.entry_count(),
            index.size_bytes(),
            bpe = index.bytes_per_entry(),
        ));
    }
    writeln!(w, "  {THREADS} threads, aggregate Mlookups/s:")?;
    writeln!(
        w,
        "  {:<16} {:>9} {:>9} {:>9} {:>12}",
        "family", "table", "snapshot", "index", "vs snapshot"
    )?;
    for row in &rows {
        writeln!(w, "{row}")?;
    }
    let geo = |rs: &[f64]| (rs.iter().map(|r| r.ln()).sum::<f64>() / rs.len() as f64).exp();
    let g_single = geo(&single_ratios);
    let g_qps = geo(&qps_ratios);
    writeln!(
        w,
        "  target >=2x single-thread index vs hashmap table (geomean): {} ({g_single:.2}x)",
        if g_single >= 2.0 { "PASS" } else { "FAIL" }
    )?;
    writeln!(
        w,
        "  target >=4x {THREADS}-thread QPS index vs snapshot binary-search (geomean): {} ({g_qps:.2}x)",
        if g_qps >= 4.0 { "PASS" } else { "FAIL" }
    )?;
    let json = format!(
        "{{\n  \"experiment\": \"e22\",\n  \"threads\": {THREADS},\n  \"families\": [\n{}\n  ],\n  \
         \"geomean_index_vs_table_single\": {g_single:.3},\n  \
         \"geomean_index_vs_snapshot_qps\": {g_qps:.3}\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_e22.json", json)?;
    writeln!(w, "  wrote BENCH_e22.json")?;
    Ok(())
}

/// The host context recorded alongside wire-path throughput numbers:
/// QPS on a 64-core box and on a 1-core container are different
/// experiments, and a baseline file is meaningless without knowing
/// which one produced it. `client_threads` is the largest client-side
/// thread count the experiment drove.
fn host_context_json(client_threads: usize) -> String {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    format!(
        "\"host\": {{\"cores\": {cores}, \"client_threads\": {client_threads}, \
         \"os\": \"{}\", \"arch\": \"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// The I/O model the wire smokes run under: `CPPLOOKUP_IO_MODEL=epoll`
/// reruns e23/e24's guards against the reactor, so CI exercises both
/// models through the same assertions.
fn io_model_from_env() -> cpplookup_server::IoModel {
    std::env::var("CPPLOOKUP_IO_MODEL")
        .ok()
        .and_then(|v| cpplookup_server::IoModel::parse(&v))
        .unwrap_or_default()
}

/// Pulls a bare numeric field out of the hand-rolled `BENCH_e22.json`
/// (the bench crate has no serde); `None` when the key is absent.
fn json_f64(json: &str, key: &str) -> Option<f64> {
    let at = json.find(&format!("\"{key}\":"))?;
    let tail = json[at..].split_once(':')?.1.trim_start();
    let end = tail
        .find(|ch: char| ch == ',' || ch == '}' || ch.is_whitespace())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// E22's CI guard, in three stages: a full index-vs-table differential
/// on an interface-heavy family (every construction detail wrong shows
/// up here), a serve-sweep perf floor on `grid_50x50` — the family
/// where the index's one-line probe has the widest, most noise-proof
/// margin over the hashmap table (≥2×) — and, when a committed
/// `BENCH_e22.json` baseline exists, a no-regression check against
/// 0.4× that family's recorded ratio.
///
/// Since the MPH directory became the serving default, this guard pins
/// the index to the **open-addressed** directory on purpose: open is
/// the fallback every version-1 snapshot still loads through, so it
/// must stay correct and fast on its own. The MPH path has its own
/// gate (`e26-smoke`).
fn e22_smoke(w: &mut dyn Write) -> io::Result<()> {
    use cpplookup_core::{DirectoryKind, DispatchIndex};

    writeln!(
        w,
        "E22-smoke: dispatch-index differential + serve perf guard (open-directory fallback path)"
    )?;
    let diff = families::interface_heavy(200, 4);
    let diff_table = LookupTable::build(&diff);
    let diff_index = DispatchIndex::from_table(LookupTable::build(&diff))
        .with_directory_kind(DirectoryKind::Open);
    for c in diff.classes() {
        for m in diff.member_ids() {
            if diff_index.lookup_ref(c, m).to_outcome() != diff_table.lookup(c, m) {
                return Err(io::Error::other(format!(
                    "index diverges from table at ({}, {})",
                    diff.class_name(c),
                    diff.member_name(m)
                )));
            }
        }
    }
    writeln!(
        w,
        "  differential: {} classes, {} entries, index == table",
        diff.class_count(),
        diff_index.entry_count()
    )?;
    let chg = families::grid(50, 50);
    let table = LookupTable::build(&chg);
    let index = DispatchIndex::from_table(LookupTable::build(&chg))
        .with_directory_kind(DirectoryKind::Open);
    let probes = serve_probes(&chg, &table, 0xE22);
    let reps = (1_000_000 / probes.len()).max(1);
    let (ns_table, s_table) =
        serve_single(&probes, reps, |(c, m)| outcome_word(&table.lookup(c, m)));
    let (ns_index, s_index) = serve_single(&probes, reps, |(c, m)| {
        outcome_ref_word(&index.lookup_ref(c, m))
    });
    if s_table != s_index {
        return Err(io::Error::other(
            "probe checksums diverged between table and index",
        ));
    }
    let ratio = ns_table / ns_index.max(f64::MIN_POSITIVE);
    writeln!(
        w,
        "  perf (grid_50x50): table {ns_table:.1} ns/lookup, index {ns_index:.1} ns/lookup \
         (index speedup {ratio:.2}x)"
    )?;
    if ratio < 2.0 {
        return Err(io::Error::other(format!(
            "dispatch index is only {ratio:.2}x the hashmap table on the serve sweep (floor 2.0x)"
        )));
    }
    writeln!(w, "  guard: PASS (floor 2.0x)")?;
    if let Ok(baseline) = std::fs::read_to_string("BENCH_e22.json") {
        // Index into the grid_50x50 object so the per-family key wins
        // over the identical keys of the other families.
        let recorded = baseline
            .find("\"name\": \"grid_50x50\"")
            .and_then(|at| json_f64(&baseline[at..], "index_vs_table_single"));
        if let Some(recorded) = recorded {
            let floor = (recorded * 0.4).max(2.0);
            if ratio < floor {
                return Err(io::Error::other(format!(
                    "serve speedup {ratio:.2}x regressed below {floor:.2}x \
                     (0.4x the recorded grid_50x50 ratio {recorded:.2}x)"
                )));
            }
            writeln!(
                w,
                "  baseline: recorded grid_50x50 ratio {recorded:.2}x, floor {floor:.2}x — PASS"
            )?;
        }
    } else {
        writeln!(
            w,
            "  baseline: BENCH_e22.json not present, skipping no-regression guard"
        )?;
    }
    Ok(())
}

/// Maps an in-process [`LookupOutcome`] to the wire shape the server
/// should produce for it, using the snapshot's name tables.
fn wire_of(
    table: &cpplookup_snapshot::SnapshotTable,
    outcome: &LookupOutcome,
) -> cpplookup_server::WireOutcome {
    use cpplookup_core::LeastVirtual;
    use cpplookup_server::{WireLv, WireOutcome};

    let name = |c| table.class_name(c).unwrap().to_owned();
    let lv = |v: &LeastVirtual| match v {
        LeastVirtual::Omega => WireLv::Omega,
        LeastVirtual::Class(c) => WireLv::Class(name(*c)),
    };
    match outcome {
        LookupOutcome::NotFound => WireOutcome::NotFound,
        LookupOutcome::Resolved {
            class,
            least_virtual,
        } => WireOutcome::Resolved {
            class: name(*class),
            least_virtual: lv(least_virtual),
        },
        LookupOutcome::Ambiguous { witnesses } => WireOutcome::Ambiguous {
            witnesses: witnesses.iter().map(lv).collect(),
        },
    }
}

/// A scratch directory for snapshot artifacts, removed on drop.
struct BenchDir(std::path::PathBuf);

impl BenchDir {
    fn new(tag: &str) -> io::Result<BenchDir> {
        let path = std::env::temp_dir().join(format!("cpplookup-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(BenchDir(path))
    }

    fn file(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// E23 — the wire-protocol server over the snapshot farm: byte-level
/// differential of wire answers against the in-process
/// `DispatchIndex`, sustained closed-loop QPS with latency quantiles
/// at 1/8/32 connections, and a 1000-tenant cold-start sweep (LOAD
/// rate, then first-query promotion rate). Emits `BENCH_e23.json` for
/// the CI no-regression guard (`e23-smoke`).
fn e23(w: &mut dyn Write) -> io::Result<()> {
    use std::time::{Duration, Instant};

    use cpplookup_core::DispatchIndex;
    use cpplookup_server::cli::live_probes;
    use cpplookup_server::loadgen::{self, LoadConfig, TenantTarget};
    use cpplookup_server::{Client, Server, ServerConfig};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    const COLD_TENANTS: usize = 1000;
    const COLD_SNAPSHOTS: usize = 16;

    writeln!(w, "E23: multi-tenant wire protocol over the snapshot farm")?;
    let dir = BenchDir::new("e23")?;
    let chg = random_hierarchy(&RandomConfig::realistic(2000, 7));
    let snap_path = dir.file("main.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let table = SnapshotTable::load(&snap_path).map_err(io::Error::other)?;

    let mut config = ServerConfig::default();
    config.preload.push(("t0".to_owned(), snap_path.clone()));
    let server = Server::start(config)?;
    let addr = server.addr().to_string();

    // Stage 1: every live (class, member) pair answered over the wire
    // must match the in-process DispatchIndex packed from the same
    // snapshot — checked before any number is reported.
    let index = DispatchIndex::from_backend(&table);
    let probes = live_probes(&table);
    let mut client = Client::connect(addr.as_str(), Some(Duration::from_secs(30)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    for chunk in probes.chunks(1024) {
        let wire = client
            .batch("t0", chunk)
            .map_err(|e| io::Error::other(e.to_string()))?;
        for ((class, member), got) in chunk.iter().zip(&wire) {
            let c = table.class_by_name(class).unwrap();
            let m = table.member_by_name(member).unwrap();
            let want = wire_of(&table, &index.lookup(c, m));
            if *got != want {
                return Err(io::Error::other(format!(
                    "wire answer diverges from in-process index at ({class}, {member}): \
                     {got:?} != {want:?}"
                )));
            }
        }
    }
    writeln!(
        w,
        "  differential: {} classes, {} live pairs, wire == in-process index",
        chg.class_count(),
        probes.len()
    )?;

    // Stage 2: sustained closed-loop throughput at three connection
    // counts against the warm tenant.
    writeln!(w, "  closed loop, 1 probe/request, warm tenant:")?;
    writeln!(
        w,
        "  {:<12} {:>10} {:>10} {:>10}",
        "connections", "qps", "p50 us", "p99 us"
    )?;
    let targets = [TenantTarget {
        name: "t0".to_owned(),
        probes: probes.clone(),
    }];
    let mut json_levels: Vec<String> = Vec::new();
    let mut qps_by_conns: Vec<(usize, f64)> = Vec::new();
    for conns in [1usize, 8, 32] {
        let report = loadgen::run(
            &LoadConfig {
                addr: addr.clone(),
                connections: conns,
                duration: Duration::from_millis(1200),
                ..LoadConfig::default()
            },
            &targets,
        )?;
        if report.errors > 0 {
            return Err(io::Error::other(format!(
                "{} load errors at {conns} connections",
                report.errors
            )));
        }
        writeln!(
            w,
            "  {:<12} {:>10.0} {:>10.1} {:>10.1}",
            conns,
            report.qps(),
            report.p50_us(),
            report.p99_us()
        )?;
        qps_by_conns.push((conns, report.qps()));
        json_levels.push(format!(
            "    {{\"connections\": {conns}, \"qps\": {:.0}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}}}",
            report.qps(),
            report.p50_us(),
            report.p99_us()
        ));
    }
    // On a multi-core host the thread-per-connection server scales past
    // 1x here; on a single core the meaningful property is that 8
    // concurrent connections do not *collapse* aggregate throughput
    // (lock convoy, accept-path serialization). Guard the latter.
    let qps_1 = qps_by_conns[0].1;
    let qps_8 = qps_by_conns[1].1;
    let scaling = qps_8 / qps_1.max(f64::MIN_POSITIVE);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    writeln!(
        w,
        "  target >=0.5x aggregate QPS at 8 connections vs 1 ({cores} cores): {} ({scaling:.2}x)",
        if scaling >= 0.5 { "PASS" } else { "FAIL" }
    )?;

    // Stage 3: 1000-tenant cold start. A handful of distinct small
    // snapshots fan out round-robin as 1000 tenants; LOAD parses and
    // indexes the artifact, the first QUERY promotes the tenant to a
    // published DispatchIndex.
    let mut cold_paths = Vec::new();
    let mut cold_probe = Vec::new();
    for i in 0..COLD_SNAPSHOTS {
        let family = families::chain(40 + i, Some(4));
        let path = dir.file(&format!("cold{i}.snap"));
        Snapshot::compile(&family)
            .write_to(&path)
            .map_err(io::Error::other)?;
        let t = SnapshotTable::load(&path).map_err(io::Error::other)?;
        let probe = live_probes(&t)
            .into_iter()
            .next()
            .ok_or_else(|| io::Error::other("cold family has no live pairs"))?;
        cold_paths.push(path);
        cold_probe.push(probe);
    }
    let t_load = Instant::now();
    for i in 0..COLD_TENANTS {
        client
            .load(
                &format!("cold{i}"),
                cold_paths[i % COLD_SNAPSHOTS].to_str().unwrap(),
            )
            .map_err(|e| io::Error::other(e.to_string()))?;
    }
    let load_secs = t_load.elapsed().as_secs_f64();
    let t_promote = Instant::now();
    for i in 0..COLD_TENANTS {
        let (class, member) = &cold_probe[i % COLD_SNAPSHOTS];
        client
            .query(&format!("cold{i}"), class, member)
            .map_err(|e| io::Error::other(e.to_string()))?;
    }
    let promote_secs = t_promote.elapsed().as_secs_f64();
    let tenants = client
        .hello()
        .map_err(|e| io::Error::other(e.to_string()))?;
    if tenants as usize != COLD_TENANTS + 1 {
        return Err(io::Error::other(format!(
            "expected {} tenants after cold start, server reports {tenants}",
            COLD_TENANTS + 1
        )));
    }
    let load_rate = COLD_TENANTS as f64 / load_secs.max(1e-9);
    let promote_rate = COLD_TENANTS as f64 / promote_secs.max(1e-9);
    writeln!(
        w,
        "  cold start: {COLD_TENANTS} tenants over {COLD_SNAPSHOTS} snapshots — \
         LOAD {load_rate:.0}/s, first-query promotion {promote_rate:.0}/s"
    )?;

    let json = format!(
        "{{\n  \"experiment\": \"e23\",\n  {},\n  \"differential_pairs\": {},\n  \
         \"levels\": [\n{}\n  ],\n  \
         \"qps_8_vs_1\": {scaling:.3},\n  \
         \"cold_start\": {{\"tenants\": {COLD_TENANTS}, \"snapshots\": {COLD_SNAPSHOTS}, \
         \"load_per_s\": {load_rate:.0}, \"promote_per_s\": {promote_rate:.0}}}\n}}\n",
        host_context_json(32),
        probes.len(),
        json_levels.join(",\n")
    );
    std::fs::write("BENCH_e23.json", json)?;
    writeln!(w, "  wrote BENCH_e23.json")?;
    Ok(())
}

/// E23's CI guard: a full wire session (LOAD → QUERY → BATCH → EDIT →
/// STATS → METRICS) against an in-process server with every answer
/// checked, the HTTP admin endpoint probed over raw TCP, and a short
/// closed-loop load run held to an absolute QPS floor — plus, when a
/// committed `BENCH_e23.json` exists, a no-regression floor at 0.05x
/// the recorded 8-connection QPS.
fn e23_smoke(w: &mut dyn Write) -> io::Result<()> {
    use std::io::Read as _;
    use std::time::Duration;

    use cpplookup_core::DispatchIndex;
    use cpplookup_server::cli::live_probes;
    use cpplookup_server::loadgen::{self, LoadConfig, TenantTarget};
    use cpplookup_server::{Client, Server, ServerConfig};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    writeln!(w, "E23-smoke: wire session + admin endpoint + QPS floor")?;
    let dir = BenchDir::new("e23-smoke")?;
    let chg = families::interface_heavy(100, 4);
    let snap_path = dir.file("smoke.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let table = SnapshotTable::load(&snap_path).map_err(io::Error::other)?;
    let index = DispatchIndex::from_backend(&table);
    let probes = live_probes(&table);

    let io_model = io_model_from_env();
    writeln!(w, "  io-model: {}", io_model.label())?;
    let server = Server::start(ServerConfig {
        io_model,
        ..ServerConfig::default()
    })?;
    let addr = server.addr().to_string();
    let mut client = Client::connect(addr.as_str(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let wire = |e: cpplookup_server::client::ClientError| io::Error::other(e.to_string());

    let (entries, _) = client
        .load("t0", snap_path.to_str().unwrap())
        .map_err(wire)?;
    if entries == 0 {
        return Err(io::Error::other("LOAD reported zero entries"));
    }
    let answers = client.batch("t0", &probes).map_err(wire)?;
    for ((class, member), got) in probes.iter().zip(&answers) {
        let c = table.class_by_name(class).unwrap();
        let m = table.member_by_name(member).unwrap();
        if *got != wire_of(&table, &index.lookup(c, m)) {
            return Err(io::Error::other(format!(
                "wire batch diverges from in-process index at ({class}, {member})"
            )));
        }
    }
    let (class, member) = &probes[0];
    if client.query("t0", class, member).map_err(wire)? != answers[0] {
        return Err(io::Error::other("point query disagrees with batch"));
    }
    let epoch = client
        .edit("t0", &format!("member {class} zz_e23_probe"))
        .map_err(wire)?;
    if epoch < 2 {
        return Err(io::Error::other(format!(
            "first edit published epoch {epoch}, expected >= 2"
        )));
    }
    let fresh = client.query("t0", class, "zz_e23_probe").map_err(wire)?;
    if !matches!(fresh, cpplookup_server::WireOutcome::Resolved { .. }) {
        return Err(io::Error::other(format!(
            "edited member did not resolve: {fresh:?}"
        )));
    }
    let stats = client.stats("t0").map_err(wire)?;
    if !stats.contains("\"epoch\"") {
        return Err(io::Error::other(format!("stats missing epoch: {stats}")));
    }
    writeln!(
        w,
        "  session: LOAD {entries} entries, {} probes verified, edit -> epoch {epoch}",
        probes.len()
    )?;

    // The admin endpoint shares the binary-protocol port; a plain HTTP
    // GET must come back as Prometheus text.
    let mut http = std::net::TcpStream::connect(&addr)?;
    http.set_read_timeout(Some(Duration::from_secs(10)))?;
    std::io::Write::write_all(&mut http, b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")?;
    let mut body = String::new();
    http.read_to_string(&mut body)?;
    if !body.contains(" 200 OK") || !body.contains("server_requests_total") {
        return Err(io::Error::other(format!(
            "admin endpoint did not serve Prometheus metrics: {}",
            &body[..body.len().min(200)]
        )));
    }
    writeln!(w, "  admin: GET /metrics -> 200, Prometheus text")?;

    let report = loadgen::run(
        &LoadConfig {
            addr: addr.clone(),
            connections: 2,
            duration: Duration::from_millis(400),
            ..LoadConfig::default()
        },
        &[TenantTarget {
            name: "t0".to_owned(),
            probes,
        }],
    )?;
    if report.errors > 0 {
        return Err(io::Error::other(format!(
            "{} load errors during smoke run",
            report.errors
        )));
    }
    let qps = report.qps();
    let mut floor: f64 = 1000.0;
    let mut baseline_note = "no BENCH_e23.json baseline".to_owned();
    if let Ok(baseline) = std::fs::read_to_string("BENCH_e23.json") {
        if let Some(recorded) = baseline
            .find("\"connections\": 8")
            .and_then(|at| json_f64(&baseline[at..], "qps"))
        {
            floor = floor.max(recorded * 0.05);
            baseline_note = format!("0.05x recorded 8-connection QPS {recorded:.0}");
        }
    }
    writeln!(
        w,
        "  load: {qps:.0} qps closed-loop over 2 connections (floor {floor:.0}, {baseline_note})"
    )?;
    if qps < floor {
        return Err(io::Error::other(format!(
            "smoke QPS {qps:.0} fell below the floor {floor:.0}"
        )));
    }
    writeln!(w, "  guard: PASS")?;
    Ok(())
}

/// E24 — observability overhead and attribution on the wire path,
/// extending E19's obs-on/obs-off methodology from the engine to the
/// server:
///
/// 1. **Overhead A/B** — the same closed-loop load against two
///    in-process servers, observability layer on (per-tenant families
///    plus flight recorder) vs off (the PR-6 request loop),
///    interleaved in rounds so clock drift and cache state hit both
///    sides equally. Target: ≤5% QPS overhead with tracing off.
/// 2. **Span attribution** — traced queries and batches: the span
///    tree's *structure* (ids, parents, labels) must be identical
///    across repeated requests and across connections (durations are
///    measurements, never stable), and the child phases must sum to
///    the root span exactly.
/// 3. **Admin endpoints** — `/healthz`, `/tenants`, `/flightrecorder`
///    verified end-to-end against a live server whose slow threshold
///    is zero, so the slow log path is exercised too.
///
/// Emits `BENCH_e24.json` (with host context) for the CI gate
/// (`e24-smoke`).
fn e24(w: &mut dyn Write) -> io::Result<()> {
    use std::io::Read as _;
    use std::time::Duration;

    use cpplookup_server::cli::live_probes;
    use cpplookup_server::loadgen::{self, LoadConfig, TenantTarget};
    use cpplookup_server::{Client, ObsConfig, Server, ServerConfig};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    const CONNS: usize = 4;
    const ROUNDS: usize = 3;
    const ROUND_MS: u64 = 700;

    writeln!(w, "E24: wire-path observability overhead and attribution")?;
    let dir = BenchDir::new("e24")?;
    let chg = random_hierarchy(&RandomConfig::realistic(2000, 7));
    let snap_path = dir.file("main.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let table = SnapshotTable::load(&snap_path).map_err(io::Error::other)?;
    let probes = live_probes(&table);
    let wire = |e: cpplookup_server::client::ClientError| io::Error::other(e.to_string());

    let start_server = |obs: ObsConfig| -> io::Result<(Server, String)> {
        let server = Server::start(ServerConfig {
            preload: vec![("t0".to_owned(), snap_path.clone())],
            obs,
            ..ServerConfig::default()
        })?;
        let addr = server.addr().to_string();
        Ok((server, addr))
    };
    let (on_server, on_addr) = start_server(ObsConfig::default())?;
    let (off_server, off_addr) = start_server(ObsConfig {
        enabled: false,
        ..ObsConfig::default()
    })?;
    let _keep = (&on_server, &off_server);
    let targets = [TenantTarget {
        name: "t0".to_owned(),
        probes: probes.clone(),
    }];
    let drive = |addr: &str| -> io::Result<(u64, f64)> {
        let report = loadgen::run(
            &LoadConfig {
                addr: addr.to_owned(),
                connections: CONNS,
                duration: Duration::from_millis(ROUND_MS),
                ..LoadConfig::default()
            },
            &targets,
        )?;
        if report.errors > 0 {
            return Err(io::Error::other(format!("{} load errors", report.errors)));
        }
        Ok((report.requests, report.elapsed.as_secs_f64()))
    };
    // Warm both promotion paths before measuring.
    drive(&on_addr)?;
    drive(&off_addr)?;

    // Stage 1: interleaved A/B rounds, tracing off on both sides.
    let (mut req_on, mut secs_on) = (0u64, 0f64);
    let (mut req_off, mut secs_off) = (0u64, 0f64);
    for _ in 0..ROUNDS {
        let (r, s) = drive(&off_addr)?;
        req_off += r;
        secs_off += s;
        let (r, s) = drive(&on_addr)?;
        req_on += r;
        secs_on += s;
    }
    let qps_on = req_on as f64 / secs_on.max(1e-9);
    let qps_off = req_off as f64 / secs_off.max(1e-9);
    let overhead = 1.0 - qps_on / qps_off.max(f64::MIN_POSITIVE);
    writeln!(
        w,
        "  overhead A/B ({ROUNDS} interleaved rounds, {CONNS} connections, tracing off):"
    )?;
    writeln!(w, "  obs layer off: {qps_off:>8.0} qps (PR-6 request loop)")?;
    writeln!(
        w,
        "  obs layer on:  {qps_on:>8.0} qps (per-tenant families + flight recorder)"
    )?;
    writeln!(
        w,
        "  target <=5% overhead with tracing off: {} ({:+.1}%)",
        if overhead <= 0.05 { "PASS" } else { "FAIL" },
        overhead * 100.0
    )?;

    // Stage 2: span structure stability and exact attribution.
    let shape = |spans: &[cpplookup_server::WireSpan]| -> Vec<(u64, u64, String)> {
        spans
            .iter()
            .map(|s| (s.id, s.parent, s.label.clone()))
            .collect()
    };
    let check_partition = |spans: &[cpplookup_server::WireSpan]| -> io::Result<()> {
        let root = &spans[0];
        let children_ns: u64 = spans[1..].iter().map(|s| s.duration_ns).sum();
        if children_ns != root.duration_ns {
            return Err(io::Error::other(format!(
                "phases sum {children_ns} != root {} — partition must be exact",
                root.duration_ns
            )));
        }
        Ok(())
    };
    let mut c1 = Client::connect(on_addr.as_str(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let mut c2 = Client::connect(on_addr.as_str(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let (class, member) = &probes[0];
    let (_, first) = c1.query_traced("t0", class, member).map_err(wire)?;
    let reference = shape(&first);
    check_partition(&first)?;
    for _ in 0..32 {
        let (_, again) = c1.query_traced("t0", class, member).map_err(wire)?;
        let (_, other) = c2.query_traced("t0", class, member).map_err(wire)?;
        check_partition(&again)?;
        check_partition(&other)?;
        if shape(&again) != reference || shape(&other) != reference {
            return Err(io::Error::other(
                "span tree structure varied across runs/connections",
            ));
        }
    }
    let (_, bspans) = c1
        .batch_traced("t0", &probes[..probes.len().min(64)])
        .map_err(wire)?;
    check_partition(&bspans)?;
    if shape(&bspans) != reference {
        return Err(io::Error::other("batch span structure diverged from query"));
    }
    writeln!(
        w,
        "  spans: {} spans/trace, structure byte-stable over 65 traces x 2 connections, \
         phases sum to root exactly",
        reference.len()
    )?;

    // Stage 3: admin endpoints against a live server with slow
    // threshold zero, so the traced queries above also exercised the
    // slow log. Reuse the obs-on server: reconfigure via a fresh one.
    let (admin_server, admin_addr) = start_server(ObsConfig {
        slow_threshold: Duration::from_millis(0),
        ..ObsConfig::default()
    })?;
    let _keep2 = &admin_server;
    let mut ca = Client::connect(admin_addr.as_str(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    ca.query_traced("t0", class, member).map_err(wire)?;
    ca.query("t0", class, member).map_err(wire)?;
    let http_get = |addr: &str, target: &str| -> io::Result<String> {
        let mut s = std::net::TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(10)))?;
        std::io::Write::write_all(
            &mut s,
            format!("GET {target} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes(),
        )?;
        let mut body = String::new();
        s.read_to_string(&mut body)?;
        Ok(body)
    };
    let health = http_get(&admin_addr, "/healthz")?;
    if !health.contains(" 200 OK") {
        return Err(io::Error::other(format!("/healthz failed: {health}")));
    }
    let tenants = http_get(&admin_addr, "/tenants")?;
    if !tenants.contains("\"tenant\":\"t0\"") || !tenants.contains("\"promoted\":true") {
        return Err(io::Error::other(format!("/tenants wrong: {tenants}")));
    }
    let fr = http_get(&admin_addr, "/flightrecorder")?;
    if !fr.contains("\"op\":\"query\"") || !fr.contains("\"tree\":[") {
        return Err(io::Error::other(format!(
            "/flightrecorder missing entries or slow trees: {}",
            &fr[..fr.len().min(300)]
        )));
    }
    writeln!(
        w,
        "  admin: /healthz 200, /tenants lists t0 promoted, /flightrecorder has \
         entries + slow span trees"
    )?;

    let json = format!(
        "{{\n  \"experiment\": \"e24\",\n  {},\n  \
         \"connections\": {CONNS},\n  \"rounds\": {ROUNDS},\n  \
         \"obs_off_qps\": {qps_off:.0},\n  \"obs_on_qps\": {qps_on:.0},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \
         \"spans_per_trace\": {},\n  \"span_structure_stable\": true,\n  \
         \"admin_endpoints_verified\": true\n}}\n",
        host_context_json(CONNS),
        reference.len(),
    );
    std::fs::write("BENCH_e24.json", json)?;
    writeln!(w, "  wrote BENCH_e24.json")?;
    Ok(())
}

/// E24's CI gate: one full wire session with `--trace` semantics — a
/// traced query whose span tree must be non-empty, carry the six
/// expected phases, and partition the root exactly — plus a traced
/// load run, and a tracing-off QPS guard. The guard is an *in-run*
/// A/B against an obs-off server measured in the same process seconds
/// apart (a recorded cross-machine baseline would make a QPS floor
/// pure noise; the absolute floor and the recorded-E23 sanity floor
/// from `e23-smoke` still apply underneath). The floor is 90% rather
/// than the 95% design target: short CI rounds on a small shared
/// runner swing ±6% run to run, and 95% false-fails on noise alone —
/// E24 proper measures the real overhead against the 5% target.
fn e24_smoke(w: &mut dyn Write) -> io::Result<()> {
    use std::time::Duration;

    use cpplookup_server::cli::live_probes;
    use cpplookup_server::loadgen::{self, LoadConfig, TenantTarget};
    use cpplookup_server::{Client, ObsConfig, Server, ServerConfig};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    const PHASES: [&str; 6] = [
        "queue_wait",
        "frame_decode",
        "tenant_resolve",
        "promotion_wait",
        "directory_probe",
        "encode",
    ];

    writeln!(w, "E24-smoke: traced wire session + obs overhead guard")?;
    let dir = BenchDir::new("e24-smoke")?;
    let chg = families::interface_heavy(100, 4);
    let snap_path = dir.file("smoke.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let table = SnapshotTable::load(&snap_path).map_err(io::Error::other)?;
    let probes = live_probes(&table);
    let wire = |e: cpplookup_server::client::ClientError| io::Error::other(e.to_string());

    let io_model = io_model_from_env();
    writeln!(w, "  io-model: {}", io_model.label())?;
    let start = |enabled: bool| -> io::Result<(Server, String)> {
        let server = Server::start(ServerConfig {
            preload: vec![("t0".to_owned(), snap_path.clone())],
            obs: ObsConfig {
                enabled,
                ..ObsConfig::default()
            },
            io_model,
            ..ServerConfig::default()
        })?;
        let addr = server.addr().to_string();
        Ok((server, addr))
    };
    let (_on, on_addr) = start(true)?;
    let (_off, off_addr) = start(false)?;

    // 1. Traced query: non-empty span tree, the six phases in order,
    //    durations summing to the root exactly.
    let mut client = Client::connect(on_addr.as_str(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let (class, member) = &probes[0];
    let (_, spans) = client.query_traced("t0", class, member).map_err(wire)?;
    if spans.len() != 1 + PHASES.len() {
        return Err(io::Error::other(format!(
            "expected root + {} phases, got {} spans",
            PHASES.len(),
            spans.len()
        )));
    }
    let mut sum = 0u64;
    for (s, want) in spans[1..].iter().zip(PHASES) {
        if s.label != want {
            return Err(io::Error::other(format!(
                "phase `{}` where `{want}` expected",
                s.label
            )));
        }
        if s.parent != spans[0].id {
            return Err(io::Error::other("phase not parented to the root span"));
        }
        sum += s.duration_ns;
    }
    if sum != spans[0].duration_ns {
        return Err(io::Error::other(format!(
            "phase durations sum to {sum}, root is {} — partition must be exact",
            spans[0].duration_ns
        )));
    }
    writeln!(
        w,
        "  trace: {} spans, phases sum to root ({} ns) exactly",
        spans.len(),
        spans[0].duration_ns
    )?;

    // 2. A traced load run aggregates attribution.
    let targets = [TenantTarget {
        name: "t0".to_owned(),
        probes: probes.clone(),
    }];
    let traced = loadgen::run(
        &LoadConfig {
            addr: on_addr.clone(),
            connections: 2,
            duration: Duration::from_millis(300),
            trace: true,
            ..LoadConfig::default()
        },
        &targets,
    )?;
    if traced.traced == 0 || traced.phases.len() != PHASES.len() {
        return Err(io::Error::other(format!(
            "traced load run attributed {} requests over {} phases",
            traced.traced,
            traced.phases.len()
        )));
    }
    writeln!(
        w,
        "  traced load: {} requests attributed over {} phases",
        traced.traced,
        traced.phases.len()
    )?;

    // 3. Tracing-off overhead guard: obs-on vs obs-off, interleaved in
    //    the same process.
    let drive = |addr: &str| -> io::Result<(u64, f64)> {
        let report = loadgen::run(
            &LoadConfig {
                addr: addr.to_owned(),
                connections: 2,
                duration: Duration::from_millis(400),
                ..LoadConfig::default()
            },
            &targets,
        )?;
        if report.errors > 0 {
            return Err(io::Error::other(format!("{} load errors", report.errors)));
        }
        Ok((report.requests, report.elapsed.as_secs_f64()))
    };
    drive(&on_addr)?; // warm
    drive(&off_addr)?;
    // A genuine regression slows *every* round; a scheduler hiccup on a
    // shared runner hits one. Gate on the best round's ratio.
    let mut best = 0f64;
    let mut rounds = Vec::new();
    for _ in 0..3 {
        let (r_off, s_off) = drive(&off_addr)?;
        let (r_on, s_on) = drive(&on_addr)?;
        let qps_off = r_off as f64 / s_off.max(1e-9);
        let qps_on = r_on as f64 / s_on.max(1e-9);
        best = best.max(qps_on / qps_off.max(f64::MIN_POSITIVE));
        rounds.push(format!("{qps_on:.0}/{qps_off:.0}"));
    }
    writeln!(
        w,
        "  overhead guard: obs-on/obs-off qps per round [{}], best ratio {best:.3} \
         (floor 0.90)",
        rounds.join(", ")
    )?;
    if best < 0.90 {
        return Err(io::Error::other(format!(
            "obs layer costs more than 10% in every round (best ratio {best:.3})"
        )));
    }
    writeln!(w, "  guard: PASS")?;
    Ok(())
}

/// E25 — the durable edit log and follower replication: end-to-end
/// replication lag over the wire at three edit-burst sizes, then
/// restart-recovery time as a function of log length, before and after
/// checkpoint compaction. Emits `BENCH_e25.json` for the CI gate
/// (`e25-smoke`).
fn e25(w: &mut dyn Write) -> io::Result<()> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use cpplookup_server::{
        Client, Farm, FarmOptions, FollowSource, Follower, FollowerConfig, Server, ServerConfig,
    };
    use cpplookup_snapshot::Snapshot;
    use cpplookup_wal::WalStore;

    const BURSTS: [usize; 3] = [1, 32, 256];
    const REPEATS: usize = 5;
    const LOG_LENS: [usize; 3] = [256, 1024, 4096];

    writeln!(w, "E25: edit-log replication lag and recovery time")?;
    let dir = BenchDir::new("e25")?;
    let chg = families::chain(64, None);
    let class_names: Vec<String> = chg
        .classes()
        .map(|c| chg.class_name(c).to_owned())
        .collect();
    let snap_path = dir.file("t.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let wire = |e: cpplookup_server::client::ClientError| io::Error::other(e.to_string());

    // Stage 1: wire replication lag. A leader server with a durable
    // log, a follower subscribed over the wire; each sample appends a
    // burst of accepted edits and times the follower's convergence to
    // the leader's last sequence number.
    let leader = Server::start(ServerConfig {
        preload: vec![("t".to_owned(), snap_path.clone())],
        wal_path: Some(dir.file("leader.wal")),
        fsync_every: 1,
        retain_epochs: 4,
        ..ServerConfig::default()
    })?;
    let replica = Arc::new(Farm::with_options(FarmOptions {
        read_only: true,
        retain_epochs: 4,
        ..FarmOptions::default()
    }));
    let follower = Follower::start(
        Arc::clone(&replica),
        FollowerConfig {
            source: FollowSource::Wire(leader.addr().to_string()),
            follower_id: "e25".to_owned(),
            ..FollowerConfig::default()
        },
    );
    let mut client = Client::connect(leader.addr(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let mut edit_no = 0usize;
    let mut lag_rows = Vec::new();
    writeln!(w, "  wire replication lag (median of {REPEATS} bursts):")?;
    for burst in BURSTS {
        let mut lags = Vec::new();
        for _ in 0..REPEATS {
            for _ in 0..burst {
                let class = &class_names[edit_no % class_names.len()];
                client
                    .edit("t", &format!("member {class} e25m{edit_no}"))
                    .map_err(wire)?;
                edit_no += 1;
            }
            let target = leader.farm().wal().expect("leader has a log").last_seq();
            let t0 = Instant::now();
            if !follower.wait_for_seq(target, Duration::from_secs(30)) {
                return Err(io::Error::other(format!(
                    "follower stalled at seq {} of {target}",
                    follower.applied_seq()
                )));
            }
            lags.push(t0.elapsed());
        }
        lags.sort();
        let median = lags[lags.len() / 2];
        writeln!(
            w,
            "  burst {burst:>4} edits: converged in {:>10} ({:>8}/edit)",
            fmt_duration(median),
            fmt_duration(median / burst as u32),
        )?;
        lag_rows.push(format!(
            "{{\"burst\": {burst}, \"median_lag_ns\": {}}}",
            median.as_nanos()
        ));
    }
    follower.stop();
    drop(client);
    drop(leader);

    // Stage 2: restart recovery vs log length, then the same log after
    // checkpoint compaction. Replay is the farm-level path a booting
    // server runs before its first connection.
    writeln!(w, "  restart recovery vs log length:")?;
    writeln!(
        w,
        "  {:>8} {:>10} {:>12} {:>12} | {:>6} {:>12}",
        "records", "log bytes", "replay", "rate", "after", "replay"
    )?;
    let mut recovery_rows = Vec::new();
    for log_len in LOG_LENS {
        let wal_path = dir.file(&format!("len{log_len}.wal"));
        {
            let (store, _) = WalStore::open(&wal_path, 0).map_err(io::Error::other)?;
            let farm = Farm::with_options(FarmOptions {
                wal: Some(Arc::new(store)),
                ..FarmOptions::default()
            });
            farm.load("t", &snap_path)
                .map_err(|(_, m)| io::Error::other(m))?;
            for i in 0..log_len {
                let class = &class_names[i % class_names.len()];
                farm.edit("t", &format!("member {class} r{i}"))
                    .map_err(|(_, m)| io::Error::other(m))?;
            }
            farm.wal().unwrap().sync()?;
        }
        let log_bytes = std::fs::metadata(&wal_path)?.len();
        let replay = |path: &std::path::Path| -> io::Result<(usize, Duration)> {
            let t0 = Instant::now();
            let (store, recovered) = WalStore::open(path, 0).map_err(io::Error::other)?;
            let farm = Farm::with_options(FarmOptions {
                wal: Some(Arc::new(store)),
                ..FarmOptions::default()
            });
            for stamped in &recovered {
                farm.apply_replica_record(&stamped.record)
                    .map_err(|(_, m)| io::Error::other(m))?;
            }
            Ok((recovered.len(), t0.elapsed()))
        };
        let (records, cold) = replay(&wal_path)?;
        let rate = records as f64 / cold.as_secs_f64().max(1e-9);

        // Compact: fold the whole history into one checkpoint snapshot.
        {
            let (store, recovered) = WalStore::open(&wal_path, 0).map_err(io::Error::other)?;
            let farm = Farm::with_options(FarmOptions {
                wal: Some(Arc::new(store)),
                ..FarmOptions::default()
            });
            for stamped in &recovered {
                farm.apply_replica_record(&stamped.record)
                    .map_err(|(_, m)| io::Error::other(m))?;
            }
            farm.compact_wal(&dir.file(&format!("ckpt{log_len}")))
                .map_err(|(_, m)| io::Error::other(m))?;
        }
        let (compacted_records, warm) = replay(&wal_path)?;
        writeln!(
            w,
            "  {records:>8} {log_bytes:>10} {:>12} {rate:>9.0}/s | {compacted_records:>6} {:>12}",
            fmt_duration(cold),
            fmt_duration(warm),
        )?;
        recovery_rows.push(format!(
            "{{\"records\": {records}, \"log_bytes\": {log_bytes}, \
             \"replay_ns\": {}, \"compacted_records\": {compacted_records}, \
             \"compacted_replay_ns\": {}}}",
            cold.as_nanos(),
            warm.as_nanos()
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"e25\",\n  {},\n  \
         \"lag\": [{}],\n  \"recovery\": [{}]\n}}\n",
        host_context_json(1),
        lag_rows.join(", "),
        recovery_rows.join(", "),
    );
    std::fs::write("BENCH_e25.json", json)?;
    writeln!(w, "  wrote BENCH_e25.json")?;
    Ok(())
}

/// E25's CI gate, three checks deep:
///
/// 1. **Crash recovery** — a scripted log truncated at *every* byte
///    boundary must recover a clean prefix of its records (the
///    reduced, deterministic core of `tests/wal_proptests.rs`).
/// 2. **Leader/follower differential** — a wire follower must converge
///    to the leader's exact sequence number and then answer every
///    probe byte-identically at identical epochs, rejected edits and
///    time-travel reads included.
/// 3. **Lag sanity** — convergence of a small burst must land inside a
///    generous wall-clock bound (30s); a wedged subscription or a
///    follower spinning on a poisoned record fails here, actual
///    latency is E25 proper's business.
fn e25_smoke(w: &mut dyn Write) -> io::Result<()> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use cpplookup_server::{
        Client, Farm, FollowSource, Follower, FollowerConfig, Server, ServerConfig,
    };
    use cpplookup_snapshot::Snapshot;
    use cpplookup_wal::{read_all, recover_bytes, WalStore};

    writeln!(
        w,
        "E25-smoke: crash recovery + leader/follower differential"
    )?;
    let dir = BenchDir::new("e25-smoke")?;
    let chg = families::interface_heavy(12, 3);
    let snap_path = dir.file("t.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let class_names: Vec<String> = chg
        .classes()
        .map(|c| chg.class_name(c).to_owned())
        .collect();
    let wire = |e: cpplookup_server::client::ClientError| io::Error::other(e.to_string());

    // 1. Every-byte-boundary crash recovery on a scripted log.
    let wal_path = dir.file("crash.wal");
    {
        let (store, _) = WalStore::open(&wal_path, 1).map_err(io::Error::other)?;
        let farm = Farm::with_options(cpplookup_server::FarmOptions {
            wal: Some(Arc::new(store)),
            ..Default::default()
        });
        farm.load("t", &snap_path)
            .map_err(|(_, m)| io::Error::other(m))?;
        for i in 0..12 {
            let class = &class_names[i % class_names.len()];
            farm.edit("t", &format!("member {class} s{i}"))
                .map_err(|(_, m)| io::Error::other(m))?;
        }
    }
    let records = read_all(&wal_path).map_err(io::Error::other)?;
    let bytes = std::fs::read(&wal_path)?;
    for at in 0..=bytes.len() {
        let recovery = recover_bytes(&bytes[..at]);
        if recovery.records.len() > records.len()
            || recovery.records[..] != records[..recovery.records.len()]
        {
            return Err(io::Error::other(format!(
                "cut at byte {at}: recovery is not a clean record prefix"
            )));
        }
    }
    writeln!(
        w,
        "  crash recovery: {} records, every one of {} byte boundaries recovers a clean prefix",
        records.len(),
        bytes.len() + 1
    )?;

    // 2 + 3. Wire differential with a lag bound.
    let leader = Server::start(ServerConfig {
        preload: vec![("t".to_owned(), snap_path.clone())],
        wal_path: Some(dir.file("leader.wal")),
        retain_epochs: 4,
        ..ServerConfig::default()
    })?;
    let follower_srv = Server::start(ServerConfig {
        read_only: true,
        retain_epochs: 4,
        ..ServerConfig::default()
    })?;
    let follower = Follower::start(
        Arc::clone(follower_srv.farm()),
        FollowerConfig {
            source: FollowSource::Wire(leader.addr().to_string()),
            follower_id: "smoke".to_owned(),
            ack_every: 4,
            ..FollowerConfig::default()
        },
    );
    let mut lc = Client::connect(leader.addr(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    for i in 0..24 {
        let class = &class_names[i % class_names.len()];
        lc.edit("t", &format!("member {class} w{i}"))
            .map_err(wire)?;
    }
    if lc.edit("t", "no such directive").is_ok() {
        return Err(io::Error::other("gibberish edit was accepted"));
    }
    let target = leader.farm().wal().expect("leader has a log").last_seq();
    let t0 = Instant::now();
    if !follower.wait_for_seq(target, Duration::from_secs(30)) {
        return Err(io::Error::other(format!(
            "lag bound: follower stalled at seq {} of {target}",
            follower.applied_seq()
        )));
    }
    let lag = t0.elapsed();

    let mut fc = Client::connect(follower_srv.addr(), Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    // The oldest epoch still inside the retention window: the
    // time-travel target both sides must agree on.
    let as_of = leader
        .farm()
        .retained_epochs("t")
        .map_err(|(_, m)| io::Error::other(m))?
        .first()
        .copied();
    let mut compared = 0usize;
    for class in &class_names {
        for i in [0usize, 11, 23] {
            let member = format!("w{i}");
            let on_leader = lc.query("t", class, &member).map_err(wire)?;
            let on_follower = fc.query("t", class, &member).map_err(wire)?;
            if on_leader != on_follower {
                return Err(io::Error::other(format!(
                    "differential: `{class}::{member}` is {on_leader:?} on the leader \
                     but {on_follower:?} on the follower"
                )));
            }
            let epoch = as_of.expect("retained window is never empty");
            let then_leader = lc
                .query_at("t", class, &member, Some(epoch))
                .map_err(wire)?;
            let then_follower = fc
                .query_at("t", class, &member, Some(epoch))
                .map_err(wire)?;
            if then_leader != then_follower {
                return Err(io::Error::other(format!(
                    "differential at epoch {epoch}: `{class}::{member}` diverged"
                )));
            }
            compared += 2;
        }
    }
    let leader_epochs = leader
        .farm()
        .retained_epochs("t")
        .map_err(|(_, m)| io::Error::other(m))?;
    let follower_epochs = follower_srv
        .farm()
        .retained_epochs("t")
        .map_err(|(_, m)| io::Error::other(m))?;
    if leader_epochs != follower_epochs {
        return Err(io::Error::other(format!(
            "epoch divergence: leader retains {leader_epochs:?}, follower {follower_epochs:?}"
        )));
    }
    follower.stop();
    writeln!(
        w,
        "  differential: {compared} probes byte-identical (current + epoch {}), \
         epochs {:?} on both sides, burst converged in {}",
        as_of.unwrap(),
        leader_epochs,
        fmt_duration(lag)
    )?;
    writeln!(w, "  guard: PASS")?;
    Ok(())
}

/// E26 — the minimal perfect hash probe directory against the
/// open-addressed directory it replaced, plus the SWAR batch path.
///
/// Four measurements per family, on shuffled live-pair probe streams
/// with cross-directory checksums verified before any number is
/// reported:
///
/// 1. **Serve-path race** (the headline) — the new BATCH serve path
///    (`lookup_batch_into` over 256-probe chunks, reused buffer, MPH
///    directory) against the serve path it replaced: a per-probe
///    *owned* `lookup` loop over the open-addressed directory (one
///    owned outcome, witness `Vec` clones and per-call obs hooks
///    included, per probe — exactly what the server's BATCH handler
///    ran before this change, and what a v1 snapshot still runs).
/// 2. **Batch isolation** — the same batch path against the owned
///    loop *on the MPH directory*, so the ratio isolates the batch
///    rewrite from the directory swap.
/// 3. **Directory race** (context, no target) — single-thread
///    ns/lookup through `lookup_ref`, open vs MPH. The MPH probe is
///    one displacement read plus exactly one data-dependent cell
///    line, but pays ~4 serial multiplies against open addressing's
///    one; it wins once the open table outgrows cache (collision
///    chains start missing lines) and loses on cache-resident
///    families. Reported honestly either way — the serving win is
///    the batch path plus roughly halved directory bytes.
/// 4. **Thread scaling** — aggregate MPH lookup throughput from 1 to
///    32 threads on the largest family; the shared directory is
///    read-only, so scaling should track cores until memory bandwidth
///    (on a single-core host the curve is honestly flat).
///
/// Emits `BENCH_e26.json` (with host context) for the CI gate
/// (`e26-smoke`).
fn e26(w: &mut dyn Write) -> io::Result<()> {
    use cpplookup_core::{DirectoryKind, DispatchIndex};

    const CHUNK: usize = 256;
    const THREAD_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];
    writeln!(
        w,
        "E26: minimal perfect hash directory + SWAR batch serve path"
    )?;
    writeln!(
        w,
        "  open = open-addressed directory (the v1-snapshot fallback); mph = CHD \
         displacement directory (the serving default); owned = per-probe owned \
         lookup loop (the serve path the BATCH handler used to run, measured on \
         the open directory); batch = lookup_batch_into over {CHUNK}-probe \
         chunks with a reused buffer on the mph directory (the serve path now)"
    )?;
    let families: Vec<(&str, Chg)> = vec![
        ("chain_2500", families::chain(2500, Some(16))),
        ("grid_50x50", families::grid(50, 50)),
        ("interface_500x4", families::interface_heavy(500, 4)),
        (
            "realistic_2000",
            random_hierarchy(&RandomConfig::realistic(2000, 7)),
        ),
        (
            "realistic_4000",
            random_hierarchy(&RandomConfig::realistic(4000, 7)),
        ),
    ];
    writeln!(w, "  single thread, ns/lookup:")?;
    writeln!(
        w,
        "  {:<16} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "family",
        "classes",
        "entries",
        "open",
        "mph",
        "dir gain",
        "owned",
        "batch",
        "batch gain",
        "serve gain"
    )?;
    let mut json_rows: Vec<String> = Vec::new();
    let mut dir_ratios: Vec<f64> = Vec::new();
    let mut batch_ratios: Vec<f64> = Vec::new();
    let mut serve_ratios: Vec<f64> = Vec::new();
    for (name, chg) in &families {
        let table = LookupTable::build(chg);
        let mph = DispatchIndex::from_table(LookupTable::build(chg));
        let open = mph.with_directory_kind(DirectoryKind::Open);
        let probes = serve_probes(chg, &table, 0xE26 ^ name.len() as u64);
        let reps = (2_000_000 / probes.len()).max(1);
        let lookups = (reps * probes.len()) as f64;

        let (ns_open, s_open) = serve_single(&probes, reps, |(c, m)| {
            outcome_ref_word(&open.lookup_ref(c, m))
        });
        let (ns_mph, s_mph) = serve_single(&probes, reps, |(c, m)| {
            outcome_ref_word(&mph.lookup_ref(c, m))
        });
        if s_open != s_mph {
            return Err(io::Error::other(format!(
                "{name}: open and mph directories disagreed on the serve sweep"
            )));
        }
        // The pre-batch serve path: one owned outcome per probe over
        // the open directory — what the BATCH handler ran before this
        // change, and what a v1 snapshot still serves today.
        let (ns_owned, s_owned) =
            serve_single(&probes, reps, |(c, m)| outcome_word(&open.lookup(c, m)));
        if s_owned != s_mph {
            return Err(io::Error::other(format!(
                "{name}: owned lookup (open) diverged from lookup_ref"
            )));
        }
        // The same owned loop on the mph directory, so the batch ratio
        // isolates the loop rewrite from the directory swap.
        let (ns_owned_mph, s_owned_mph) =
            serve_single(&probes, reps, |(c, m)| outcome_word(&mph.lookup(c, m)));
        if s_owned_mph != s_mph {
            return Err(io::Error::other(format!(
                "{name}: owned lookup (mph) diverged from lookup_ref"
            )));
        }
        let (t_batch, s_batch) = median_time(3, || {
            let mut out = Vec::new();
            let mut sum = 0u64;
            for _ in 0..reps {
                for chunk in probes.chunks(CHUNK) {
                    mph.lookup_batch_into(chunk, &mut out);
                    for o in &out {
                        sum = sum.wrapping_add(outcome_ref_word(o));
                    }
                }
            }
            sum
        });
        if s_batch != s_mph {
            return Err(io::Error::other(format!(
                "{name}: batch path diverged from lookup_ref"
            )));
        }
        let ns_batch = t_batch.as_secs_f64() * 1e9 / lookups;
        let dir_ratio = ns_open / ns_mph.max(f64::MIN_POSITIVE);
        let batch_ratio = ns_owned_mph / ns_batch.max(f64::MIN_POSITIVE);
        let serve_ratio = ns_owned / ns_batch.max(f64::MIN_POSITIVE);
        // The acceptance geomeans are over the ≥2000-class families;
        // smaller ones are printed for shape but not averaged in.
        if chg.class_count() >= 2000 {
            dir_ratios.push(dir_ratio);
            batch_ratios.push(batch_ratio);
            serve_ratios.push(serve_ratio);
        }
        writeln!(
            w,
            "  {:<16} {:>7} {:>8} {:>8.1} {:>8.1} {:>7.2}x {:>8.1} {:>8.1} {:>8.2}x {:>8.2}x",
            name,
            chg.class_count(),
            mph.entry_count(),
            ns_open,
            ns_mph,
            dir_ratio,
            ns_owned,
            ns_batch,
            batch_ratio,
            serve_ratio,
        )?;
        json_rows.push(format!(
            "    {{\"name\": \"{name}\", \"classes\": {}, \"entries\": {}, \
             \"single_ns\": {{\"open\": {ns_open:.2}, \"mph\": {ns_mph:.2}, \
             \"owned_open\": {ns_owned:.2}, \"owned_mph\": {ns_owned_mph:.2}, \
             \"batch\": {ns_batch:.2}}}, \
             \"mph_vs_open_single\": {dir_ratio:.3}, \
             \"batch_vs_owned\": {batch_ratio:.3}, \
             \"serve_path_vs_baseline\": {serve_ratio:.3}}}",
            chg.class_count(),
            mph.entry_count(),
        ));
    }
    // Thread scaling on the largest family, MPH directory.
    let (scale_name, scale_chg) = families.last().expect("families nonempty");
    let table = LookupTable::build(scale_chg);
    let mph = DispatchIndex::from_table(LookupTable::build(scale_chg));
    let probes = serve_probes(scale_chg, &table, 0xE26);
    let mt_reps = (500_000 / probes.len()).max(1);
    writeln!(
        w,
        "  thread scaling ({scale_name}, mph directory), aggregate Mlookups/s:"
    )?;
    let mut scale_rows: Vec<String> = Vec::new();
    let mut base_qps = f64::MIN_POSITIVE;
    for &threads in &THREAD_SWEEP {
        let (qps, _) = serve_mt(threads, &probes, mt_reps, |(c, m)| {
            outcome_ref_word(&mph.lookup_ref(c, m))
        });
        if threads == 1 {
            base_qps = qps;
        }
        writeln!(
            w,
            "    {threads:>2} threads: {:>8.2} M/s ({:.2}x over 1 thread)",
            qps / 1e6,
            qps / base_qps
        )?;
        scale_rows.push(format!(
            "    {{\"threads\": {threads}, \"qps\": {qps:.0}, \"speedup\": {:.3}}}",
            qps / base_qps
        ));
    }
    let geo = |rs: &[f64]| (rs.iter().map(|r| r.ln()).sum::<f64>() / rs.len() as f64).exp();
    let g_dir = geo(&dir_ratios);
    let g_batch = geo(&batch_ratios);
    let g_serve = geo(&serve_ratios);
    writeln!(
        w,
        "  target >=1.5x serve path (batch on mph) vs the open-addressed per-probe \
         loop it replaced, >=2000-class families (geomean): {} ({g_serve:.2}x)",
        if g_serve >= 1.5 { "PASS" } else { "FAIL" }
    )?;
    writeln!(
        w,
        "  target >=2x batch vs per-probe owned loop, same directory (geomean): {} ({g_batch:.2}x)",
        if g_batch >= 2.0 { "PASS" } else { "FAIL" }
    )?;
    writeln!(
        w,
        "  context (no target): mph vs open per-probe lookup_ref geomean {g_dir:.2}x \
         — the bare directory race; mph pays ~4 serial multiplies + a displacement \
         load per probe and wins only once the open table outgrows cache"
    )?;
    let json = format!(
        "{{\n  \"experiment\": \"e26\",\n  {},\n  \"families\": [\n{}\n  ],\n  \
         \"scaling\": {{\"family\": \"{scale_name}\", \"points\": [\n{}\n  ]}},\n  \
         \"geomean_mph_vs_open_single\": {g_dir:.3},\n  \
         \"geomean_batch_vs_owned\": {g_batch:.3},\n  \
         \"geomean_serve_path_vs_baseline\": {g_serve:.3}\n}}\n",
        host_context_json(*THREAD_SWEEP.last().expect("sweep nonempty")),
        json_rows.join(",\n"),
        scale_rows.join(",\n"),
    );
    std::fs::write("BENCH_e26.json", json)?;
    writeln!(w, "  wrote BENCH_e26.json")?;
    Ok(())
}

/// E26's CI gate, in three stages mirroring `e22-smoke`:
///
/// 1. **MPH/open differential** — every live pair *and* a dead-key
///    margin beyond the id ranges on an interface-heavy family, both
///    directories, single and batch paths. A wrong displacement, a
///    weak slot remix, or a missing key-compare all surface here.
/// 2. **Perf floor** — ≥1.2× single-thread serve path on
///    `grid_50x50`: the batched MPH path (`lookup_batch_into`, reused
///    buffer) against the per-probe owned `lookup` loop on the open
///    directory that the BATCH handler ran before this change.
/// 3. **No-regression** — when a committed `BENCH_e26.json` exists,
///    the measured ratio must stay above 0.4× the recorded
///    `grid_50x50` `serve_path_vs_baseline` ratio.
fn e26_smoke(w: &mut dyn Write) -> io::Result<()> {
    use cpplookup_core::{DirectoryKind, DispatchIndex};

    writeln!(w, "E26-smoke: mph/open differential + mph perf floor")?;
    let diff = families::interface_heavy(200, 4);
    let mph = DispatchIndex::from_table(LookupTable::build(&diff));
    if mph.directory_kind() != DirectoryKind::Mph {
        return Err(io::Error::other("from_table no longer defaults to mph"));
    }
    let open = mph.with_directory_kind(DirectoryKind::Open);
    // Live pairs and a margin of dead ids beyond both ranges: an alien
    // key still hashes *somewhere*, so this exercises the key-compare
    // rejection, not just the happy path.
    let probes: Vec<Probe> = (0..diff.class_count() + 4)
        .flat_map(|c| {
            (0..diff.member_name_count() + 4).map(move |m| {
                (
                    cpplookup_chg::ClassId::from_index(c),
                    cpplookup_chg::MemberId::from_index(m),
                )
            })
        })
        .collect();
    let mut mph_batch = Vec::new();
    let mut open_batch = Vec::new();
    mph.lookup_batch_into(&probes, &mut mph_batch);
    open.lookup_batch_into(&probes, &mut open_batch);
    for (i, &(c, m)) in probes.iter().enumerate() {
        let got = mph.lookup_ref(c, m);
        if got != open.lookup_ref(c, m) || got != mph_batch[i] || got != open_batch[i] {
            return Err(io::Error::other(format!(
                "mph/open divergence at probe ({}, {})",
                c.index(),
                m.index()
            )));
        }
    }
    writeln!(
        w,
        "  differential: {} probes ({} live entries + dead margin), \
         mph == open, batch == single",
        probes.len(),
        mph.entry_count()
    )?;
    let chg = families::grid(50, 50);
    let table = LookupTable::build(&chg);
    let mph = DispatchIndex::from_table(LookupTable::build(&chg));
    let open = mph.with_directory_kind(DirectoryKind::Open);
    let probes = serve_probes(&chg, &table, 0xE26);
    let reps = (1_000_000 / probes.len()).max(1);
    // The serve path before this change: one owned outcome (witness
    // Vec clones and obs hooks included) per probe, open directory.
    let (ns_owned, s_owned) =
        serve_single(&probes, reps, |(c, m)| outcome_word(&open.lookup(c, m)));
    // The serve path now: batched allocation-free lookups, mph
    // directory, reused output buffer.
    let (t_batch, s_batch) = median_time(3, || {
        let mut out = Vec::new();
        let mut sum = 0u64;
        for _ in 0..reps {
            for chunk in probes.chunks(256) {
                mph.lookup_batch_into(chunk, &mut out);
                for o in &out {
                    sum = sum.wrapping_add(outcome_ref_word(o));
                }
            }
        }
        sum
    });
    if s_owned != s_batch {
        return Err(io::Error::other(
            "probe checksums diverged between the owned open loop and the mph batch path",
        ));
    }
    let ns_batch = t_batch.as_secs_f64() * 1e9 / (reps * probes.len()) as f64;
    let ratio = ns_owned / ns_batch.max(f64::MIN_POSITIVE);
    writeln!(
        w,
        "  perf (grid_50x50): owned loop on open {ns_owned:.1} ns/probe, batch on \
         mph {ns_batch:.1} ns/probe (serve-path speedup {ratio:.2}x)"
    )?;
    if ratio < 1.2 {
        return Err(io::Error::other(format!(
            "the batched mph serve path is only {ratio:.2}x the open per-probe \
             loop it replaced (floor 1.2x)"
        )));
    }
    writeln!(w, "  guard: PASS (floor 1.2x)")?;
    if let Ok(baseline) = std::fs::read_to_string("BENCH_e26.json") {
        let recorded = baseline
            .find("\"name\": \"grid_50x50\"")
            .and_then(|at| json_f64(&baseline[at..], "serve_path_vs_baseline"));
        if let Some(recorded) = recorded {
            let floor = (recorded * 0.4).max(1.2);
            if ratio < floor {
                return Err(io::Error::other(format!(
                    "serve-path speedup {ratio:.2}x regressed below {floor:.2}x \
                     (0.4x the recorded grid_50x50 ratio {recorded:.2}x)"
                )));
            }
            writeln!(
                w,
                "  baseline: recorded grid_50x50 ratio {recorded:.2}x, floor {floor:.2}x — PASS"
            )?;
        }
    } else {
        writeln!(
            w,
            "  baseline: BENCH_e26.json not present, skipping no-regression guard"
        )?;
    }
    Ok(())
}

/// The soft fd limit of this process, from `/proc/self/limits`
/// (`None` off Linux): the idle-connection stage sizes itself to it,
/// since client and server ends share the process on a loopback bench.
fn fd_soft_limit() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Plays one deterministic wire session — HELLO, point QUERYs, a wide
/// BATCH, an EDIT, a post-edit QUERY, an AS_OF read back at the
/// pre-edit epoch, STATS — at a threads-model and an epoll-model server
/// over the same preloaded tenant, and demands byte-identical response
/// streams; traced QUERY/BATCH are then compared structurally through
/// clients (durations are measurements, never byte-stable). Returns
/// the pinned frame count.
fn e27_wire_differential(
    threads_addr: &str,
    epoll_addr: &str,
    probes: &[(String, String)],
) -> io::Result<usize> {
    use std::io::Write as _;
    use std::net::{Shutdown, TcpStream};
    use std::time::Duration;

    use cpplookup_server::protocol::{
        read_frame, write_frame, FrameError, Request, PROTOCOL_VERSION,
    };
    use cpplookup_server::{Client, WireSpan};

    let tenant = "t0".to_owned();
    let mut session: Vec<Request> = vec![Request::Hello {
        version: PROTOCOL_VERSION,
    }];
    for (class, member) in probes.iter().take(64) {
        session.push(Request::Query {
            tenant: tenant.clone(),
            class: class.clone(),
            member: member.clone(),
            trace: false,
            as_of: None,
        });
    }
    session.push(Request::Batch {
        tenant: tenant.clone(),
        probes: probes.iter().take(1024).cloned().collect(),
        trace: false,
        as_of: None,
    });
    let (class0, member0) = &probes[0];
    session.push(Request::Edit {
        tenant: tenant.clone(),
        directive: format!("member {class0} zz_e27_probe"),
    });
    session.push(Request::Query {
        tenant: tenant.clone(),
        class: class0.clone(),
        member: "zz_e27_probe".to_owned(),
        trace: false,
        as_of: None,
    });
    session.push(Request::Query {
        tenant: tenant.clone(),
        class: class0.clone(),
        member: "zz_e27_probe".to_owned(),
        trace: false,
        as_of: Some(1), // pre-edit epoch: the member is not there yet
    });
    session.push(Request::Stats {
        tenant: tenant.clone(),
    });

    let play = |addr: &str| -> io::Result<Vec<Vec<u8>>> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut wire = Vec::new();
        for req in &session {
            write_frame(&mut wire, &req.encode())?;
        }
        stream.write_all(&wire)?;
        stream.shutdown(Shutdown::Write)?;
        let mut responses = Vec::new();
        loop {
            match read_frame(&mut stream) {
                Ok(body) => responses.push(body),
                Err(FrameError::Eof) => break,
                Err(e) => return Err(io::Error::other(format!("differential read: {e}"))),
            }
        }
        Ok(responses)
    };
    let want = play(threads_addr)?;
    let got = play(epoll_addr)?;
    if want.len() != session.len() {
        return Err(io::Error::other(format!(
            "threads model answered {} of {} frames",
            want.len(),
            session.len()
        )));
    }
    if got != want {
        let at = got
            .iter()
            .zip(&want)
            .position(|(g, t)| g != t)
            .unwrap_or(want.len().min(got.len()));
        return Err(io::Error::other(format!(
            "epoll responses diverge from threads at frame {at} of {}",
            session.len()
        )));
    }

    // Traced responses: compare outcome and span-tree structure.
    let shape = |spans: &[WireSpan]| -> Vec<(u64, u64, String)> {
        spans
            .iter()
            .map(|s| (s.id, s.parent, s.label.clone()))
            .collect()
    };
    let mut ct = Client::connect(threads_addr, Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let mut ce = Client::connect(epoll_addr, Some(Duration::from_secs(10)))
        .map_err(|e| io::Error::other(e.to_string()))?;
    let wire = |e: cpplookup_server::client::ClientError| io::Error::other(e.to_string());
    let (to, ts) = ct.query_traced("t0", class0, member0).map_err(wire)?;
    let (eo, es) = ce.query_traced("t0", class0, member0).map_err(wire)?;
    if to != eo || shape(&ts) != shape(&es) {
        return Err(io::Error::other("traced QUERY diverges between models"));
    }
    let pair = vec![probes[0].clone(), probes[probes.len() - 1].clone()];
    let (to, ts) = ct.batch_traced("t0", &pair).map_err(wire)?;
    let (eo, es) = ce.batch_traced("t0", &pair).map_err(wire)?;
    if to != eo || shape(&ts) != shape(&es) {
        return Err(io::Error::other("traced BATCH diverges between models"));
    }
    Ok(session.len() + 2)
}

/// E27 — the epoll reactor vs thread-per-connection, head to head:
///
/// 1. **Differential** — one deterministic wire session (QUERY, wide
///    BATCH, EDIT, AS_OF, STATS, traced) played at both models over
///    the same preloaded tenant must answer byte-identically before
///    any number is reported.
/// 2. **Connection ramp** — closed-loop load at 1/8/64/256/1024
///    connections per model, with per-level QPS/p50/p99 and the
///    process's peak open-fd/RSS footprint sampled while each level
///    runs.
/// 3. **Idle footprint** — as many idle connections as the fd limit
///    allows (10k target; client and server ends share the process)
///    parked against each model, RSS delta measured. This is the
///    north-star number: a parked thread costs a stack, a parked
///    reactor connection costs a slab entry.
///
/// Emits `BENCH_e27.json` for the CI gate (`e27-smoke`).
fn e27(w: &mut dyn Write) -> io::Result<()> {
    use std::net::TcpStream;
    use std::time::Duration;

    use cpplookup_server::cli::live_probes;
    use cpplookup_server::loadgen::{self, LoadConfig, TenantTarget};
    use cpplookup_server::{IoModel, Server, ServerConfig};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    const LEVELS: [usize; 5] = [1, 8, 64, 256, 1024];

    writeln!(w, "E27: epoll reactor vs thread-per-connection I/O")?;
    let dir = BenchDir::new("e27")?;
    let chg = random_hierarchy(&RandomConfig::realistic(2000, 7));
    let snap_path = dir.file("main.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let table = SnapshotTable::load(&snap_path).map_err(io::Error::other)?;
    let probes = live_probes(&table);

    let start = |io_model: IoModel| -> io::Result<(Server, String)> {
        let server = Server::start(ServerConfig {
            preload: vec![("t0".to_owned(), snap_path.clone())],
            max_connections: 16_000,
            io_model,
            ..ServerConfig::default()
        })?;
        let addr = server.addr().to_string();
        Ok((server, addr))
    };
    let (_threads, threads_addr) = start(IoModel::Threads)?;
    let (_epoll, epoll_addr) = start(IoModel::Epoll)?;

    // Stage 1: the differential gates everything downstream.
    let frames = e27_wire_differential(&threads_addr, &epoll_addr, &probes)?;
    writeln!(
        w,
        "  differential: {frames} frames byte-identical across models \
         (QUERY/BATCH/EDIT/AS_OF/STATS + traced structural)"
    )?;

    // Stage 2: the connection ramp, one model at a time.
    let targets = [TenantTarget {
        name: "t0".to_owned(),
        probes: probes.clone(),
    }];
    let config = |addr: &str| LoadConfig {
        addr: addr.to_owned(),
        duration: Duration::from_millis(1200),
        ..LoadConfig::default()
    };
    let idle_target = 10_000.min(fd_soft_limit().unwrap_or(2048).saturating_sub(1500) / 2);
    let mut model_json = Vec::new();
    let mut qps1 = Vec::new();
    let mut ramp_rss_1024 = Vec::new();
    let mut idle_rss = Vec::new();
    for (label, addr) in [("threads", &threads_addr), ("epoll", &epoll_addr)] {
        writeln!(w, "  {label}: closed loop, 1 probe/request, warm tenant:")?;
        writeln!(
            w,
            "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "connections", "qps", "p50 us", "p99 us", "peak fds", "peak rss"
        )?;
        let rss_before = loadgen::rss_bytes().unwrap_or(0);
        let levels = loadgen::run_ramp(&config(addr), &targets, &LEVELS)?;
        let mut level_json = Vec::new();
        for level in &levels {
            let fds = level.open_fds.unwrap_or(0);
            let rss_mb = level.rss_bytes.unwrap_or(0) as f64 / (1024.0 * 1024.0);
            writeln!(
                w,
                "  {:<12} {:>10.0} {:>10.1} {:>10.1} {:>10} {:>8.1}M",
                level.connections,
                level.report.qps(),
                level.report.p50_us(),
                level.report.p99_us(),
                fds,
                rss_mb,
            )?;
            level_json.push(format!(
                "      {{\"connections\": {}, \"qps\": {:.0}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"errors\": {}, \"peak_fds\": {fds}, \
                 \"peak_rss_bytes\": {}}}",
                level.connections,
                level.report.qps(),
                level.report.p50_us(),
                level.report.p99_us(),
                level.report.errors,
                level.rss_bytes.unwrap_or(0),
            ));
        }
        qps1.push(levels[0].report.qps());
        let peak_1024 = levels.last().and_then(|l| l.rss_bytes).unwrap_or(0);
        ramp_rss_1024.push(peak_1024.saturating_sub(rss_before));

        // Stage 3: park idle connections and weigh them.
        std::thread::sleep(Duration::from_millis(500)); // let prior level drain
        let before = loadgen::rss_bytes().unwrap_or(0);
        let mut parked = Vec::with_capacity(idle_target);
        for _ in 0..idle_target {
            parked.push(TcpStream::connect(addr.as_str())?);
        }
        // Give the server time to adopt every connection (the threaded
        // model spawns a thread apiece).
        std::thread::sleep(Duration::from_millis(1500));
        let after = loadgen::rss_bytes().unwrap_or(0);
        let delta = after.saturating_sub(before);
        drop(parked);
        std::thread::sleep(Duration::from_millis(1000)); // let the server reap
        idle_rss.push(delta);
        writeln!(
            w,
            "  {label}: {idle_target} idle connections -> +{:.1} MB RSS",
            delta as f64 / (1024.0 * 1024.0)
        )?;
        model_json.push(format!(
            "    \"{label}\": {{\n    \"levels\": [\n{}\n    ],\n    \
             \"ramp_rss_delta_1024_bytes\": {}, \"idle_rss_delta_bytes\": {delta}}}",
            level_json.join(",\n"),
            ramp_rss_1024.last().unwrap(),
        ));
    }

    // Acceptance checks, reported (the smoke gate enforces its own).
    let qps_ratio = qps1[1] / qps1[0].max(f64::MIN_POSITIVE);
    writeln!(
        w,
        "  target epoll within 10% of threads QPS at 1 connection: {} ({qps_ratio:.2}x)",
        if qps_ratio >= 0.9 { "PASS" } else { "FAIL" }
    )?;
    writeln!(
        w,
        "  target epoll RSS < threads RSS over the 1024-connection ramp: {} ({:.1}M vs {:.1}M)",
        if ramp_rss_1024[1] < ramp_rss_1024[0] {
            "PASS"
        } else {
            "FAIL"
        },
        ramp_rss_1024[1] as f64 / (1024.0 * 1024.0),
        ramp_rss_1024[0] as f64 / (1024.0 * 1024.0),
    )?;
    writeln!(
        w,
        "  target epoll RSS < threads RSS at {idle_target} idle connections: {} ({:.1}M vs {:.1}M)",
        if idle_rss[1] < idle_rss[0] {
            "PASS"
        } else {
            "FAIL"
        },
        idle_rss[1] as f64 / (1024.0 * 1024.0),
        idle_rss[0] as f64 / (1024.0 * 1024.0),
    )?;

    let json = format!(
        "{{\n  \"experiment\": \"e27\",\n  {},\n  \"differential_frames\": {frames},\n  \
         \"idle_connections\": {idle_target},\n  \"models\": {{\n{}\n  }},\n  \
         \"epoll_vs_threads_qps_1conn\": {qps_ratio:.3}\n}}\n",
        host_context_json(1024),
        model_json.join(",\n"),
    );
    std::fs::write("BENCH_e27.json", json)?;
    writeln!(w, "  wrote BENCH_e27.json")?;
    Ok(())
}

/// E27's CI guard: the full epoll-vs-threads wire differential, a
/// connection-scaling floor on the reactor (64-connection closed-loop
/// QPS must not fall below 1-connection QPS), and — when a committed
/// `BENCH_e27.json` exists — a no-regression floor at 0.05x the
/// recorded epoll 1-connection QPS.
fn e27_smoke(w: &mut dyn Write) -> io::Result<()> {
    use std::time::Duration;

    use cpplookup_server::cli::live_probes;
    use cpplookup_server::loadgen::{self, LoadConfig, TenantTarget};
    use cpplookup_server::{IoModel, Server, ServerConfig};
    use cpplookup_snapshot::{Snapshot, SnapshotTable};

    writeln!(w, "E27-smoke: epoll/threads differential + scaling floor")?;
    let dir = BenchDir::new("e27-smoke")?;
    let chg = families::interface_heavy(100, 4);
    let snap_path = dir.file("smoke.snap");
    Snapshot::compile(&chg)
        .write_to(&snap_path)
        .map_err(io::Error::other)?;
    let table = SnapshotTable::load(&snap_path).map_err(io::Error::other)?;
    let probes = live_probes(&table);

    let start = |io_model: IoModel| -> io::Result<(Server, String)> {
        let server = Server::start(ServerConfig {
            preload: vec![("t0".to_owned(), snap_path.clone())],
            max_connections: 256,
            io_model,
            ..ServerConfig::default()
        })?;
        let addr = server.addr().to_string();
        Ok((server, addr))
    };
    let (_threads, threads_addr) = start(IoModel::Threads)?;
    let (_epoll, epoll_addr) = start(IoModel::Epoll)?;

    let frames = e27_wire_differential(&threads_addr, &epoll_addr, &probes)?;
    writeln!(w, "  differential: {frames} frames byte-identical")?;

    let targets = [TenantTarget {
        name: "t0".to_owned(),
        probes,
    }];
    let run_at = |conns: usize| -> io::Result<f64> {
        let report = loadgen::run(
            &LoadConfig {
                addr: epoll_addr.clone(),
                connections: conns,
                duration: Duration::from_millis(700),
                ..LoadConfig::default()
            },
            &targets,
        )?;
        if report.errors > 0 {
            return Err(io::Error::other(format!(
                "{} load errors at {conns} connections",
                report.errors
            )));
        }
        Ok(report.qps())
    };
    let qps_1 = run_at(1)?;
    let qps_64 = run_at(64)?;
    writeln!(
        w,
        "  reactor closed loop: {qps_1:.0} qps at 1 connection, {qps_64:.0} at 64"
    )?;
    // On a single core, 64 closed-loop clients cost a few percent of
    // scheduler overhead versus one; the gate exists to catch the
    // reactor *collapsing* under concurrency (head-of-line blocking, a
    // starved ready queue), not to demand linear scaling.
    if qps_64 < qps_1 * 0.8 {
        return Err(io::Error::other(format!(
            "connection-scaling floor: 64-connection QPS {qps_64:.0} fell below \
             0.8x the 1-connection QPS {qps_1:.0}"
        )));
    }

    let mut floor: f64 = 1000.0;
    let mut baseline_note = "no BENCH_e27.json baseline".to_owned();
    if let Ok(baseline) = std::fs::read_to_string("BENCH_e27.json") {
        // The epoll section's first level is the 1-connection run.
        if let Some(recorded) = baseline
            .find("\"epoll\"")
            .and_then(|at| json_f64(&baseline[at..], "qps"))
        {
            floor = floor.max(recorded * 0.05);
            baseline_note = format!("0.05x recorded epoll 1-connection QPS {recorded:.0}");
        }
    }
    writeln!(w, "  floor {floor:.0} qps ({baseline_note})")?;
    if qps_1 < floor {
        return Err(io::Error::other(format!(
            "smoke QPS {qps_1:.0} fell below the floor {floor:.0}"
        )));
    }
    writeln!(w, "  guard: PASS")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every experiment runs to completion and produces output. The
    /// timing-heavy ones still finish quickly in test builds because the
    /// workloads are bounded.
    #[test]
    fn cheap_experiments_produce_output() {
        for id in ["e1", "e2", "e3", "e4", "e5", "e7", "e13", "e14", "e15"] {
            let mut out = Vec::new();
            run(id, &mut out).unwrap();
            assert!(!out.is_empty(), "{id} produced no output");
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains(&id.to_uppercase()), "{id} header missing");
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        let mut out = Vec::new();
        assert!(run("e99", &mut out).is_err());
    }

    #[test]
    fn all_ids_are_dispatchable() {
        // Don't run the heavy ones here; just verify dispatch exists by
        // name for every id in ALL (compile-time exhaustiveness is
        // enforced by the match).
        assert_eq!(ALL.len(), 27);
        assert!(ALL.iter().all(|id| id.starts_with('e')));
    }
}
