//! Minimal timing utilities for the `report` binary.
//!
//! Criterion does the statistically careful measurements in `benches/`;
//! the report tables only need quick medians with sensible repetition.

use std::time::{Duration, Instant};

/// Runs `f` once and returns its wall-clock duration together with its
/// result.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Median wall-clock time of `runs` executions of `f` (at least one).
/// The result of the last run is returned so the work cannot be
/// optimized away by the caller discarding it.
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let runs = runs.max(1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (d, v) = time_once(&mut f);
        times.push(d);
        last = Some(v);
    }
    times.sort();
    (times[times.len() / 2], last.expect("runs >= 1"))
}

/// Formats a duration compactly for table cells (`1.23ms`, `45.6µs`).
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1.0e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1.0e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_returns_value_and_positive_time() {
        let (d, v) = median_time(5, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0 || d.is_zero());
    }

    #[test]
    fn zero_runs_clamps_to_one() {
        let (_, v) = median_time(0, || 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120ns");
        assert_eq!(fmt_duration(Duration::from_micros(45)), "45.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
