//! Benchmark harness for the PLDI'97 member lookup paper: shared
//! workload builders, a light timing helper for the `report` binary, and
//! the experiment implementations behind every table and figure (see
//! `EXPERIMENTS.md` at the workspace root).
//!
//! The Criterion benches under `benches/` reuse [`workloads`]; the
//! `report` binary (`cargo run -p cpplookup-bench --bin report --release`)
//! prints the paper-shaped tables via [`experiments`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod timing;
pub mod workloads;
