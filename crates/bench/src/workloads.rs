//! Workload builders shared by the Criterion benches and the `report`
//! binary.

use cpplookup_chg::{Chg, ClassId, MemberId};
use cpplookup_hiergen::families;
use cpplookup_hiergen::{random_hierarchy, RandomConfig};

/// A named hierarchy plus the single `(class, member)` query its family
/// makes interesting (the deepest/most-derived lookup).
pub struct Workload {
    /// Display name (`chain-1000`, `vdiamond-8`, ...).
    pub name: String,
    /// The hierarchy.
    pub chg: Chg,
    /// The class to look up in.
    pub class: ClassId,
    /// The member to look up.
    pub member: MemberId,
}

impl Workload {
    fn new(name: impl Into<String>, chg: Chg, class: &str, member: &str) -> Self {
        let class = chg.class_by_name(class).expect("workload class exists");
        let member = chg.member_by_name(member).expect("workload member exists");
        Workload {
            name: name.into(),
            chg,
            class,
            member,
        }
    }
}

/// A non-virtual chain of depth `n`: the unambiguous, linear-cost regime.
pub fn chain(n: usize) -> Workload {
    Workload::new(
        format!("chain-{n}"),
        families::chain(n, None),
        &format!("C{}", n - 1),
        "m",
    )
}

/// `k` stacked *virtual* diamonds: unambiguous, subobject count linear.
pub fn virtual_diamonds(k: usize) -> Workload {
    Workload::new(
        format!("vdiamond-{k}"),
        families::stacked_diamonds(k, cpplookup_chg::Inheritance::Virtual),
        &format!("D{k}"),
        "m",
    )
}

/// `k` stacked *non-virtual* diamonds: ambiguous, subobject count `2^k` —
/// the regime where subobject-graph algorithms explode.
pub fn nonvirtual_diamonds(k: usize) -> Workload {
    Workload::new(
        format!("nvdiamond-{k}"),
        families::stacked_diamonds(k, cpplookup_chg::Inheritance::NonVirtual),
        &format!("D{k}"),
        "m",
    )
}

/// The repeated Figure 9 pattern: unambiguous everywhere, adversarial
/// for eager-ambiguity strategies.
pub fn gxx_trap(stages: usize) -> Workload {
    Workload::new(
        format!("gxxtrap-{stages}"),
        families::gxx_trap(stages),
        &format!("E{stages}"),
        "m",
    )
}

/// A seeded "realistic codebase": mostly single inheritance, big member
/// pool, rare ambiguity. The query member is whichever name the most
/// derived class can see (falling back to `m0`).
pub fn realistic(classes: usize, seed: u64) -> Workload {
    let chg = random_hierarchy(&RandomConfig::realistic(classes, seed));
    let class = *chg.topo_order().last().expect("nonempty");
    let member = chg
        .member_ids()
        .find(|&m| chg.is_member_visible(class, m))
        .or_else(|| chg.member_ids().next())
        .expect("pool is nonempty");
    Workload {
        name: format!("realistic-{classes}-s{seed}"),
        chg,
        class,
        member,
    }
}

/// Renders a mini-C++ translation unit that declares a `classes`-deep
/// mostly-single-inheritance library and then performs `accesses` member
/// accesses in `main` — the end-to-end frontend workload (experiment
/// E16).
pub fn frontend_source(classes: usize, accesses: usize) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    src.push_str("struct K0 { int m0; static int s0; void f0(); };\n");
    for i in 1..classes {
        // Every 7th class mixes in an independent interface class
        // (multiple inheritance without shared ancestors, so lookups stay
        // unambiguous); everything else extends the tower.
        if i % 7 == 3 {
            let _ = writeln!(
                src,
                "struct X{i} {{ void x{i}(); }};\nstruct K{i} : K{}, X{i} {{ int m{i}; }};",
                i - 1
            );
        } else {
            let _ = writeln!(
                src,
                "struct K{i} : K{} {{ int m{i}; void f{i}(); }};",
                i - 1
            );
        }
    }
    src.push_str("int main() {\n");
    for j in 0..accesses {
        let class = classes - 1 - (j % (classes / 2));
        let member = j % classes.min(class + 1);
        let _ = writeln!(src, "  K{class} v{j}; v{j}.m{member};");
    }
    src.push_str("}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_core::LookupTable;
    use cpplookup_frontend::analyze;

    #[test]
    fn workload_queries_are_visible() {
        for w in [
            chain(50),
            virtual_diamonds(5),
            nonvirtual_diamonds(5),
            gxx_trap(3),
            realistic(60, 3),
        ] {
            assert!(
                w.chg.is_member_visible(w.class, w.member),
                "{}: query member must be visible",
                w.name
            );
        }
    }

    #[test]
    fn chain_and_vdiamond_resolve_nvdiamond_does_not() {
        use cpplookup_core::LookupOutcome;
        let t = LookupTable::build(&chain(20).chg);
        let w = chain(20);
        assert!(t.lookup(w.class, w.member).is_resolved());
        let w = virtual_diamonds(4);
        let t = LookupTable::build(&w.chg);
        assert!(t.lookup(w.class, w.member).is_resolved());
        let w = nonvirtual_diamonds(4);
        let t = LookupTable::build(&w.chg);
        assert!(matches!(
            t.lookup(w.class, w.member),
            LookupOutcome::Ambiguous { .. }
        ));
    }

    #[test]
    fn frontend_source_is_well_formed() {
        let src = frontend_source(40, 100);
        let analysis = analyze(&src);
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics.first()
        );
        assert_eq!(analysis.queries.len(), 100);
        assert_eq!(analysis.failed_queries().count(), 0);
        assert!(analysis.chg.class_count() >= 40, "tower plus mixins");
    }
}
