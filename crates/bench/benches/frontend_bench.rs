//! E16: end-to-end frontend cost — parse-only vs parse+lower+table+
//! resolve, the "member lookup is a real fraction of compilation"
//! motivation from Section 7 of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpplookup_bench::workloads::frontend_source;
use cpplookup_frontend::{analyze, parser};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    group.sample_size(10);
    for (classes, accesses) in [(100usize, 500usize), (300, 3000)] {
        let src = frontend_source(classes, accesses);
        let label = format!("{classes}cls-{accesses}acc");
        group.bench_with_input(BenchmarkId::new("parse_only", &label), &(), |b, ()| {
            b.iter(|| parser::parse(&src))
        });
        group.bench_with_input(
            BenchmarkId::new("parse_and_resolve", &label),
            &(),
            |b, ()| b.iter(|| analyze(&src)),
        );
    }
    group.finish();
}

criterion_group!(frontend, benches);
criterion_main!(frontend);
