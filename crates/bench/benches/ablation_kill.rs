//! E12: the Section 4 killing optimization, as an ablation — naive path
//! propagation with and without killing dominated definitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpplookup_baselines::naive::{propagate, PropagationConfig};
use cpplookup_chg::Inheritance;
use cpplookup_hiergen::families;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kill");
    group.sample_size(10);
    let cases = [
        (
            "nvdiamond-8",
            families::stacked_diamonds(8, Inheritance::NonVirtual),
        ),
        (
            "ovdiamond-11",
            families::stacked_diamonds_overridden(11, Inheritance::NonVirtual),
        ),
        ("grid-5x5", families::grid(5, 5)),
        ("gxxtrap-5", families::gxx_trap(5)),
    ];
    for (name, chg) in &cases {
        let m = chg.member_by_name("m").unwrap();
        for (label, kill) in [("kill", true), ("nokill", false)] {
            group.bench_with_input(BenchmarkId::new(*name, label), &kill, |b, &kill| {
                b.iter(|| {
                    propagate(
                        chg,
                        m,
                        PropagationConfig {
                            kill,
                            budget: 50_000_000,
                        },
                    )
                    .expect("within budget")
                    .propagated_defs
                })
            });
        }
    }
    group.finish();
}

criterion_group!(ablation_kill, benches);
criterion_main!(ablation_kill);
