//! E11: whole-table construction — eager Figure 8, lazy-everything, and
//! member-sharded parallel construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpplookup_chg::{Chg, Inheritance};
use cpplookup_core::{LazyLookup, LookupOptions, LookupTable};
use cpplookup_hiergen::{families, random_hierarchy, RandomConfig};

fn bench_chg(c: &mut Criterion, name: &str, chg: &Chg) {
    let mut group = c.benchmark_group("full_table");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("eager", name), &(), |b, ()| {
        b.iter(|| LookupTable::build(chg))
    });
    group.bench_with_input(BenchmarkId::new("lazy_all", name), &(), |b, ()| {
        b.iter(|| {
            let mut lazy = LazyLookup::new(chg);
            let mut present = 0usize;
            for class in chg.classes() {
                for m in chg.member_ids() {
                    if lazy.entry(class, m).is_some() {
                        present += 1;
                    }
                }
            }
            present
        })
    });
    for threads in [2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel{threads}"), name),
            &(),
            |b, ()| b.iter(|| LookupTable::build_parallel(chg, LookupOptions::default(), threads)),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_chg(
        c,
        "realistic-500",
        &random_hierarchy(&RandomConfig::realistic(500, 1)),
    );
    bench_chg(
        c,
        "realistic-2000",
        &random_hierarchy(&RandomConfig::realistic(2000, 2)),
    );
    bench_chg(
        c,
        "clash-500",
        &random_hierarchy(&RandomConfig {
            classes: 500,
            extra_base_prob: 0.5,
            max_bases: 3,
            virtual_prob: 0.3,
            member_pool: 8,
            member_prob: 0.3,
            static_prob: 0.1,
            seed: 3,
        }),
    );
    bench_chg(
        c,
        "vdiamond-300",
        &families::stacked_diamonds(300, Inheritance::Virtual),
    );
}

criterion_group!(full_table, benches);
criterion_main!(full_table);
