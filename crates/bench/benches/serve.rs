//! E22: serving-path cost — the flat `DispatchIndex` probe against the
//! hashmap `LookupTable` and the binary-search `SnapshotTable`, on the
//! same shuffled live-pair probe streams the `e22` report uses, plus
//! the batch path and an index (re)build cost group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpplookup_chg::{Chg, ClassId, MemberId};
use cpplookup_core::{DispatchIndex, LookupTable};
use cpplookup_hiergen::{families, random_hierarchy, RandomConfig};
use cpplookup_snapshot::{Snapshot, SnapshotTable};

/// Deterministic Fisher–Yates (inline LCG; no rand dependency) so
/// every backend serves an identical, locality-free probe stream.
fn shuffle<T>(v: &mut [T], mut seed: u64) {
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        v.swap(i, j);
    }
}

/// The live `(class, member)` pairs of the hierarchy, shuffled, capped.
fn probes(chg: &Chg, table: &LookupTable) -> Vec<(ClassId, MemberId)> {
    let mut probes: Vec<_> = chg
        .classes()
        .flat_map(|c| table.members_of(c).map(move |m| (c, m)))
        .collect();
    shuffle(&mut probes, 0xE22);
    probes.truncate(50_000);
    probes
}

fn bench_family(c: &mut Criterion, name: &str, chg: &Chg) {
    let table = LookupTable::build(chg);
    let snap =
        SnapshotTable::from_bytes(Snapshot::compile(chg).into_bytes()).expect("snapshot loads");
    let index = DispatchIndex::from_table(LookupTable::build(chg));
    let probes = probes(chg, &table);

    let mut group = c.benchmark_group("serve");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("table", name), &(), |b, ()| {
        b.iter(|| {
            probes
                .iter()
                .map(|&(c, m)| table.lookup(c, m).is_resolved() as u64)
                .sum::<u64>()
        })
    });
    group.bench_with_input(BenchmarkId::new("snapshot", name), &(), |b, ()| {
        b.iter(|| {
            probes
                .iter()
                .map(|&(c, m)| snap.lookup(c, m).is_resolved() as u64)
                .sum::<u64>()
        })
    });
    group.bench_with_input(BenchmarkId::new("index_ref", name), &(), |b, ()| {
        b.iter(|| {
            probes
                .iter()
                .map(|&(c, m)| index.lookup_ref(c, m).is_resolved() as u64)
                .sum::<u64>()
        })
    });
    group.bench_with_input(BenchmarkId::new("index_batch", name), &(), |b, ()| {
        b.iter(|| index.lookup_batch(&probes).len())
    });
    group.finish();

    let mut build = c.benchmark_group("serve_build");
    build.sample_size(10);
    build.bench_with_input(BenchmarkId::new("from_table", name), &(), |b, ()| {
        b.iter(|| DispatchIndex::from_table(LookupTable::build(chg)).entry_count())
    });
    build.bench_with_input(BenchmarkId::new("from_snapshot", name), &(), |b, ()| {
        b.iter(|| snap.dispatch_index().entry_count())
    });
    build.finish();
}

fn benches(c: &mut Criterion) {
    bench_family(c, "grid_50x50", &families::grid(50, 50));
    bench_family(c, "interface_500x4", &families::interface_heavy(500, 4));
    bench_family(
        c,
        "realistic_2000",
        &random_hierarchy(&RandomConfig::realistic(2000, 7)),
    );
}

criterion_group!(serve, benches);
criterion_main!(serve);
