//! E9: subobject-graph construction cost — exponential for non-virtual
//! diamond stacks, linear for their virtual twins, while the CHG-side
//! algorithm (table build) stays polynomial on both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpplookup_chg::Inheritance;
use cpplookup_core::LookupTable;
use cpplookup_hiergen::families;
use cpplookup_subobject::stats::count_subobjects;
use cpplookup_subobject::SubobjectGraph;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("blowup");
    group.sample_size(10);
    for k in [6usize, 10, 14, 18] {
        let nv = families::stacked_diamonds(k, Inheritance::NonVirtual);
        let v = families::stacked_diamonds(k, Inheritance::Virtual);
        let bottom_nv = nv.class_by_name(&format!("D{k}")).unwrap();
        let bottom_v = v.class_by_name(&format!("D{k}")).unwrap();
        // The full graph's dominance closure needs O(4^k) bits; build it
        // only while that fits comfortably in memory, and fall back to
        // counting (no closure) beyond.
        if k <= 14 {
            group.bench_with_input(
                BenchmarkId::new("subobject_graph_nonvirtual", k),
                &(),
                |b, ()| {
                    b.iter(|| {
                        SubobjectGraph::build(&nv, bottom_nv, 10_000_000)
                            .unwrap()
                            .len()
                    })
                },
            );
        } else {
            group.bench_with_input(
                BenchmarkId::new("subobject_count_nonvirtual", k),
                &(),
                |b, ()| b.iter(|| count_subobjects(&nv, bottom_nv, 10_000_000).unwrap()),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("subobject_graph_virtual", k),
            &(),
            |b, ()| {
                b.iter(|| {
                    SubobjectGraph::build(&v, bottom_v, 10_000_000)
                        .unwrap()
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lookup_table_nonvirtual", k),
            &(),
            |b, ()| b.iter(|| LookupTable::build(&nv)),
        );
    }
    group.finish();
}

criterion_group!(blowup, benches);
criterion_main!(blowup);
