//! E10: single-lookup cost across hierarchy families — the paper's
//! algorithm (memoising lazy, cold cache) vs the subobject-graph BFS
//! baseline vs the topological-number shortcut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpplookup_baselines::gxx::gxx_lookup_corrected;
use cpplookup_baselines::toposort::toposort_lookup;
use cpplookup_bench::workloads::{self, Workload};
use cpplookup_core::LazyLookup;
use cpplookup_subobject::SubobjectGraph;

fn bench_workload(c: &mut Criterion, workload: &Workload, gxx_feasible: bool) {
    let Workload {
        name,
        chg,
        class,
        member,
    } = workload;
    let mut group = c.benchmark_group("single_lookup");
    group.sample_size(20);

    group.bench_with_input(BenchmarkId::new("ours_lazy", name), &(), |b, ()| {
        b.iter(|| {
            let mut lazy = LazyLookup::new(chg);
            lazy.lookup(*class, *member)
        })
    });
    group.bench_with_input(BenchmarkId::new("toposort", name), &(), |b, ()| {
        b.iter(|| toposort_lookup(chg, *class, *member))
    });
    if gxx_feasible {
        group.bench_with_input(BenchmarkId::new("gxx_bfs", name), &(), |b, ()| {
            b.iter(|| {
                let sg = SubobjectGraph::build(chg, *class, 10_000_000).expect("within budget");
                gxx_lookup_corrected(chg, &sg, *member)
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    for n in [256, 1024, 4096] {
        bench_workload(c, &workloads::chain(n), true);
    }
    for k in [32, 128] {
        bench_workload(c, &workloads::virtual_diamonds(k), true);
    }
    // Non-virtual diamonds: the BFS baseline needs 2^k subobjects (and
    // its dominance closure 4^k bits); skip it beyond k=14 — the shape of
    // interest is that we do NOT blow up.
    bench_workload(c, &workloads::nonvirtual_diamonds(10), true);
    bench_workload(c, &workloads::nonvirtual_diamonds(14), true);
    bench_workload(c, &workloads::nonvirtual_diamonds(48), false);
    bench_workload(c, &workloads::gxx_trap(32), true);
    bench_workload(c, &workloads::realistic(2000, 11), true);
}

criterion_group!(single_lookup, benches);
criterion_main!(single_lookup);
