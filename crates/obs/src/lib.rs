//! Lock-light observability for the member lookup engine.
//!
//! The lookup engine's performance claims are statements about *work
//! done per query* — the paper's `O(|N|+|E|)` unambiguous bound versus
//! the `O(|N|·(|N|+|E|))` ambiguous one is only meaningful if node
//! visits, merges, and red→blue demotions can be counted. This crate
//! provides the counting machinery, deliberately free of dependencies
//! and of any knowledge of the lookup domain:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] — relaxed-atomic primitives
//!   whose record path is one or two uncontended read-modify-writes;
//! * [`Family`], [`GaugeFamily`], [`HistogramFamily`], [`Family2`] —
//!   labelled metric families (`…{shard="3"}`,
//!   `…{tenant="acme",op="query"}`) with a bounded-cardinality guard:
//!   past a per-family limit, unseen label values share one `other`
//!   series instead of growing the registry without bound;
//! * [`Registry`] — named get-or-create registration returning `Arc`
//!   handles, so hot paths never touch the registry lock;
//! * [`Snapshot`] — point-in-time export as human-readable text,
//!   Prometheus text exposition, or JSON;
//! * [`Span`] / [`SpanRecorder`] / [`SpanBuffer`] — request-scoped
//!   phase attribution: single-writer span trees with per-trace
//!   monotonic ids and oldest-dropped overflow;
//! * [`Event`] / [`EventSink`] — structured per-query trace events
//!   ([`MemorySink`], [`CountingSink`], [`NullSink`] provided).
//!
//! `cpplookup-core` wires these into the engine behind its `obs`
//! feature; this crate itself is always-on and feature-free so the
//! engine's compatibility statistics keep working when tracing is
//! compiled out.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;

pub use event::{CountingSink, Event, EventSink, MemorySink, NullSink};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{
    global, Family, Family2, GaugeFamily, HistogramFamily, MetricSnapshot, MetricValue, Registry,
    Snapshot,
};
pub use span::{Span, SpanBuffer, SpanRecorder, OVERFLOW_LABEL};
