//! Request-scoped tracing: spans and the per-connection span buffer.
//!
//! A [`Span`] is one attributed interval of a request's life — "this
//! query spent 1.4 µs in the directory probe". Spans form a tree
//! through parent ids; the server's wire path records one root span per
//! request whose children partition it phase by phase, so the phase
//! durations sum to the request total *by construction* rather than by
//! luck.
//!
//! Recording is deliberately single-writer: a [`SpanRecorder`] belongs
//! to one request on one connection thread, so the hot path is plain
//! arithmetic — no locks, no atomics, no allocation beyond the span
//! labels themselves. Ids are assigned monotonically *per trace*
//! (starting at zero), which keeps a trace's structure byte-stable
//! across runs: two executions of the same request produce the same
//! ids, parents, and labels, differing only in measured durations.
//!
//! A [`SpanBuffer`] bounds what one connection can accumulate: past its
//! capacity the *oldest* span is dropped and a drop counter ticks, so a
//! pathological request cannot grow memory without bound and the loss
//! is visible instead of silent.

use std::collections::VecDeque;
use std::time::Instant;

/// The label series overflowing spans and metric families collapse to.
pub const OVERFLOW_LABEL: &str = "other";

/// One attributed interval in a request's execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Monotonic id within the trace (the root is 0).
    pub id: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Phase label (`"directory_probe"`, `"encode"`, …).
    pub label: String,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Measured duration, nanoseconds.
    pub duration_ns: u64,
}

/// A bounded buffer of completed spans: per-connection, single-writer,
/// oldest-dropped on overflow.
#[derive(Debug)]
pub struct SpanBuffer {
    capacity: usize,
    spans: VecDeque<Span>,
    dropped: u64,
}

impl SpanBuffer {
    /// A buffer holding at most `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> SpanBuffer {
        SpanBuffer {
            capacity: capacity.max(1),
            spans: VecDeque::with_capacity(capacity.clamp(1, 64)),
            dropped: 0,
        }
    }

    /// Appends a completed span, evicting the oldest one (and counting
    /// the eviction) when the buffer is full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Spans currently buffered, oldest first.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// How many spans were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Consumes the buffer, returning `(spans oldest-first, dropped)`.
    pub fn into_parts(self) -> (Vec<Span>, u64) {
        (self.spans.into(), self.dropped)
    }
}

/// Records one request's span tree against a fixed time origin.
///
/// Owned by the connection thread handling the request; ids start at 0
/// and increase in recording order, so the recorded *structure* (ids,
/// parents, labels, ordering) is a pure function of the code path
/// taken, independent of the clock.
#[derive(Debug)]
pub struct SpanRecorder {
    origin: Instant,
    next_id: u64,
    buffer: SpanBuffer,
}

impl SpanRecorder {
    /// A recorder whose origin is `origin` (usually the instant the
    /// request's first byte was seen), buffering at most `capacity`
    /// spans.
    pub fn new(origin: Instant, capacity: usize) -> SpanRecorder {
        SpanRecorder {
            origin,
            next_id: 0,
            buffer: SpanBuffer::new(capacity),
        }
    }

    /// The trace's time origin.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Records one completed interval and returns its span id.
    ///
    /// `start`/`end` before the origin clamp to it (duration clamps to
    /// zero rather than wrapping).
    pub fn record(
        &mut self,
        label: &str,
        parent: Option<u64>,
        start: Instant,
        end: Instant,
    ) -> u64 {
        let start_ns = start.saturating_duration_since(self.origin).as_nanos() as u64;
        let duration_ns = end.saturating_duration_since(start).as_nanos() as u64;
        self.record_ns(label, parent, start_ns, duration_ns)
    }

    /// Records one completed interval from pre-computed offsets (used
    /// when the caller partitions a measured total exactly).
    pub fn record_ns(
        &mut self,
        label: &str,
        parent: Option<u64>,
        start_ns: u64,
        duration_ns: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.buffer.push(Span {
            id,
            parent,
            label: label.to_owned(),
            start_ns,
            duration_ns,
        });
        id
    }

    /// Spans evicted so far.
    pub fn dropped(&self) -> u64 {
        self.buffer.dropped()
    }

    /// Finishes the trace: `(spans oldest-first, dropped count)`.
    pub fn finish(self) -> (Vec<Span>, u64) {
        self.buffer.into_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn buffer_drops_oldest_and_counts() {
        let mut buf = SpanBuffer::new(3);
        for i in 0..5u64 {
            buf.push(Span {
                id: i,
                parent: None,
                label: format!("s{i}"),
                start_ns: i,
                duration_ns: 1,
            });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2, "two oldest evicted");
        let ids: Vec<u64> = buf.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest dropped, newest kept");
        let (spans, dropped) = buf.into_parts();
        assert_eq!(spans.len(), 3);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn buffer_capacity_is_at_least_one() {
        let mut buf = SpanBuffer::new(0);
        buf.push(Span {
            id: 0,
            parent: None,
            label: "a".into(),
            start_ns: 0,
            duration_ns: 0,
        });
        buf.push(Span {
            id: 1,
            parent: None,
            label: "b".into(),
            start_ns: 0,
            duration_ns: 0,
        });
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn recorder_ids_are_monotonic_from_zero() {
        let origin = Instant::now();
        let mut rec = SpanRecorder::new(origin, 16);
        let root = rec.record_ns("request", None, 0, 100);
        let child = rec.record_ns("probe", Some(root), 0, 60);
        assert_eq!(root, 0);
        assert_eq!(child, 1);
        let (spans, dropped) = rec.finish();
        assert_eq!(dropped, 0);
        assert_eq!(spans[0].label, "request");
        assert_eq!(spans[1].parent, Some(0));
    }

    #[test]
    fn recorder_clamps_pre_origin_instants() {
        let origin = Instant::now() + Duration::from_secs(3600);
        let mut rec = SpanRecorder::new(origin, 4);
        let now = Instant::now();
        rec.record("early", None, now, now);
        let (spans, _) = rec.finish();
        assert_eq!(spans[0].start_ns, 0, "pre-origin start clamps to 0");
        assert_eq!(spans[0].duration_ns, 0);
    }

    #[test]
    fn recorder_overflow_increments_dropped() {
        let mut rec = SpanRecorder::new(Instant::now(), 2);
        for _ in 0..5 {
            rec.record_ns("p", None, 0, 1);
        }
        assert_eq!(rec.dropped(), 3);
        let (spans, dropped) = rec.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(spans[0].id, 3, "ids keep climbing past evictions");
    }
}
