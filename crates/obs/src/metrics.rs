//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Everything here is built on relaxed atomics — the values are
//! statistics, not synchronization — so recording from a query hot path
//! costs one (occasionally two) uncontended atomic read-modify-writes.
//! All types are `Sync` and are normally shared as `Arc`s handed out by
//! a [`Registry`](crate::Registry).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// Increments saturate at `u64::MAX` instead of wrapping: a counter
/// that silently restarts from zero would corrupt every rate and ratio
/// derived from it, while a pinned ceiling is visibly wrong. (Reaching
/// the ceiling by honest `inc` calls would take centuries; saturation
/// exists for bulk `add`s and defensive callers.)
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero. `const` so counters can live in
    /// statics.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    ///
    /// The fast path is a single relaxed `fetch_add`; the clamp store
    /// only runs after an actual wrap. Under concurrent saturation the
    /// clamp is best-effort (another thread may observe an intermediate
    /// wrapped value), which is acceptable for a counter that has
    /// already overflowed its meaning.
    #[inline]
    pub fn add(&self, n: u64) {
        let prev = self.value.fetch_add(n, Ordering::Relaxed);
        if prev > u64::MAX - n {
            self.value.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous measurement that can move both ways (cache
/// residency, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations (latencies in
/// nanoseconds, dirty-set sizes, batch lengths).
///
/// Buckets are chosen at construction and never change, so recording is
/// lock-free: a binary search over the bounds plus three relaxed
/// atomic adds. The final (implicit) bucket catches everything above
/// the largest bound — the `+Inf` bucket of the Prometheus exposition.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow slot.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Exponential bounds `start, start*factor, …` (`buckets` of them).
    ///
    /// # Panics
    ///
    /// Panics if `start == 0`, `factor < 2`, or the range overflows
    /// `u64`.
    pub fn exponential(start: u64, factor: u64, buckets: usize) -> Self {
        assert!(start > 0 && factor >= 2, "degenerate exponential buckets");
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = start;
        for _ in 0..buckets {
            bounds.push(b);
            b = b.checked_mul(factor).expect("bucket bound overflow");
        }
        Self::new(&bounds)
    }

    /// The default latency scale: 16 power-of-four buckets from 64 ns
    /// to ~69 s — wide enough for a cache hit and a cold whole-table
    /// miss on the same axis.
    pub fn latency_ns() -> Self {
        Self::exponential(64, 4, 16)
    }

    /// The default size scale: 16 power-of-four buckets from 1 to ~10⁹
    /// (dirty-set sizes, batch lengths, entry counts).
    pub fn sizes() -> Self {
        Self::exponential(1, 4, 16)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let prev = self.sum.fetch_add(value, Ordering::Relaxed);
        if prev > u64::MAX - value {
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts.
    ///
    /// Individual loads are relaxed, so a snapshot taken while writers
    /// are active may be torn by one in-flight observation — fine for
    /// monitoring, which is the only consumer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, detached from the atomics.
///
/// Snapshots from histograms with identical bounds can be
/// [`merge`](HistogramSnapshot::merge)d — e.g. per-shard or per-thread
/// histograms folded into one for export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`
    /// (the final slot is the overflow/`+Inf` bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Adds `other`'s observations into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms on
    /// different scales has no meaning.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst = dst.saturating_add(*src);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count = self.count.saturating_add(other.count);
    }

    /// The arithmetic mean of the observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (0.0–1.0), read from the
    /// bucket boundaries. Returns the largest finite bound when the
    /// quantile falls in the overflow bucket, and 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_saturates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Push to the edge, then over it: the counter pins at the
        // ceiling instead of wrapping to a small lie.
        c.add(u64::MAX - 43);
        assert_eq!(c.get(), u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "saturated counters stay saturated");
        c.add(0);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_is_safe_under_concurrent_increments() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 999, 1000, 1001, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        // Buckets: ≤10, ≤100, ≤1000, +Inf.
        assert_eq!(s.counts, vec![2, 2, 2, 2]);
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, u64::MAX, "sum saturates rather than wraps");
    }

    #[test]
    fn histogram_snapshot_merge() {
        let a = Histogram::new(&[1, 2, 4]);
        let b = Histogram::new(&[1, 2, 4]);
        a.observe(1);
        a.observe(3);
        b.observe(2);
        b.observe(100);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counts, vec![1, 1, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1, 2]).snapshot();
        let b = Histogram::new(&[1, 3]).snapshot();
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..10 {
            h.observe(500);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 10);
        assert_eq!(s.quantile(0.99), 1000);
        assert!((s.mean() - 54.5).abs() < 1e-9);
        let empty = Histogram::new(&[1]).snapshot();
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn exponential_scales() {
        let h = Histogram::exponential(64, 4, 4);
        assert_eq!(h.snapshot().bounds, vec![64, 256, 1024, 4096]);
        assert!(Histogram::latency_ns().snapshot().bounds.len() == 16);
        assert!(Histogram::sizes().snapshot().bounds[0] == 1);
    }
}
