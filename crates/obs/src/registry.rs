//! The metrics registry: named metric families and their exporters.
//!
//! A [`Registry`] maps names to metrics. Registration is get-or-create
//! and returns an `Arc` handle; the hot path records through the handle
//! without touching the registry again, so the registry lock is only
//! taken at setup and export time ("lock-light").
//!
//! Exporters render a point-in-time [`Snapshot`] three ways:
//!
//! * [`render_text`](Snapshot::render_text) — a human-readable dump for
//!   terminals (`cpplookup-cli stats`),
//! * [`render_prometheus`](Snapshot::render_prometheus) — the
//!   Prometheus text exposition format,
//! * [`render_json`](Snapshot::render_json) — a JSON object for
//!   machine consumers (`cpplookup-cli batch --metrics`, the bench
//!   report).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::span::OVERFLOW_LABEL;

/// Decides which series a new label value lands in: its own, or the
/// shared [`OVERFLOW_LABEL`] series once the family holds `limit`
/// distinct values. The overflow series never counts against the limit,
/// so a capped family tops out at `limit + 1` series total — the
/// bounded-cardinality guard that keeps a 1000-tenant farm from
/// registering 1000 series per metric.
fn capped(value: &str, len: usize, limit: usize, exists: bool) -> &str {
    if exists || len < limit || value == OVERFLOW_LABEL {
        value
    } else {
        OVERFLOW_LABEL
    }
}

/// A labelled family of counters: one [`Counter`] per label value,
/// created on first use (`lookup_shard_hits_total{shard="3"}`).
///
/// The family holds one `RwLock` taken for writing only when a new
/// label value appears; steady-state lookups are shared reads. Hot
/// paths should cache the returned `Arc` and skip the map entirely.
///
/// A family may be *bounded*: past `limit` distinct label values, new
/// values share one [`OVERFLOW_LABEL`] series instead of minting their
/// own (first-come keeps its identity, the long tail aggregates).
#[derive(Debug)]
pub struct Family {
    label: String,
    limit: usize,
    series: RwLock<BTreeMap<String, Arc<Counter>>>,
}

impl Family {
    fn new(label: &str, limit: usize) -> Self {
        Family {
            label: label.to_owned(),
            limit: limit.max(1),
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// The label name shared by every series in the family.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The counter for `value`, creating it on first use. Once the
    /// family holds its limit of distinct values, unseen values share
    /// the [`OVERFLOW_LABEL`] series.
    pub fn with_label(&self, value: &str) -> Arc<Counter> {
        if let Some(c) = self.series.read().expect("family lock poisoned").get(value) {
            return Arc::clone(c);
        }
        let mut series = self.series.write().expect("family lock poisoned");
        let key = capped(value, series.len(), self.limit, series.contains_key(value));
        Arc::clone(
            series
                .entry(key.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// `(label value, count)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.series
            .read()
            .expect("family lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

/// A labelled family of gauges: one [`Gauge`] per label value, with the
/// same bounded-cardinality behaviour as [`Family`]
/// (`tenant_epoch{tenant="acme"}`).
#[derive(Debug)]
pub struct GaugeFamily {
    label: String,
    limit: usize,
    series: RwLock<BTreeMap<String, Arc<Gauge>>>,
}

impl GaugeFamily {
    fn new(label: &str, limit: usize) -> Self {
        GaugeFamily {
            label: label.to_owned(),
            limit: limit.max(1),
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// The label name shared by every series in the family.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The gauge for `value`, creating it on first use (overflow past
    /// the limit shares the [`OVERFLOW_LABEL`] series).
    pub fn with_label(&self, value: &str) -> Arc<Gauge> {
        if let Some(g) = self.series.read().expect("family lock poisoned").get(value) {
            return Arc::clone(g);
        }
        let mut series = self.series.write().expect("family lock poisoned");
        let key = capped(value, series.len(), self.limit, series.contains_key(value));
        Arc::clone(
            series
                .entry(key.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// `(label value, gauge value)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, i64)> {
        self.series
            .read()
            .expect("family lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

/// A labelled family of histograms sharing one bucket layout
/// (`server_query_latency_ns{tenant="acme"}`), with the same
/// bounded-cardinality behaviour as [`Family`].
#[derive(Debug)]
pub struct HistogramFamily {
    label: String,
    limit: usize,
    bounds: Vec<u64>,
    series: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl HistogramFamily {
    fn new(label: &str, template: &Histogram, limit: usize) -> Self {
        HistogramFamily {
            label: label.to_owned(),
            limit: limit.max(1),
            bounds: template.snapshot().bounds,
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// The label name shared by every series in the family.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The histogram for `value`, creating it (on the family's shared
    /// bucket layout) on first use; overflow past the limit shares the
    /// [`OVERFLOW_LABEL`] series.
    pub fn with_label(&self, value: &str) -> Arc<Histogram> {
        if let Some(h) = self.series.read().expect("family lock poisoned").get(value) {
            return Arc::clone(h);
        }
        let mut series = self.series.write().expect("family lock poisoned");
        let key = capped(value, series.len(), self.limit, series.contains_key(value));
        Arc::clone(
            series
                .entry(key.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(&self.bounds))),
        )
    }

    /// `(label value, snapshot)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.series
            .read()
            .expect("family lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

/// A two-label family of counters
/// (`server_queries_total{tenant="acme",op="query"}`).
///
/// The cardinality limit applies to the *first* label (the unbounded
/// axis — tenants); the second label is expected to come from a small
/// fixed vocabulary (opcodes, outcome classes). Past the limit, unseen
/// first-label values share the [`OVERFLOW_LABEL`] group.
#[derive(Debug)]
pub struct Family2 {
    labels: (String, String),
    limit: usize,
    series: RwLock<BTreeMap<String, BTreeMap<String, Arc<Counter>>>>,
}

impl Family2 {
    fn new(label1: &str, label2: &str, limit: usize) -> Self {
        Family2 {
            labels: (label1.to_owned(), label2.to_owned()),
            limit: limit.max(1),
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// The two label names, in series order.
    pub fn labels(&self) -> (&str, &str) {
        (&self.labels.0, &self.labels.1)
    }

    /// The counter for `(v1, v2)`, creating it on first use; unseen
    /// first-label values past the limit share the
    /// [`OVERFLOW_LABEL`] group.
    pub fn with_labels(&self, v1: &str, v2: &str) -> Arc<Counter> {
        if let Some(c) = self
            .series
            .read()
            .expect("family lock poisoned")
            .get(v1)
            .and_then(|inner| inner.get(v2))
        {
            return Arc::clone(c);
        }
        let mut series = self.series.write().expect("family lock poisoned");
        let key = capped(v1, series.len(), self.limit, series.contains_key(v1));
        Arc::clone(
            series
                .entry(key.to_owned())
                .or_default()
                .entry(v2.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// `(first value, second value, count)` triples, sorted.
    pub fn snapshot(&self) -> Vec<(String, String, u64)> {
        self.series
            .read()
            .expect("family lock poisoned")
            .iter()
            .flat_map(|(k1, inner)| {
                inner
                    .iter()
                    .map(move |(k2, c)| (k1.clone(), k2.clone(), c.get()))
            })
            .collect()
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Family(Arc<Family>),
    GaugeFamily(Arc<GaugeFamily>),
    HistogramFamily(Arc<HistogramFamily>),
    Family2(Arc<Family2>),
}

#[derive(Debug)]
struct Registered {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics with get-or-create registration.
///
/// Each [`LookupEngine`](../cpplookup_core/struct.LookupEngine.html)
/// owns one; process-wide metrics (propagation counters, baseline
/// comparisons) live in [`global()`].
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Vec<Registered>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        find: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            return find(&existing.metric).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with a different type")
            });
        }
        let (handle, metric) = make();
        inner.push(Registered {
            name: name.to_owned(),
            help: help.to_owned(),
            metric,
        });
        handle
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, registering `hist` on first use (the
    /// builder is ignored when the name already exists).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram(&self, name: &str, help: &str, hist: Histogram) -> Arc<Histogram> {
        let mut hist = Some(hist);
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(hist.take().expect("make runs at most once"));
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// The counter family named `name` with label key `label`,
    /// registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter_family(&self, name: &str, help: &str, label: &str) -> Arc<Family> {
        self.counter_family_bounded(name, help, label, usize::MAX)
    }

    /// The counter family named `name` with label key `label` and a
    /// cardinality cap of `limit` distinct values (the long tail shares
    /// one `other` series), registering it on first use. The limit is
    /// fixed at first registration.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter_family_bounded(
        &self,
        name: &str,
        help: &str,
        label: &str,
        limit: usize,
    ) -> Arc<Family> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Family(f) => Some(Arc::clone(f)),
                _ => None,
            },
            || {
                let f = Arc::new(Family::new(label, limit));
                (Arc::clone(&f), Metric::Family(f))
            },
        )
    }

    /// The gauge family named `name` with label key `label` and a
    /// cardinality cap of `limit`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge_family(
        &self,
        name: &str,
        help: &str,
        label: &str,
        limit: usize,
    ) -> Arc<GaugeFamily> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::GaugeFamily(f) => Some(Arc::clone(f)),
                _ => None,
            },
            || {
                let f = Arc::new(GaugeFamily::new(label, limit));
                (Arc::clone(&f), Metric::GaugeFamily(f))
            },
        )
    }

    /// The histogram family named `name` with label key `label`, bucket
    /// layout from `template`, and a cardinality cap of `limit`,
    /// registering it on first use (the template is ignored when the
    /// name already exists).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram_family(
        &self,
        name: &str,
        help: &str,
        label: &str,
        template: Histogram,
        limit: usize,
    ) -> Arc<HistogramFamily> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::HistogramFamily(f) => Some(Arc::clone(f)),
                _ => None,
            },
            || {
                let f = Arc::new(HistogramFamily::new(label, &template, limit));
                (Arc::clone(&f), Metric::HistogramFamily(f))
            },
        )
    }

    /// The two-label counter family named `name` with label keys
    /// `(label1, label2)` and a cardinality cap of `limit` on the first
    /// label, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter_family2(
        &self,
        name: &str,
        help: &str,
        label1: &str,
        label2: &str,
        limit: usize,
    ) -> Arc<Family2> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Family2(f) => Some(Arc::clone(f)),
                _ => None,
            },
            || {
                let f = Arc::new(Family2::new(label1, label2, limit));
                (Arc::clone(&f), Metric::Family2(f))
            },
        )
    }

    /// A point-in-time snapshot of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("registry lock poisoned");
        Snapshot {
            metrics: inner
                .iter()
                .map(|r| MetricSnapshot {
                    name: r.name.clone(),
                    help: r.help.clone(),
                    value: match &r.metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        Metric::Family(f) => MetricValue::Family {
                            label: f.label().to_owned(),
                            series: f.snapshot(),
                        },
                        Metric::GaugeFamily(f) => MetricValue::GaugeFamily {
                            label: f.label().to_owned(),
                            series: f.snapshot(),
                        },
                        Metric::HistogramFamily(f) => MetricValue::HistogramFamily {
                            label: f.label().to_owned(),
                            series: f.snapshot(),
                        },
                        Metric::Family2(f) => {
                            let (l1, l2) = f.labels();
                            MetricValue::Family2 {
                                labels: (l1.to_owned(), l2.to_owned()),
                                series: f.snapshot(),
                            }
                        }
                    },
                })
                .collect(),
        }
    }
}

/// The process-wide registry for metrics that belong to no particular
/// engine: propagation work counters, baseline comparison counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's state inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The registered name (Prometheus-style, e.g.
    /// `engine_cache_hits_total`).
    pub name: String,
    /// The registered help text.
    pub help: String,
    /// The value, by metric kind.
    pub value: MetricValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's buckets.
    Histogram(HistogramSnapshot),
    /// A labelled family's series.
    Family {
        /// The label key.
        label: String,
        /// `(label value, count)` pairs.
        series: Vec<(String, u64)>,
    },
    /// A labelled gauge family's series.
    GaugeFamily {
        /// The label key.
        label: String,
        /// `(label value, gauge value)` pairs.
        series: Vec<(String, i64)>,
    },
    /// A labelled histogram family's series.
    HistogramFamily {
        /// The label key.
        label: String,
        /// `(label value, snapshot)` pairs.
        series: Vec<(String, HistogramSnapshot)>,
    },
    /// A two-label counter family's series.
    Family2 {
        /// The label keys, in series order.
        labels: (String, String),
        /// `(first value, second value, count)` triples.
        series: Vec<(String, String, u64)>,
    },
}

/// Renders one histogram's cumulative bucket/sum/count series, with an
/// optional extra label (`tenant="acme"`) spliced before `le`.
fn render_prom_histogram(out: &mut String, name: &str, extra: &str, h: &HistogramSnapshot) {
    let (prefix, suffix) = if extra.is_empty() {
        (String::new(), String::new())
    } else {
        (format!("{extra},"), format!("{{{extra}}}"))
    };
    let mut cumulative = 0u64;
    for (i, c) in h.counts.iter().enumerate() {
        cumulative = cumulative.saturating_add(*c);
        let le = h
            .bounds
            .get(i)
            .map(|b| b.to_string())
            .unwrap_or_else(|| "+Inf".to_owned());
        out.push_str(&format!(
            "{name}_bucket{{{prefix}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!("{name}_sum{suffix} {}\n", h.sum));
    out.push_str(&format!("{name}_count{suffix} {}\n", h.count));
}

/// A point-in-time copy of a [`Registry`], ready for rendering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// The metrics, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks up a plain counter by name (convenience for tests and
    /// assertions).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Appends `other`'s metrics (used to combine an engine's registry
    /// with the global one for a single export).
    pub fn extend(&mut self, other: Snapshot) {
        self.metrics.extend(other.metrics);
    }

    /// A human-readable dump, one metric per line; histograms show
    /// count/mean/p50/p99 instead of raw buckets.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{:<40} {v}\n", m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:<40} {v}\n", m.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<40} count={} mean={:.0} p50≤{} p99≤{}\n",
                        m.name,
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                    ));
                }
                MetricValue::Family { label, series } => {
                    for (value, count) in series {
                        out.push_str(&format!(
                            "{:<40} {count}\n",
                            format!("{}{{{label}=\"{value}\"}}", m.name)
                        ));
                    }
                }
                MetricValue::GaugeFamily { label, series } => {
                    for (value, v) in series {
                        out.push_str(&format!(
                            "{:<40} {v}\n",
                            format!("{}{{{label}=\"{value}\"}}", m.name)
                        ));
                    }
                }
                MetricValue::HistogramFamily { label, series } => {
                    for (value, h) in series {
                        out.push_str(&format!(
                            "{:<40} count={} mean={:.0} p50≤{} p99≤{}\n",
                            format!("{}{{{label}=\"{value}\"}}", m.name),
                            h.count,
                            h.mean(),
                            h.quantile(0.5),
                            h.quantile(0.99),
                        ));
                    }
                }
                MetricValue::Family2 { labels, series } => {
                    for (v1, v2, count) in series {
                        out.push_str(&format!(
                            "{:<40} {count}\n",
                            format!("{}{{{}=\"{v1}\",{}=\"{v2}\"}}", m.name, labels.0, labels.1)
                        ));
                    }
                }
            }
        }
        out
    }

    /// The Prometheus text exposition format (`# HELP`/`# TYPE`
    /// comments, cumulative `_bucket{le=…}` histogram series). Label
    /// values are escaped per the exposition format (backslash, double
    /// quote, newline); help text escapes backslash and newline.
    pub fn render_prometheus(&self) -> String {
        // Per the exposition format, HELP text escapes only backslash
        // and line feed (label values additionally escape `"`).
        let escape_help = |s: &str| s.replace('\\', "\\\\").replace('\n', "\\n");
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(&m.help)));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {v}\n", m.name, m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", m.name, m.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {} histogram\n", m.name));
                    render_prom_histogram(&mut out, &m.name, "", h);
                }
                MetricValue::Family { label, series } => {
                    out.push_str(&format!("# TYPE {} counter\n", m.name));
                    for (value, count) in series {
                        out.push_str(&format!(
                            "{}{{{label}=\"{}\"}} {count}\n",
                            m.name,
                            json::escape_fragment(value)
                        ));
                    }
                }
                MetricValue::GaugeFamily { label, series } => {
                    out.push_str(&format!("# TYPE {} gauge\n", m.name));
                    for (value, v) in series {
                        out.push_str(&format!(
                            "{}{{{label}=\"{}\"}} {v}\n",
                            m.name,
                            json::escape_fragment(value)
                        ));
                    }
                }
                MetricValue::HistogramFamily { label, series } => {
                    out.push_str(&format!("# TYPE {} histogram\n", m.name));
                    for (value, h) in series {
                        let series_label = format!("{label}=\"{}\"", json::escape_fragment(value));
                        render_prom_histogram(&mut out, &m.name, &series_label, h);
                    }
                }
                MetricValue::Family2 { labels, series } => {
                    out.push_str(&format!("# TYPE {} counter\n", m.name));
                    for (v1, v2, count) in series {
                        out.push_str(&format!(
                            "{}{{{}=\"{}\",{}=\"{}\"}} {count}\n",
                            m.name,
                            labels.0,
                            json::escape_fragment(v1),
                            labels.1,
                            json::escape_fragment(v2),
                        ));
                    }
                }
            }
        }
        out
    }

    /// A JSON object: `{"metrics":[{"name":…,"type":…,…}, …]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::escape_into(&m.name, &mut out);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    ));
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match h.bounds.get(j) {
                            Some(b) => out.push_str(&format!("{{\"le\":{b},\"count\":{c}}}")),
                            None => out.push_str(&format!("{{\"le\":\"inf\",\"count\":{c}}}")),
                        }
                    }
                    out.push_str("]}");
                }
                MetricValue::Family { label, series } => {
                    out.push_str(",\"type\":\"counter\",\"label\":");
                    json::escape_into(label, &mut out);
                    out.push_str(",\"series\":[");
                    for (j, (value, count)) in series.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"value\":");
                        json::escape_into(value, &mut out);
                        out.push_str(&format!(",\"count\":{count}}}"));
                    }
                    out.push_str("]}");
                }
                MetricValue::GaugeFamily { label, series } => {
                    out.push_str(",\"type\":\"gauge\",\"label\":");
                    json::escape_into(label, &mut out);
                    out.push_str(",\"series\":[");
                    for (j, (value, v)) in series.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"value\":");
                        json::escape_into(value, &mut out);
                        out.push_str(&format!(",\"gauge\":{v}}}"));
                    }
                    out.push_str("]}");
                }
                MetricValue::HistogramFamily { label, series } => {
                    out.push_str(",\"type\":\"histogram\",\"label\":");
                    json::escape_into(label, &mut out);
                    out.push_str(",\"series\":[");
                    for (j, (value, h)) in series.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"value\":");
                        json::escape_into(value, &mut out);
                        out.push_str(&format!(
                            ",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
                            h.count,
                            h.sum,
                            h.quantile(0.5),
                            h.quantile(0.99)
                        ));
                    }
                    out.push_str("]}");
                }
                MetricValue::Family2 { labels, series } => {
                    out.push_str(",\"type\":\"counter\",\"labels\":[");
                    json::escape_into(&labels.0, &mut out);
                    out.push(',');
                    json::escape_into(&labels.1, &mut out);
                    out.push_str("],\"series\":[");
                    for (j, (v1, v2, count)) in series.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"values\":[");
                        json::escape_into(v1, &mut out);
                        out.push(',');
                        json::escape_into(v2, &mut out);
                        out.push_str(&format!("],\"count\":{count}}}"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits");
        let b = r.counter("hits_total", "hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying counter");
        assert_eq!(r.snapshot().counter("hits_total"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn family_series_are_independent() {
        let r = Registry::new();
        let f = r.counter_family("shard_hits_total", "per-shard hits", "shard");
        f.with_label("0").add(3);
        f.with_label("1").inc();
        f.with_label("0").inc();
        assert_eq!(f.snapshot(), vec![("0".to_owned(), 4), ("1".to_owned(), 1)]);
    }

    #[test]
    fn renderers_cover_every_metric_kind() {
        let r = Registry::new();
        r.counter("c_total", "a counter").add(5);
        r.gauge("g", "a gauge").set(-2);
        r.histogram("h_ns", "a histogram", Histogram::new(&[10, 100]))
            .observe(7);
        r.counter_family("f_total", "a family", "shard")
            .with_label("3")
            .inc();
        let snap = r.snapshot();

        let text = snap.render_text();
        assert!(text.contains("c_total"), "{text}");
        assert!(text.contains("-2"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("f_total{shard=\"3\"}"), "{text}");

        let prom = snap.render_prometheus();
        assert!(prom.contains("# TYPE c_total counter"), "{prom}");
        assert!(prom.contains("c_total 5"), "{prom}");
        assert!(prom.contains("h_ns_bucket{le=\"10\"} 1"), "{prom}");
        assert!(prom.contains("h_ns_bucket{le=\"+Inf\"} 1"), "{prom}");
        assert!(prom.contains("h_ns_sum 7"), "{prom}");
        assert!(prom.contains("f_total{shard=\"3\"} 1"), "{prom}");

        let jsonr = snap.render_json();
        assert!(jsonr.starts_with("{\"metrics\":["), "{jsonr}");
        assert!(jsonr.contains("\"name\":\"h_ns\""), "{jsonr}");
        assert!(jsonr.contains("\"le\":\"inf\""), "{jsonr}");
        assert!(jsonr.contains("\"value\":-2"), "{jsonr}");
        assert_eq!(jsonr.matches('{').count(), jsonr.matches('}').count());
        assert_eq!(jsonr.matches('[').count(), jsonr.matches(']').count());
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = Registry::new();
        r.counter("c", "").add(1);
        r.gauge("g", "").set(9);
        r.histogram("h", "", Histogram::new(&[1])).observe(1);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(1));
        assert_eq!(s.gauge("g"), Some(9));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.counter("g"), None, "kind-checked lookup");
    }

    #[test]
    fn bounded_family_overflows_to_other() {
        let r = Registry::new();
        let f = r.counter_family_bounded("t_total", "per tenant", "tenant", 2);
        f.with_label("a").inc();
        f.with_label("b").inc();
        f.with_label("c").add(3); // past the limit: shares `other`
        f.with_label("d").inc();
        f.with_label("a").inc(); // existing series keep their identity
        assert_eq!(
            f.snapshot(),
            vec![
                ("a".to_owned(), 2),
                ("b".to_owned(), 1),
                (OVERFLOW_LABEL.to_owned(), 4),
            ]
        );
    }

    #[test]
    fn gauge_family_tracks_per_label_values() {
        let r = Registry::new();
        let f = r.gauge_family("tenant_epoch", "epoch per tenant", "tenant", 8);
        f.with_label("a").set(3);
        f.with_label("b").set(-1);
        f.with_label("a").set(4);
        assert_eq!(
            f.snapshot(),
            vec![("a".to_owned(), 4), ("b".to_owned(), -1)]
        );
    }

    #[test]
    fn histogram_family_shares_bucket_layout() {
        let r = Registry::new();
        let f = r.histogram_family(
            "lat_ns",
            "latency per tenant",
            "tenant",
            Histogram::new(&[10, 100]),
            1,
        );
        f.with_label("a").observe(5);
        f.with_label("a").observe(50);
        f.with_label("b").observe(7); // overflow series, same bounds
        let snap = f.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[0].1.count, 2);
        assert_eq!(snap[1].0, OVERFLOW_LABEL);
        assert_eq!(snap[1].1.bounds, vec![10, 100]);
    }

    #[test]
    fn family2_caps_on_first_label_only() {
        let r = Registry::new();
        let f = r.counter_family2("q_total", "queries", "tenant", "op", 1);
        f.with_labels("a", "query").inc();
        f.with_labels("a", "batch").inc(); // second label is unbounded
        f.with_labels("b", "query").add(2); // first label past limit
        assert_eq!(
            f.snapshot(),
            vec![
                ("a".to_owned(), "batch".to_owned(), 1),
                ("a".to_owned(), "query".to_owned(), 1),
                (OVERFLOW_LABEL.to_owned(), "query".to_owned(), 2),
            ]
        );
    }

    #[test]
    fn prometheus_escapes_hostile_label_values_and_help() {
        // A tenant named with an embedded quote and newline must not be
        // able to break out of the label value or inject series.
        let hostile = "acme\"prod\ninjected";
        let r = Registry::new();
        r.counter_family("by_tenant_total", "per-tenant\nwith \\slash", "tenant")
            .with_label(hostile)
            .inc();
        r.gauge_family("epoch", "", "tenant", 8)
            .with_label(hostile)
            .set(2);
        r.histogram_family("lat", "", "tenant", Histogram::new(&[10]), 8)
            .with_label(hostile)
            .observe(1);
        r.counter_family2("ops_total", "", "tenant", "op", 8)
            .with_labels(hostile, "query")
            .inc();
        let prom = r.snapshot().render_prometheus();
        let escaped = "acme\\\"prod\\ninjected";
        assert!(
            prom.contains(&format!("by_tenant_total{{tenant=\"{escaped}\"}} 1")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("epoch{{tenant=\"{escaped}\"}} 2")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("lat_bucket{{tenant=\"{escaped}\",le=\"10\"}} 1")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("lat_sum{{tenant=\"{escaped}\"}} 1")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("ops_total{{tenant=\"{escaped}\",op=\"query\"}} 1")),
            "{prom}"
        );
        assert!(
            prom.contains("# HELP by_tenant_total per-tenant\\nwith \\\\slash"),
            "help text escapes newline and backslash: {prom}"
        );
        // No raw newline from the hostile value survives inside any
        // exposition line: every line is a comment, a sample, or blank.
        for line in prom.lines() {
            assert!(
                line.is_empty()
                    || line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| { v.parse::<f64>().is_ok() }),
                "unparseable exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn renderers_cover_new_family_kinds() {
        let r = Registry::new();
        r.gauge_family("gf", "g", "t", 8).with_label("x").set(5);
        r.histogram_family("hf", "h", "t", Histogram::new(&[10]), 8)
            .with_label("x")
            .observe(3);
        r.counter_family2("cf2", "c", "a", "b", 8)
            .with_labels("x", "y")
            .add(2);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("gf{t=\"x\"}"), "{text}");
        assert!(text.contains("hf{t=\"x\"}"), "{text}");
        assert!(text.contains("cf2{a=\"x\",b=\"y\"}"), "{text}");
        let jsonr = snap.render_json();
        assert!(jsonr.contains("\"gauge\":5"), "{jsonr}");
        assert!(jsonr.contains("\"p50\":10"), "{jsonr}");
        assert!(jsonr.contains("\"values\":[\"x\",\"y\"]"), "{jsonr}");
        assert_eq!(jsonr.matches('{').count(), jsonr.matches('}').count());
        assert_eq!(jsonr.matches('[').count(), jsonr.matches(']').count());
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs_selftest_total", "test counter");
        c.inc();
        assert!(global().snapshot().counter("obs_selftest_total").unwrap() >= 1);
    }

    #[test]
    fn snapshot_extend_concatenates() {
        let a = Registry::new();
        a.counter("a", "").inc();
        let b = Registry::new();
        b.counter("b", "").inc();
        let mut s = a.snapshot();
        s.extend(b.snapshot());
        assert_eq!(s.metrics.len(), 2);
    }
}
