//! The metrics registry: named metric families and their exporters.
//!
//! A [`Registry`] maps names to metrics. Registration is get-or-create
//! and returns an `Arc` handle; the hot path records through the handle
//! without touching the registry again, so the registry lock is only
//! taken at setup and export time ("lock-light").
//!
//! Exporters render a point-in-time [`Snapshot`] three ways:
//!
//! * [`render_text`](Snapshot::render_text) — a human-readable dump for
//!   terminals (`cpplookup-cli stats`),
//! * [`render_prometheus`](Snapshot::render_prometheus) — the
//!   Prometheus text exposition format,
//! * [`render_json`](Snapshot::render_json) — a JSON object for
//!   machine consumers (`cpplookup-cli batch --metrics`, the bench
//!   report).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A labelled family of counters: one [`Counter`] per label value,
/// created on first use (`lookup_shard_hits_total{shard="3"}`).
///
/// The family holds one `RwLock` taken for writing only when a new
/// label value appears; steady-state lookups are shared reads. Hot
/// paths should cache the returned `Arc` and skip the map entirely.
#[derive(Debug)]
pub struct Family {
    label: String,
    series: RwLock<BTreeMap<String, Arc<Counter>>>,
}

impl Family {
    fn new(label: &str) -> Self {
        Family {
            label: label.to_owned(),
            series: RwLock::new(BTreeMap::new()),
        }
    }

    /// The label name shared by every series in the family.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The counter for `value`, creating it on first use.
    pub fn with_label(&self, value: &str) -> Arc<Counter> {
        if let Some(c) = self.series.read().expect("family lock poisoned").get(value) {
            return Arc::clone(c);
        }
        let mut series = self.series.write().expect("family lock poisoned");
        Arc::clone(
            series
                .entry(value.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// `(label value, count)` pairs, sorted by label value.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.series
            .read()
            .expect("family lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Family(Arc<Family>),
}

#[derive(Debug)]
struct Registered {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics with get-or-create registration.
///
/// Each [`LookupEngine`](../cpplookup_core/struct.LookupEngine.html)
/// owns one; process-wide metrics (propagation counters, baseline
/// comparisons) live in [`global()`].
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Vec<Registered>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        find: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            return find(&existing.metric).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with a different type")
            });
        }
        let (handle, metric) = make();
        inner.push(Registered {
            name: name.to_owned(),
            help: help.to_owned(),
            metric,
        });
        handle
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, registering `hist` on first use (the
    /// builder is ignored when the name already exists).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram(&self, name: &str, help: &str, hist: Histogram) -> Arc<Histogram> {
        let mut hist = Some(hist);
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(hist.take().expect("make runs at most once"));
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// The counter family named `name` with label key `label`,
    /// registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter_family(&self, name: &str, help: &str, label: &str) -> Arc<Family> {
        self.get_or_insert(
            name,
            help,
            |m| match m {
                Metric::Family(f) => Some(Arc::clone(f)),
                _ => None,
            },
            || {
                let f = Arc::new(Family::new(label));
                (Arc::clone(&f), Metric::Family(f))
            },
        )
    }

    /// A point-in-time snapshot of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("registry lock poisoned");
        Snapshot {
            metrics: inner
                .iter()
                .map(|r| MetricSnapshot {
                    name: r.name.clone(),
                    help: r.help.clone(),
                    value: match &r.metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        Metric::Family(f) => MetricValue::Family {
                            label: f.label().to_owned(),
                            series: f.snapshot(),
                        },
                    },
                })
                .collect(),
        }
    }
}

/// The process-wide registry for metrics that belong to no particular
/// engine: propagation work counters, baseline comparison counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's state inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The registered name (Prometheus-style, e.g.
    /// `engine_cache_hits_total`).
    pub name: String,
    /// The registered help text.
    pub help: String,
    /// The value, by metric kind.
    pub value: MetricValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's buckets.
    Histogram(HistogramSnapshot),
    /// A labelled family's series.
    Family {
        /// The label key.
        label: String,
        /// `(label value, count)` pairs.
        series: Vec<(String, u64)>,
    },
}

/// A point-in-time copy of a [`Registry`], ready for rendering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// The metrics, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks up a plain counter by name (convenience for tests and
    /// assertions).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Appends `other`'s metrics (used to combine an engine's registry
    /// with the global one for a single export).
    pub fn extend(&mut self, other: Snapshot) {
        self.metrics.extend(other.metrics);
    }

    /// A human-readable dump, one metric per line; histograms show
    /// count/mean/p50/p99 instead of raw buckets.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{:<40} {v}\n", m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:<40} {v}\n", m.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<40} count={} mean={:.0} p50≤{} p99≤{}\n",
                        m.name,
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                    ));
                }
                MetricValue::Family { label, series } => {
                    for (value, count) in series {
                        out.push_str(&format!(
                            "{:<40} {count}\n",
                            format!("{}{{{label}=\"{value}\"}}", m.name)
                        ));
                    }
                }
            }
        }
        out
    }

    /// The Prometheus text exposition format (`# HELP`/`# TYPE`
    /// comments, cumulative `_bucket{le=…}` histogram series).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {v}\n", m.name, m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", m.name, m.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {} histogram\n", m.name));
                    let mut cumulative = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cumulative = cumulative.saturating_add(*c);
                        let le = h
                            .bounds
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_owned());
                        out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cumulative}\n", m.name));
                    }
                    out.push_str(&format!("{}_sum {}\n", m.name, h.sum));
                    out.push_str(&format!("{}_count {}\n", m.name, h.count));
                }
                MetricValue::Family { label, series } => {
                    out.push_str(&format!("# TYPE {} counter\n", m.name));
                    for (value, count) in series {
                        out.push_str(&format!(
                            "{}{{{label}=\"{}\"}} {count}\n",
                            m.name,
                            json::escape_fragment(value)
                        ));
                    }
                }
            }
        }
        out
    }

    /// A JSON object: `{"metrics":[{"name":…,"type":…,…}, …]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::escape_into(&m.name, &mut out);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    ));
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match h.bounds.get(j) {
                            Some(b) => out.push_str(&format!("{{\"le\":{b},\"count\":{c}}}")),
                            None => out.push_str(&format!("{{\"le\":\"inf\",\"count\":{c}}}")),
                        }
                    }
                    out.push_str("]}");
                }
                MetricValue::Family { label, series } => {
                    out.push_str(",\"type\":\"counter\",\"label\":");
                    json::escape_into(label, &mut out);
                    out.push_str(",\"series\":[");
                    for (j, (value, count)) in series.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"value\":");
                        json::escape_into(value, &mut out);
                        out.push_str(&format!(",\"count\":{count}}}"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits");
        let b = r.counter("hits_total", "hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same underlying counter");
        assert_eq!(r.snapshot().counter("hits_total"), Some(2));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "");
        r.gauge("x", "");
    }

    #[test]
    fn family_series_are_independent() {
        let r = Registry::new();
        let f = r.counter_family("shard_hits_total", "per-shard hits", "shard");
        f.with_label("0").add(3);
        f.with_label("1").inc();
        f.with_label("0").inc();
        assert_eq!(f.snapshot(), vec![("0".to_owned(), 4), ("1".to_owned(), 1)]);
    }

    #[test]
    fn renderers_cover_every_metric_kind() {
        let r = Registry::new();
        r.counter("c_total", "a counter").add(5);
        r.gauge("g", "a gauge").set(-2);
        r.histogram("h_ns", "a histogram", Histogram::new(&[10, 100]))
            .observe(7);
        r.counter_family("f_total", "a family", "shard")
            .with_label("3")
            .inc();
        let snap = r.snapshot();

        let text = snap.render_text();
        assert!(text.contains("c_total"), "{text}");
        assert!(text.contains("-2"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("f_total{shard=\"3\"}"), "{text}");

        let prom = snap.render_prometheus();
        assert!(prom.contains("# TYPE c_total counter"), "{prom}");
        assert!(prom.contains("c_total 5"), "{prom}");
        assert!(prom.contains("h_ns_bucket{le=\"10\"} 1"), "{prom}");
        assert!(prom.contains("h_ns_bucket{le=\"+Inf\"} 1"), "{prom}");
        assert!(prom.contains("h_ns_sum 7"), "{prom}");
        assert!(prom.contains("f_total{shard=\"3\"} 1"), "{prom}");

        let jsonr = snap.render_json();
        assert!(jsonr.starts_with("{\"metrics\":["), "{jsonr}");
        assert!(jsonr.contains("\"name\":\"h_ns\""), "{jsonr}");
        assert!(jsonr.contains("\"le\":\"inf\""), "{jsonr}");
        assert!(jsonr.contains("\"value\":-2"), "{jsonr}");
        assert_eq!(jsonr.matches('{').count(), jsonr.matches('}').count());
        assert_eq!(jsonr.matches('[').count(), jsonr.matches(']').count());
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = Registry::new();
        r.counter("c", "").add(1);
        r.gauge("g", "").set(9);
        r.histogram("h", "", Histogram::new(&[1])).observe(1);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(1));
        assert_eq!(s.gauge("g"), Some(9));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.counter("g"), None, "kind-checked lookup");
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs_selftest_total", "test counter");
        c.inc();
        assert!(global().snapshot().counter("obs_selftest_total").unwrap() >= 1);
    }

    #[test]
    fn snapshot_extend_concatenates() {
        let a = Registry::new();
        a.counter("a", "").inc();
        let b = Registry::new();
        b.counter("b", "").inc();
        let mut s = a.snapshot();
        s.extend(b.snapshot());
        assert_eq!(s.metrics.len(), 2);
    }
}
