//! Minimal JSON string escaping, shared by the exporters.
//!
//! The repo deliberately carries no serde dependency; every JSON
//! producer (`ChgSpec::to_json`, the exporters here) hand-rolls its
//! output and routes strings through these helpers.

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a quoted, escaped JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// Escapes a fragment for embedding inside a Prometheus label value:
/// backslash, double quote, and newline get backslash escapes. No
/// surrounding quotes are added.
pub fn escape_fragment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("tab\there"), "\"tab\\there\"");
        assert_eq!(escape("nl\n"), "\"nl\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn fragment_keeps_quotes_off() {
        assert_eq!(escape_fragment("sh\"ard"), "sh\\\"ard");
        assert_eq!(escape_fragment("plain"), "plain");
    }
}
