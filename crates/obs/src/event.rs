//! Structured query-trace events and pluggable sinks.
//!
//! Metrics aggregate; events narrate. A sink registered with the
//! engine receives one [`Event`] per interesting moment of a query or
//! edit — query start/end, per-shard cache hit/miss, propagation node
//! visits, ambiguity encounters, and edit-applied records carrying
//! dirty-set sizes. Identifiers are raw `u32` indices (the obs crate
//! has no access to the hierarchy's name tables); consumers that want
//! names resolve them against their own `Chg`.
//!
//! The engine holds sinks as `Arc<dyn EventSink>` and calls
//! [`record`](EventSink::record) inline on the query path, so sinks
//! must be cheap and `Send + Sync`. When no sink is installed the
//! engine skips event construction entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json;

/// One structured observation from the lookup engine.
///
/// `class`/`member` fields are the engine's raw index values
/// (`ClassId`/`MemberId` interiors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A lookup began.
    QueryStart {
        /// Queried class index.
        class: u32,
        /// Queried member-name index.
        member: u32,
    },
    /// A lookup finished.
    QueryEnd {
        /// Queried class index.
        class: u32,
        /// Queried member-name index.
        member: u32,
        /// `"resolved"`, `"ambiguous"`, or `"not_found"`.
        outcome: &'static str,
        /// Wall-clock duration, 0 when the engine's timing option is
        /// off.
        nanos: u64,
    },
    /// The memo cache answered a query.
    CacheHit {
        /// Index of the shard that held the entry.
        shard: usize,
    },
    /// The memo cache had no entry; propagation ran.
    CacheMiss {
        /// Index of the shard that missed.
        shard: usize,
    },
    /// Propagation visited a class node (one Figure-8 step).
    NodeVisited {
        /// Visited class index.
        class: u32,
        /// Member-name index being propagated.
        member: u32,
    },
    /// A lookup produced an ambiguous (blue, |set| > 1) entry.
    AmbiguityEncountered {
        /// Class whose entry is ambiguous.
        class: u32,
        /// Member-name index.
        member: u32,
    },
    /// An edit batch was applied to the engine.
    EditApplied {
        /// Number of primitive edits in the batch.
        edits: usize,
        /// Size of the dirty closure (all (class, member) pairs whose
        /// entries may have changed).
        dirty: usize,
        /// Cached entries actually dropped from the memo cache.
        invalidated: usize,
        /// Entries recomputed eagerly (complete backings only).
        recomputed: usize,
        /// Engine generation after the edit.
        generation: u64,
    },
}

impl Event {
    /// A short machine-readable tag naming the variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueryStart { .. } => "query_start",
            Event::QueryEnd { .. } => "query_end",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::NodeVisited { .. } => "node_visited",
            Event::AmbiguityEncountered { .. } => "ambiguity",
            Event::EditApplied { .. } => "edit_applied",
        }
    }

    /// The event as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"event\":");
        json::escape_into(self.kind(), &mut out);
        match self {
            Event::QueryStart { class, member } => {
                out.push_str(&format!(",\"class\":{class},\"member\":{member}"));
            }
            Event::QueryEnd {
                class,
                member,
                outcome,
                nanos,
            } => {
                out.push_str(&format!(
                    ",\"class\":{class},\"member\":{member},\"outcome\":\"{outcome}\",\"nanos\":{nanos}"
                ));
            }
            Event::CacheHit { shard } | Event::CacheMiss { shard } => {
                out.push_str(&format!(",\"shard\":{shard}"));
            }
            Event::NodeVisited { class, member }
            | Event::AmbiguityEncountered { class, member } => {
                out.push_str(&format!(",\"class\":{class},\"member\":{member}"));
            }
            Event::EditApplied {
                edits,
                dirty,
                invalidated,
                recomputed,
                generation,
            } => {
                out.push_str(&format!(
                    ",\"edits\":{edits},\"dirty\":{dirty},\"invalidated\":{invalidated},\"recomputed\":{recomputed},\"generation\":{generation}"
                ));
            }
        }
        out.push('}');
        out
    }
}

/// A consumer of engine events.
///
/// Implementations are called inline from query hot paths and must be
/// cheap; anything expensive (I/O, formatting) belongs behind a buffer
/// or a channel inside the sink.
pub trait EventSink: Send + Sync {
    /// Receives one event.
    fn record(&self, event: &Event);
}

/// A sink that drops everything (the explicit "no tracing" choice).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// A sink that counts events without storing them — for overhead
/// measurement and smoke tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    count: AtomicU64,
}

impl CountingSink {
    /// A fresh sink at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl EventSink for CountingSink {
    fn record(&self, _event: &Event) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A sink that buffers events in memory, capped so a runaway workload
/// cannot exhaust the process. Events past the cap are counted but
/// dropped.
#[derive(Debug)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    cap: usize,
    dropped: AtomicU64,
}

impl MemorySink {
    /// The default buffer cap (events).
    pub const DEFAULT_CAP: usize = 1 << 16;

    /// A sink with the default cap.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// A sink that keeps at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        MemorySink {
            events: Mutex::new(Vec::new()),
            cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// A copy of the buffered events, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock poisoned").clone()
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink lock poisoned"))
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        let mut events = self.events.lock().expect("sink lock poisoned");
        if events.len() < self.cap {
            events.push(event.clone());
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_json_objects() {
        let cases = [
            Event::QueryStart {
                class: 1,
                member: 2,
            },
            Event::QueryEnd {
                class: 1,
                member: 2,
                outcome: "resolved",
                nanos: 512,
            },
            Event::CacheHit { shard: 3 },
            Event::CacheMiss { shard: 0 },
            Event::NodeVisited {
                class: 4,
                member: 2,
            },
            Event::AmbiguityEncountered {
                class: 9,
                member: 1,
            },
            Event::EditApplied {
                edits: 1,
                dirty: 12,
                invalidated: 12,
                recomputed: 0,
                generation: 2,
            },
        ];
        for e in &cases {
            let j = e.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains(&format!("\"event\":\"{}\"", e.kind())), "{j}");
            assert_eq!(j.matches('{').count(), j.matches('}').count());
        }
        assert!(cases[6].to_json().contains("\"dirty\":12"));
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::with_capacity(2);
        sink.record(&Event::CacheHit { shard: 0 });
        sink.record(&Event::CacheMiss { shard: 1 });
        sink.record(&Event::CacheHit { shard: 2 });
        assert_eq!(sink.events().len(), 2, "cap enforced");
        assert_eq!(sink.dropped(), 1);
        let drained = sink.take();
        assert_eq!(drained[0], Event::CacheHit { shard: 0 });
        assert!(sink.events().is_empty());
    }

    #[test]
    fn counting_sink_counts() {
        let sink = CountingSink::new();
        for _ in 0..5 {
            sink.record(&Event::CacheHit { shard: 0 });
        }
        assert_eq!(sink.count(), 5);
        NullSink.record(&Event::CacheHit { shard: 0 });
    }
}
