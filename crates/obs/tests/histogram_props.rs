//! Property tests for histogram merging and quantile estimation, with
//! shards recorded concurrently — the exact shape the server's loadgen
//! and per-tenant histogram families rely on: per-thread histograms
//! merged into one at export time.

use cpplookup_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Records each shard's observations on its own thread, snapshots after
/// joining, and returns the per-shard snapshots.
fn record_sharded(bounds: &[u64], shards: &[Vec<u64>]) -> Vec<HistogramSnapshot> {
    let hists: Vec<Histogram> = shards.iter().map(|_| Histogram::new(bounds)).collect();
    std::thread::scope(|s| {
        for (h, values) in hists.iter().zip(shards) {
            s.spawn(move || {
                for &v in values {
                    h.observe(v);
                }
            });
        }
    });
    hists.iter().map(|h| h.snapshot()).collect()
}

proptest! {
    /// A merge of concurrently-recorded shards holds exactly the union
    /// of the observations, and the merged quantile estimate brackets
    /// the per-shard quantile estimates: bucket-upper-bound quantiles
    /// are monotone in the data, so a pooled q-quantile can never fall
    /// below every shard's nor above every shard's.
    #[test]
    fn merged_quantiles_bracket_per_shard_quantiles(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..5_000, 1..80),
            1..6,
        ),
        q in 0.0f64..1.0,
    ) {
        let bounds = [8u64, 64, 512, 4096, 32_768];
        let snaps = record_sharded(&bounds, &shards);
        let mut merged = Histogram::new(&bounds).snapshot();
        for s in &snaps {
            merged.merge(s);
        }
        let total: u64 = shards.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(merged.count, total, "no observation lost in merge");
        let sum: u64 = shards.iter().flatten().sum();
        prop_assert_eq!(merged.sum, sum);
        let shard_qs: Vec<u64> = snaps.iter().map(|s| s.quantile(q)).collect();
        let merged_q = merged.quantile(q);
        let lo = *shard_qs.iter().min().unwrap();
        let hi = *shard_qs.iter().max().unwrap();
        prop_assert!(
            lo <= merged_q && merged_q <= hi,
            "merged q={} estimate {} outside shard bracket [{}, {}]",
            q, merged_q, lo, hi
        );
    }

    /// Merge is order-independent: folding the shards in any rotation
    /// yields identical buckets, so exporters may merge in whatever
    /// order workers finish.
    #[test]
    fn merge_is_commutative(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 0..40),
            2..5,
        ),
        rot in 0usize..4,
    ) {
        let bounds = [16u64, 256, 4096];
        let snaps = record_sharded(&bounds, &shards);
        let mut forward = Histogram::new(&bounds).snapshot();
        for s in &snaps {
            forward.merge(s);
        }
        let mut rotated = Histogram::new(&bounds).snapshot();
        let k = rot % snaps.len();
        for s in snaps[k..].iter().chain(&snaps[..k]) {
            rotated.merge(s);
        }
        prop_assert_eq!(forward, rotated);
    }

    /// The quantile estimate is always one of the bucket upper bounds
    /// and is monotone in q.
    #[test]
    fn quantile_is_monotone_over_bucket_bounds(
        values in proptest::collection::vec(0u64..100_000, 1..120),
    ) {
        let bounds = [10u64, 100, 1000, 10_000];
        let h = Histogram::new(&bounds);
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        let mut last = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = s.quantile(q);
            prop_assert!(
                bounds.contains(&est) || est == u64::MAX,
                "estimate {est} is not a bucket bound"
            );
            prop_assert!(est >= last, "quantile must be monotone in q");
            last = est;
        }
    }
}
