//! Robustness: the frontend never panics, whatever bytes it is fed.

use cpplookup_frontend::{analyze, lex, parser::parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode soup.
    #[test]
    fn lexer_and_parser_survive_anything(src in "\\PC{0,200}") {
        let (tokens, _) = lex(&src);
        prop_assert!(!tokens.is_empty(), "EOF token always present");
        let _ = parse(&src);
        let _ = analyze(&src);
    }

    /// Token-shaped soup: fragments of real C++ stitched together at
    /// random — much better at reaching deep parser paths.
    #[test]
    fn parser_survives_cpp_fragments(parts in proptest::collection::vec(
        prop_oneof![
            Just("class"), Just("struct"), Just("namespace"), Just("virtual"),
            Just("public"), Just("private"), Just("protected"), Just("static"),
            Just("typedef"), Just("using"), Just("enum"), Just("const"),
            Just("A"), Just("B"), Just("m"), Just("int"), Just("void"),
            Just("{"), Just("}"), Just("("), Just(")"), Just(";"), Just(":"),
            Just("::"), Just(","), Just("<"), Just(">"), Just("*"), Just("&"),
            Just("="), Just("->"), Just("."), Just("~"), Just("0"), Just("42"),
        ],
        0..60,
    )) {
        let src = parts.join(" ");
        let _ = analyze(&src);
    }

    /// Well-formed-ish programs mutated by deleting a random slice still
    /// produce an analysis (possibly with diagnostics) rather than a
    /// panic.
    #[test]
    fn truncated_programs_are_survivable(cut_start in 0usize..300, cut_len in 0usize..80) {
        let base = "namespace n { struct A { int m; void f() { m = 1; } };\n\
                    struct B : virtual A { static int s; enum { E1, E2 }; };\n\
                    struct C : B, A {}; }\n\
                    n::C obj;\n\
                    int main() { obj.m; n::A::s; obj.bad; }";
        let mut s = base.to_owned();
        let start = cut_start.min(s.len());
        let end = (start + cut_len).min(s.len());
        // Only cut at char boundaries (ASCII source, always fine).
        s.replace_range(start..end, "");
        let _ = analyze(&s);
    }
}
