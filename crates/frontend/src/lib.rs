//! A mini-C++ front end for driving member lookup the way a real
//! compiler does.
//!
//! The paper's algorithm lives inside a C++ front end: class declarations
//! are parsed, a class hierarchy graph is built, and every member access
//! expression `x.m` / `p->m` / `X::m` triggers a lookup (plus the
//! post-lookup access-rights check, plus the unqualified-name resolution
//! of Section 6). This crate provides exactly that pipeline for a subset
//! of C++ rich enough to express every program in the paper:
//!
//! * [`parser::parse`] — source → AST ([`ast`]), with resilient error
//!   recovery and source-anchored [`Diagnostic`]s,
//! * [`lower`](lower::lower) — AST → [`cpplookup_chg::Chg`],
//! * [`analyze`] — the whole pipeline: parse, lower, build the lookup
//!   table, resolve every member access in every function body.
//!
//! # Examples
//!
//! ```
//! use cpplookup_frontend::{analyze, QueryResult};
//!
//! let source = "struct Top { void hello(); };\n\
//!               struct Bottom : Top {};\n\
//!               int main() { Bottom b; b.hello(); }\n";
//! let analysis = analyze(source);
//! assert!(analysis.diagnostics.is_empty());
//! assert!(matches!(analysis.queries[0].result, QueryResult::Resolved { .. }));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod diagnostics;
mod lexer;
pub mod lower;
pub mod parser;
mod resolve;
pub mod scopes;
pub mod span;
pub mod token;

pub use diagnostics::{render_all, Diagnostic, Severity};
pub use lexer::lex;
pub use resolve::{analyze, Analysis, MemberQuery, QueryResult};
pub use span::{LineCol, LineMap, Span};
