//! Lowering the AST to a class hierarchy graph.
//!
//! C++ requires base classes to be *complete* (defined) at the point of
//! use, which conveniently guarantees acyclicity: a class can only
//! inherit from classes defined earlier in the translation unit. The
//! lowering enforces exactly that and reports everything else (unknown or
//! incomplete bases, duplicate bases, duplicate definitions, conflicting
//! members) as source-anchored diagnostics.

use std::collections::{HashMap, HashSet, VecDeque};

use cpplookup_chg::{Access, Chg, ChgBuilder, ChgError, Inheritance, MemberDecl};

use crate::ast::Program;
use crate::diagnostics::Diagnostic;
use crate::scopes::resolve_in_scopes;

/// Lowers a parsed program to a [`Chg`].
///
/// Always returns a graph built from the well-formed parts of the
/// program; problems are reported in the diagnostics.
pub fn lower(program: &Program) -> (Chg, Vec<Diagnostic>) {
    let mut b = ChgBuilder::new();
    let mut diags = Vec::new();

    // Register every class name up front so forward references resolve,
    // and detect duplicate definitions.
    let mut defined: HashSet<String> = HashSet::new();
    for class in &program.classes {
        b.class(&class.name);
        if !class.forward && !defined.insert(class.name.clone()) {
            diags.push(Diagnostic::error(
                class.name_span,
                format!("redefinition of class `{}`", class.name),
            ));
        }
    }

    // Lower definitions in order, enforcing define-before-inherit.
    let mut complete: HashSet<String> = HashSet::new();
    // Name-level views of what has been lowered so far, for resolving
    // using-declarations without a finished graph.
    let mut direct_bases_of: HashMap<String, Vec<String>> = HashMap::new();
    let mut declares: HashMap<(String, String), MemberDecl> = HashMap::new();
    for class in &program.classes {
        if class.forward {
            continue;
        }
        let id = b.class(&class.name);
        for base in &class.bases {
            // Resolve the written base name through the enclosing
            // namespaces; prefer a scope level where the class is
            // complete, falling back to any declaration for diagnostics.
            let resolved =
                resolve_in_scopes(&class.scope, &base.name, |cand| complete.contains(cand))
                    .or_else(|| {
                        resolve_in_scopes(&class.scope, &base.name, |cand| defined.contains(cand))
                    });
            let Some(base_name) = resolved else {
                diags.push(Diagnostic::error(
                    base.span,
                    format!("unknown base class `{}`", base.name),
                ));
                continue;
            };
            if !complete.contains(&base_name) {
                diags.push(Diagnostic::error(
                    base.span,
                    format!("incomplete base class `{}`", base.name),
                ));
                continue;
            }
            let base_id = b.class(&base_name);
            let inh = if base.virtual_ {
                Inheritance::Virtual
            } else {
                Inheritance::NonVirtual
            };
            // C++ default base access: private for `class`, public for
            // `struct`.
            let access = base.access.unwrap_or(if class.is_struct {
                Access::Public
            } else {
                Access::Private
            });
            match b.derive_with_access(id, base_id, inh, access) {
                Ok(()) => direct_bases_of
                    .entry(class.name.clone())
                    .or_default()
                    .push(base_name),
                Err(e) => diags.push(Diagnostic::error(base.span, e.to_string())),
            }
        }
        for member in &class.members {
            let decl = MemberDecl::with_access(member.kind, member.access);
            match b.member_with(id, &member.name, decl) {
                Ok(_) => {
                    declares.insert((class.name.clone(), member.name.clone()), decl);
                }
                Err(ChgError::ConflictingMember { .. }) => {
                    diags.push(Diagnostic::error(
                        member.span,
                        format!(
                            "member `{}` redeclared with a conflicting kind in `{}`",
                            member.name, class.name
                        ),
                    ));
                }
                Err(e) => diags.push(Diagnostic::error(member.span, e.to_string())),
            }
        }
        // Using-declarations: `using Base::m;` re-declares the inherited
        // member in this class's own scope (resolving ambiguities).
        for u in &class.usings {
            let Some(base_name) =
                resolve_in_scopes(&class.scope, &u.base, |cand| complete.contains(cand))
            else {
                diags.push(Diagnostic::error(
                    u.span,
                    format!("unknown class `{}` in using-declaration", u.base),
                ));
                continue;
            };
            // The named class must be a (transitive) base of this class.
            let mut reachable = false;
            let mut queue: VecDeque<&String> = direct_bases_of
                .get(&class.name)
                .map(|v| v.iter().collect())
                .unwrap_or_default();
            let mut seen: HashSet<&String> = queue.iter().copied().collect();
            let mut ancestors: Vec<&String> = Vec::new();
            while let Some(cur) = queue.pop_front() {
                ancestors.push(cur);
                if *cur == base_name {
                    reachable = true;
                }
                if let Some(next) = direct_bases_of.get(cur) {
                    for n in next {
                        if seen.insert(n) {
                            queue.push_back(n);
                        }
                    }
                }
            }
            if !reachable {
                diags.push(Diagnostic::error(
                    u.span,
                    format!("`{}` is not a base of `{}`", u.base, class.name),
                ));
                continue;
            }
            // Find the member's declaration starting from the named base,
            // breadth-first towards its own bases.
            let mut origin: Option<(String, MemberDecl)> = None;
            let mut queue: VecDeque<String> = VecDeque::new();
            queue.push_back(base_name.clone());
            let mut seen: HashSet<String> = HashSet::new();
            while let Some(cur) = queue.pop_front() {
                if !seen.insert(cur.clone()) {
                    continue;
                }
                if let Some(decl) = declares.get(&(cur.clone(), u.member.clone())) {
                    origin = Some((cur, *decl));
                    break;
                }
                if let Some(next) = direct_bases_of.get(&cur) {
                    queue.extend(next.iter().cloned());
                }
            }
            let Some((origin_name, found)) = origin else {
                diags.push(Diagnostic::error(
                    u.span,
                    format!("`{}` has no member named `{}`", u.base, u.member),
                ));
                continue;
            };
            let origin_id = b.class(&origin_name);
            let decl = MemberDecl::using_from(found.kind, u.access, origin_id);
            match b.member_with(id, &u.member, decl) {
                Ok(_) => {
                    declares.insert((class.name.clone(), u.member.clone()), decl);
                }
                Err(e) => diags.push(Diagnostic::error(u.span, e.to_string())),
            }
        }
        complete.insert(class.name.clone());
    }

    match b.finish() {
        Ok(chg) => (chg, diags),
        Err(e) => {
            // Unreachable given define-before-inherit, but degrade
            // gracefully rather than panic.
            diags.push(Diagnostic::error(
                Default::default(),
                format!("internal lowering error: {e}"),
            ));
            (
                ChgBuilder::new().finish().expect("empty graph is valid"),
                diags,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use cpplookup_chg::MemberKind;

    fn lowered(src: &str) -> (Chg, Vec<Diagnostic>) {
        let (program, pdiags) = parse(src);
        assert!(pdiags.is_empty(), "parse diagnostics: {pdiags:?}");
        lower(&program)
    }

    #[test]
    fn fig2_from_source_matches_fixture() {
        let (g, diags) = lowered(
            "class A { public: void m(); };\n\
             class B : public A {};\n\
             class C : virtual public B {};\n\
             class D : virtual public B { public: void m(); };\n\
             class E : public C, public D {};\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let fixture = cpplookup_chg::fixtures::fig2();
        assert_eq!(g.class_count(), fixture.class_count());
        assert_eq!(g.edge_count(), fixture.edge_count());
        let e = g.class_by_name("E").unwrap();
        let bb = g.class_by_name("B").unwrap();
        assert!(g.is_virtual_base_of(bb, e));
    }

    #[test]
    fn unknown_base_diagnosed() {
        let (g, diags) = lowered("class D : public Mystery { };");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown base class `Mystery`"));
        assert_eq!(g.class_count(), 1);
    }

    #[test]
    fn incomplete_base_diagnosed() {
        let (_, diags) = lowered("class B; class D : public B {}; class B {};");
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].message.contains("incomplete base class `B`"),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_definition_diagnosed() {
        let (_, diags) = lowered("class A {}; class A { int x; };");
        assert!(diags.iter().any(|d| d.message.contains("redefinition")));
    }

    #[test]
    fn duplicate_base_diagnosed() {
        let (_, diags) = lowered("class A {}; class D : public A, private A {};");
        assert!(
            diags.iter().any(|d| d.message.contains("more than once")),
            "{diags:?}"
        );
    }

    #[test]
    fn default_base_access_differs_for_class_and_struct() {
        let (g, diags) = lowered("class A {}; class C : A {}; struct S : A {};");
        assert!(diags.is_empty());
        let a = g.class_by_name("A").unwrap();
        let c = g.class_by_name("C").unwrap();
        let s = g.class_by_name("S").unwrap();
        assert_eq!(g.edge_spec(a, c).unwrap().access, Access::Private);
        assert_eq!(g.edge_spec(a, s).unwrap().access, Access::Public);
    }

    #[test]
    fn member_kinds_survive_lowering() {
        let (g, diags) =
            lowered("struct S { static int s; enum { RED }; typedef int T; void f(); };");
        assert!(diags.is_empty());
        let s = g.class_by_name("S").unwrap();
        let kind = |n: &str| g.member_decl(s, g.member_by_name(n).unwrap()).unwrap().kind;
        assert_eq!(kind("s"), MemberKind::StaticData);
        assert_eq!(kind("RED"), MemberKind::Enumerator);
        assert_eq!(kind("T"), MemberKind::TypeName);
        assert_eq!(kind("f"), MemberKind::Function);
    }

    #[test]
    fn conflicting_member_diagnosed() {
        let (_, diags) = lowered("struct S { int m; void m(); };");
        assert!(diags.iter().any(|d| d.message.contains("conflicting")));
    }

    #[test]
    fn overloads_are_fine() {
        let (g, diags) = lowered("struct S { void f(); void f(); };");
        assert!(diags.is_empty());
        let s = g.class_by_name("S").unwrap();
        assert_eq!(g.declared_members(s).len(), 1);
    }
}

#[cfg(test)]
mod using_decl_tests {
    use super::*;
    use crate::parser::parse;
    use cpplookup_chg::MemberKind;
    use cpplookup_core::{LookupOutcome, LookupTable};

    fn lowered(src: &str) -> (Chg, Vec<Diagnostic>) {
        let (program, pdiags) = parse(src);
        assert!(pdiags.is_empty(), "parse diagnostics: {pdiags:?}");
        lower(&program)
    }

    #[test]
    fn using_resolves_a_diamond_ambiguity() {
        let with_using = "struct A { int m; };\n\
                          struct B : A {}; struct C : A {};\n\
                          struct D : B, C { using B::m; };\n";
        let (g, diags) = lowered(with_using);
        assert!(diags.is_empty(), "{diags:?}");
        let d = g.class_by_name("D").unwrap();
        let m = g.member_by_name("m").unwrap();
        let t = LookupTable::build(&g);
        match t.lookup(d, m) {
            LookupOutcome::Resolved { class, .. } => {
                // The using-declaration counts as a declaration in D.
                assert_eq!(class, d);
            }
            other => panic!("using should disambiguate, got {other:?}"),
        }
        // The declaration remembers its origin.
        let decl = g.member_decl(d, m).unwrap();
        assert_eq!(decl.via_using, Some(g.class_by_name("A").unwrap()));
        // Without the using-declaration the lookup is ambiguous.
        let (g2, _) = lowered(
            "struct A { int m; };\n\
             struct B : A {}; struct C : A {};\n\
             struct D : B, C {};\n",
        );
        let d2 = g2.class_by_name("D").unwrap();
        let m2 = g2.member_by_name("m").unwrap();
        assert!(matches!(
            LookupTable::build(&g2).lookup(d2, m2),
            LookupOutcome::Ambiguous { .. }
        ));
    }

    #[test]
    fn using_preserves_kind_and_staticness() {
        let (g, diags) = lowered(
            "struct A { static int s; };\n\
             struct B : A { using A::s; };\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let b = g.class_by_name("B").unwrap();
        let s = g.member_by_name("s").unwrap();
        let decl = g.member_decl(b, s).unwrap();
        assert_eq!(decl.kind, MemberKind::StaticData);
    }

    #[test]
    fn using_changes_access() {
        // The classic re-exposure idiom: privately inherit, re-publish
        // one member.
        let src = "struct B { int keep; int hide; };\n\
                   struct D : private B { public: using B::keep; };\n\
                   int main() { D d; d.keep; d.hide; }\n";
        let (program, _) = parse(src);
        let analysis = crate::resolve::analyze(src);
        let _ = program;
        let keep = analysis
            .queries
            .iter()
            .find(|q| q.description == "d.keep")
            .unwrap();
        assert!(
            matches!(keep.result, crate::resolve::QueryResult::Resolved { .. }),
            "{:?}",
            keep.result
        );
        let hide = analysis
            .queries
            .iter()
            .find(|q| q.description == "d.hide")
            .unwrap();
        assert!(
            matches!(
                hide.result,
                crate::resolve::QueryResult::AccessDenied { .. }
            ),
            "{:?}",
            hide.result
        );
    }

    #[test]
    fn using_unknown_base_or_member_diagnosed() {
        let (_, diags) = lowered("struct D { using Nope::m; };");
        assert!(diags.iter().any(|d| d.message.contains("unknown class")));
        let (_, diags) = lowered("struct A {}; struct D : A { using A::ghost; };");
        assert!(
            diags.iter().any(|d| d.message.contains("no member named")),
            "{diags:?}"
        );
        // Naming a non-base is also an error.
        let (_, diags) = lowered("struct A { int m; }; struct D { using A::m; };");
        assert!(
            diags.iter().any(|d| d.message.contains("not a base")),
            "{diags:?}"
        );
    }

    #[test]
    fn using_finds_members_of_indirect_bases() {
        let (g, diags) = lowered(
            "struct Root { int deep; };\n\
             struct Mid : Root {};\n\
             struct B : Mid {}; struct C : Mid {};\n\
             struct D : B, C { using B::deep; };\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let d = g.class_by_name("D").unwrap();
        let deep = g.member_by_name("deep").unwrap();
        let t = LookupTable::build(&g);
        assert!(t.lookup(d, deep).is_resolved());
        let decl = g.member_decl(d, deep).unwrap();
        assert_eq!(decl.via_using, Some(g.class_by_name("Root").unwrap()));
    }
}
