//! Recursive-descent parser for the mini-C++ subset.
//!
//! The parser is resilient: every syntax error produces a [`Diagnostic`]
//! and recovery skips to the next safe point, so a [`Program`] always
//! comes back (possibly partial) together with the diagnostics.

use cpplookup_chg::{Access, MemberKind};

use crate::ast::{
    AccessExpr, AstBase, AstMember, AstUsing, Block, ClassDecl, FunctionDef, GlobalVar, Program,
    Stmt,
};
use crate::diagnostics::Diagnostic;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a translation unit, returning the AST and all diagnostics
/// (lexer and parser).
///
/// # Examples
///
/// ```
/// use cpplookup_frontend::parser::parse;
///
/// let (program, diags) = parse("struct A { int m; }; struct B : virtual A {};");
/// assert!(diags.is_empty());
/// assert_eq!(program.classes.len(), 2);
/// assert!(program.classes[1].bases[0].virtual_);
/// ```
pub fn parse(source: &str) -> (Program, Vec<Diagnostic>) {
    let (tokens, mut diags) = lex(source);
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
        diags: Vec::new(),
        ns: Vec::new(),
    };
    let program = parser.parse_program();
    diags.extend(parser.diags);
    (program, diags)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    diags: Vec<Diagnostic>,
    /// The enclosing namespace path.
    ns: Vec<String>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &'a Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &'a Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> bool {
        if self.eat(kind) {
            true
        } else {
            let t = self.peek().clone();
            self.error(t.span, format!("expected {what}, found {}", t.kind));
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Option<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let span = self.peek().span;
                self.bump();
                Some((s, span))
            }
            other => {
                let span = self.peek().span;
                let msg = format!("expected {what}, found {other}");
                self.error(span, msg);
                None
            }
        }
    }

    fn error(&mut self, span: Span, message: String) {
        self.diags.push(Diagnostic::error(span, message));
    }

    /// Skips tokens until one of `stops` (or EOF); does not consume the
    /// stop token. Balanced braces/parens are skipped wholesale.
    fn skip_until(&mut self, stops: &[TokenKind]) {
        while !self.at_eof() {
            if stops.contains(&self.peek().kind) {
                return;
            }
            match self.peek().kind {
                TokenKind::LBrace => self.skip_balanced(&TokenKind::LBrace, &TokenKind::RBrace),
                TokenKind::LParen => self.skip_balanced(&TokenKind::LParen, &TokenKind::RParen),
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes an `open` token and skips to its matching `close`.
    fn skip_balanced(&mut self, open: &TokenKind, close: &TokenKind) {
        debug_assert!(self.at(open));
        self.bump();
        let mut depth = 1usize;
        while !self.at_eof() && depth > 0 {
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// The current namespace path, joined with `::`.
    fn scope(&self) -> String {
        self.ns.join("::")
    }

    /// Qualifies `name` with the current namespace path.
    fn qualify(&self, name: &str) -> String {
        if self.ns.is_empty() {
            name.to_owned()
        } else {
            format!("{}::{name}", self.scope())
        }
    }

    /// Parses a possibly qualified identifier (`a::b::c`), returning the
    /// joined text and its overall span.
    fn parse_qualified_ident(&mut self, what: &str) -> Option<(String, Span)> {
        let (mut text, mut span) = self.expect_ident(what)?;
        while self.at(&TokenKind::ColonColon) && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
        {
            self.bump(); // ::
            let (seg, seg_span) = self
                .expect_ident(what)
                .expect("lookahead saw an identifier");
            text.push_str("::");
            text.push_str(&seg);
            span = span.merge(seg_span);
        }
        Some((text, span))
    }

    fn parse_program(&mut self) -> Program {
        let mut program = Program::default();
        self.parse_items(&mut program, false);
        program
    }

    /// Parses declarations until EOF (top level) or the closing `}` of a
    /// namespace body.
    fn parse_items(&mut self, program: &mut Program, in_namespace: bool) {
        while !self.at_eof() {
            if in_namespace && self.at(&TokenKind::RBrace) {
                return;
            }
            match &self.peek().kind {
                TokenKind::Class | TokenKind::Struct => {
                    if let Some(class) = self.parse_class() {
                        program.classes.push(class);
                    }
                }
                TokenKind::Namespace => {
                    self.bump();
                    let Some((name, _)) = self.expect_ident("a namespace name") else {
                        self.skip_until(&[TokenKind::LBrace, TokenKind::Semi]);
                        continue;
                    };
                    if !self.expect(&TokenKind::LBrace, "`{` to open the namespace") {
                        continue;
                    }
                    self.ns.push(name);
                    self.parse_items(program, true);
                    self.ns.pop();
                    self.expect(&TokenKind::RBrace, "`}` to close the namespace");
                }
                TokenKind::Semi => {
                    self.bump();
                }
                TokenKind::Typedef | TokenKind::Using | TokenKind::Enum => {
                    // Top-level aliases don't affect member lookup.
                    self.skip_until(&[TokenKind::Semi]);
                    self.eat(&TokenKind::Semi);
                }
                TokenKind::Ident(_) | TokenKind::Static | TokenKind::Const | TokenKind::Virtual => {
                    self.parse_toplevel_decl(program);
                }
                _ => {
                    let t = self.peek().clone();
                    self.error(t.span, format!("unexpected {} at top level", t.kind));
                    self.bump();
                }
            }
        }
    }

    /// `TYPE [*|&] NAME ;` (global variable), `TYPE NAME ( ... ) { ... }`
    /// (function definition), or `TYPE NAME ( ... ) ;` (prototype,
    /// ignored).
    fn parse_toplevel_decl(&mut self, program: &mut Program) {
        while matches!(
            self.peek().kind,
            TokenKind::Static | TokenKind::Const | TokenKind::Virtual
        ) {
            self.bump();
        }
        let Some((type_name, type_span)) = self.parse_qualified_ident("a type name") else {
            self.skip_until(&[TokenKind::Semi]);
            self.eat(&TokenKind::Semi);
            return;
        };
        while matches!(self.peek().kind, TokenKind::Star | TokenKind::Amp) {
            self.bump();
        }
        let Some((name, span)) = self.parse_qualified_ident("a declarator name") else {
            self.skip_until(&[TokenKind::Semi]);
            self.eat(&TokenKind::Semi);
            return;
        };
        match self.peek().kind {
            TokenKind::LParen => {
                self.skip_balanced(&TokenKind::LParen, &TokenKind::RParen);
                self.eat(&TokenKind::Const);
                if self.at(&TokenKind::LBrace) {
                    let body = self.parse_block();
                    if let Some((class_part, fn_name)) = name.rsplit_once("::") {
                        // Out-of-line member definition `void C::f() {...}`:
                        // attach the body to the class so it is analyzed
                        // with the class as context.
                        program.out_of_line_methods.push(FunctionDef {
                            scope: self.qualify(class_part),
                            name: fn_name.to_owned(),
                            span,
                            body,
                        });
                    } else {
                        program.functions.push(FunctionDef {
                            scope: self.scope(),
                            name,
                            span,
                            body,
                        });
                    }
                } else {
                    self.eat(&TokenKind::Semi);
                }
            }
            TokenKind::Eq => {
                self.skip_until(&[TokenKind::Semi]);
                self.eat(&TokenKind::Semi);
                program.globals.push(GlobalVar {
                    scope: self.scope(),
                    type_name,
                    type_span,
                    name: self.qualify(&name),
                    span,
                });
            }
            _ => {
                self.expect(&TokenKind::Semi, "`;` after declaration");
                program.globals.push(GlobalVar {
                    scope: self.scope(),
                    type_name,
                    type_span,
                    name: self.qualify(&name),
                    span,
                });
            }
        }
    }

    fn parse_class(&mut self) -> Option<ClassDecl> {
        let is_struct = matches!(self.peek().kind, TokenKind::Struct);
        self.bump(); // class/struct
        let (name, name_span) = self.expect_ident("a class name")?;
        let mut class = ClassDecl {
            name: self.qualify(&name),
            scope: self.scope(),
            name_span,
            is_struct,
            forward: false,
            bases: Vec::new(),
            members: Vec::new(),
            usings: Vec::new(),
            methods: Vec::new(),
        };
        if self.eat(&TokenKind::Semi) {
            class.forward = true;
            return Some(class);
        }
        if self.eat(&TokenKind::Colon) {
            loop {
                let mut virtual_ = false;
                let mut access = None;
                loop {
                    match self.peek().kind {
                        TokenKind::Virtual => {
                            virtual_ = true;
                            self.bump();
                        }
                        TokenKind::Public => {
                            access = Some(Access::Public);
                            self.bump();
                        }
                        TokenKind::Protected => {
                            access = Some(Access::Protected);
                            self.bump();
                        }
                        TokenKind::Private => {
                            access = Some(Access::Private);
                            self.bump();
                        }
                        _ => break,
                    }
                }
                if let Some((bname, bspan)) = self.parse_qualified_ident("a base class name") {
                    class.bases.push(AstBase {
                        name: bname,
                        span: bspan,
                        virtual_,
                        access,
                    });
                } else {
                    self.skip_until(&[TokenKind::Comma, TokenKind::LBrace, TokenKind::Semi]);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if !self.expect(&TokenKind::LBrace, "`{` to open the class body") {
            self.skip_until(&[TokenKind::Semi]);
            self.eat(&TokenKind::Semi);
            return Some(class);
        }
        let default_access = if is_struct {
            Access::Public
        } else {
            Access::Private
        };
        let mut access = default_access;
        while !self.at(&TokenKind::RBrace) && !self.at_eof() {
            self.parse_member(&mut class, &mut access);
        }
        self.expect(&TokenKind::RBrace, "`}` to close the class body");
        self.expect(&TokenKind::Semi, "`;` after the class body");
        Some(class)
    }

    fn parse_member(&mut self, class: &mut ClassDecl, access: &mut Access) {
        match self.peek().kind.clone() {
            TokenKind::Public => {
                self.bump();
                self.expect(&TokenKind::Colon, "`:` after access specifier");
                *access = Access::Public;
            }
            TokenKind::Protected => {
                self.bump();
                self.expect(&TokenKind::Colon, "`:` after access specifier");
                *access = Access::Protected;
            }
            TokenKind::Private => {
                self.bump();
                self.expect(&TokenKind::Colon, "`:` after access specifier");
                *access = Access::Private;
            }
            TokenKind::Semi => {
                self.bump();
            }
            TokenKind::Typedef => {
                self.bump();
                // The declarator is the last identifier before `;`.
                let mut last: Option<(String, Span)> = None;
                while !self.at(&TokenKind::Semi) && !self.at_eof() {
                    if let TokenKind::Ident(s) = &self.peek().kind {
                        last = Some((s.clone(), self.peek().span));
                    }
                    self.bump();
                }
                self.eat(&TokenKind::Semi);
                match last {
                    Some((name, span)) => class.members.push(AstMember {
                        name,
                        span,
                        kind: MemberKind::TypeName,
                        access: *access,
                    }),
                    None => {
                        let span = self.peek().span;
                        self.error(span, "typedef without a name".into());
                    }
                }
            }
            TokenKind::Using => {
                self.bump();
                if let Some((name, span)) = self.parse_qualified_ident("a name after `using`") {
                    if self.at(&TokenKind::Eq) {
                        // `using alias = ...;` — a nested type name.
                        self.skip_until(&[TokenKind::Semi]);
                        class.members.push(AstMember {
                            name,
                            span,
                            kind: MemberKind::TypeName,
                            access: *access,
                        });
                    } else if let Some((base, member)) = name.rsplit_once("::") {
                        // `using Base::m;` — re-declares the inherited
                        // member in this class's scope.
                        class.usings.push(AstUsing {
                            base: base.to_owned(),
                            member: member.to_owned(),
                            span,
                            access: *access,
                        });
                    } else {
                        self.error(span, "expected `Base::member` after `using`".into());
                    }
                }
                self.expect(&TokenKind::Semi, "`;` after using-declaration");
            }
            TokenKind::Enum => {
                self.bump();
                // Optional `class`/`struct` of a scoped enum, optional tag.
                let scoped = self.eat(&TokenKind::Class) || self.eat(&TokenKind::Struct);
                if let TokenKind::Ident(tag) = self.peek().kind.clone() {
                    let span = self.peek().span;
                    self.bump();
                    class.members.push(AstMember {
                        name: tag,
                        span,
                        kind: MemberKind::TypeName,
                        access: *access,
                    });
                }
                if self.eat(&TokenKind::Colon) {
                    // Underlying type; skip.
                    self.skip_until(&[TokenKind::LBrace, TokenKind::Semi]);
                }
                if self.at(&TokenKind::LBrace) {
                    self.bump();
                    while !self.at(&TokenKind::RBrace) && !self.at_eof() {
                        if let Some((name, span)) = self.expect_ident("an enumerator name") {
                            // Scoped enumerators do not leak into the
                            // class scope.
                            if !scoped {
                                class.members.push(AstMember {
                                    name,
                                    span,
                                    kind: MemberKind::Enumerator,
                                    access: *access,
                                });
                            }
                        }
                        if self.at(&TokenKind::Eq) {
                            self.skip_until(&[TokenKind::Comma, TokenKind::RBrace]);
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace, "`}` to close the enum");
                }
                self.expect(&TokenKind::Semi, "`;` after the enum");
            }
            TokenKind::Class | TokenKind::Struct => {
                // Nested class: recorded as a type name; its own members
                // are not lowered (nested hierarchies are out of subset).
                self.bump();
                if let Some((name, span)) = self.expect_ident("a nested class name") {
                    class.members.push(AstMember {
                        name,
                        span,
                        kind: MemberKind::TypeName,
                        access: *access,
                    });
                }
                self.skip_until(&[TokenKind::Semi]);
                self.eat(&TokenKind::Semi);
            }
            TokenKind::Tilde => {
                // Destructor: ~X() {...} or ~X();
                self.bump();
                let _ = self.expect_ident("the destructor class name");
                if self.at(&TokenKind::LParen) {
                    self.skip_balanced(&TokenKind::LParen, &TokenKind::RParen);
                }
                if self.at(&TokenKind::LBrace) {
                    self.skip_balanced(&TokenKind::LBrace, &TokenKind::RBrace);
                } else {
                    self.skip_until(&[TokenKind::Semi]);
                    self.eat(&TokenKind::Semi);
                }
            }
            _ => self.parse_data_or_function_member(class, *access),
        }
    }

    /// `[static] [virtual] type... NAME (';' | '= init;' | ', more;' |
    /// '(params) [const] (';' | '= 0;' | '{ body }')`.
    fn parse_data_or_function_member(&mut self, class: &mut ClassDecl, access: Access) {
        let mut is_static = false;
        loop {
            match self.peek().kind {
                TokenKind::Static => {
                    is_static = true;
                    self.bump();
                }
                TokenKind::Virtual | TokenKind::Const => {
                    self.bump();
                }
                _ => break,
            }
        }
        // Scan the declaration, remembering the last identifier before a
        // structural token: that is the declarator name.
        let mut last: Option<(String, Span)> = None;
        loop {
            match self.peek().kind.clone() {
                TokenKind::Ident(s) => {
                    last = Some((s, self.peek().span));
                    self.bump();
                }
                TokenKind::Star | TokenKind::Amp | TokenKind::Const | TokenKind::ColonColon => {
                    self.bump();
                }
                TokenKind::Lt => {
                    // Template arguments: skip to the matching `>`.
                    self.skip_balanced(&TokenKind::Lt, &TokenKind::Gt);
                }
                TokenKind::LParen => {
                    // Function member.
                    self.skip_balanced(&TokenKind::LParen, &TokenKind::RParen);
                    self.eat(&TokenKind::Const);
                    // Constructors (`X(...)` where X is the class's own
                    // unqualified name) are not members for lookup.
                    if let Some((ctor, _)) = &last {
                        let simple = class.name.rsplit("::").next().unwrap_or(&class.name);
                        if ctor == simple {
                            if self.at(&TokenKind::LBrace) {
                                self.skip_balanced(&TokenKind::LBrace, &TokenKind::RBrace);
                            } else {
                                self.skip_until(&[TokenKind::Semi]);
                                self.eat(&TokenKind::Semi);
                            }
                            return;
                        }
                    }
                    let Some((name, span)) = last else {
                        let sp = self.peek().span;
                        self.error(sp, "member function without a name".into());
                        self.skip_until(&[TokenKind::Semi]);
                        self.eat(&TokenKind::Semi);
                        return;
                    };
                    let kind = if is_static {
                        MemberKind::StaticFunction
                    } else {
                        MemberKind::Function
                    };
                    class.members.push(AstMember {
                        name: name.clone(),
                        span,
                        kind,
                        access,
                    });
                    if self.at(&TokenKind::LBrace) {
                        let body = self.parse_block();
                        class.methods.push(FunctionDef {
                            scope: self.scope(),
                            name,
                            span,
                            body,
                        });
                    } else {
                        // `;` or `= 0;`
                        self.skip_until(&[TokenKind::Semi]);
                        self.eat(&TokenKind::Semi);
                    }
                    return;
                }
                TokenKind::Semi | TokenKind::Eq | TokenKind::Comma => {
                    let Some((name, span)) = last.take() else {
                        let sp = self.peek().span;
                        self.error(sp, "member declaration without a name".into());
                        self.skip_until(&[TokenKind::Semi]);
                        self.eat(&TokenKind::Semi);
                        return;
                    };
                    let kind = if is_static {
                        MemberKind::StaticData
                    } else {
                        MemberKind::Data
                    };
                    class.members.push(AstMember {
                        name,
                        span,
                        kind,
                        access,
                    });
                    if self.at(&TokenKind::Eq) {
                        self.skip_until(&[TokenKind::Comma, TokenKind::Semi]);
                    }
                    if self.eat(&TokenKind::Comma) {
                        // Further declarators share the type and flags.
                        continue;
                    }
                    self.expect(&TokenKind::Semi, "`;` after member declaration");
                    return;
                }
                TokenKind::Eof | TokenKind::RBrace => {
                    let sp = self.peek().span;
                    self.error(sp, "unterminated member declaration".into());
                    return;
                }
                other => {
                    let sp = self.peek().span;
                    self.error(sp, format!("unexpected {other} in member declaration"));
                    self.bump();
                }
            }
        }
    }

    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.expect(&TokenKind::LBrace, "`{`") {
            return block;
        }
        while !self.at(&TokenKind::RBrace) && !self.at_eof() {
            if let Some(stmt) = self.parse_stmt() {
                block.stmts.push(stmt);
            }
        }
        self.expect(&TokenKind::RBrace, "`}`");
        block
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        match self.peek().kind.clone() {
            TokenKind::LBrace => Some(Stmt::Block(self.parse_block())),
            TokenKind::Semi => {
                self.bump();
                None
            }
            TokenKind::Ident(first) if first == "return" => {
                self.bump();
                let mut accesses = Vec::new();
                if !self.at(&TokenKind::Semi) {
                    self.parse_expr(&mut accesses);
                }
                self.expect(&TokenKind::Semi, "`;` after return");
                Some(Stmt::Expr(accesses))
            }
            TokenKind::Ident(_) => {
                // Local declaration iff: Ident (*|&)* Ident followed by
                // `;` or `=`.
                if let Some(stmt) = self.try_parse_local() {
                    return Some(stmt);
                }
                let mut accesses = Vec::new();
                self.parse_expr(&mut accesses);
                self.expect(&TokenKind::Semi, "`;` after expression");
                Some(Stmt::Expr(accesses))
            }
            TokenKind::Int(_) => {
                let mut accesses = Vec::new();
                self.parse_expr(&mut accesses);
                self.expect(&TokenKind::Semi, "`;` after expression");
                Some(Stmt::Expr(accesses))
            }
            other => {
                let sp = self.peek().span;
                self.error(sp, format!("unexpected {other} in function body"));
                self.bump();
                None
            }
        }
    }

    fn try_parse_local(&mut self) -> Option<Stmt> {
        // Lookahead: Ident (:: Ident)* (*|&)* Ident (; | =)
        let mut n = 1;
        while matches!(self.peek_at(n).kind, TokenKind::ColonColon)
            && matches!(self.peek_at(n + 1).kind, TokenKind::Ident(_))
        {
            n += 2;
        }
        while matches!(self.peek_at(n).kind, TokenKind::Star | TokenKind::Amp) {
            n += 1;
        }
        if !matches!(self.peek_at(n).kind, TokenKind::Ident(_)) {
            return None;
        }
        if !matches!(self.peek_at(n + 1).kind, TokenKind::Semi | TokenKind::Eq) {
            return None;
        }
        let (type_name, type_span) = self
            .parse_qualified_ident("a type name")
            .expect("lookahead saw an identifier");
        while matches!(self.peek().kind, TokenKind::Star | TokenKind::Amp) {
            self.bump();
        }
        let (name, span) = self.expect_ident("a variable name")?;
        if self.at(&TokenKind::Eq) {
            self.skip_until(&[TokenKind::Semi]);
        }
        self.expect(&TokenKind::Semi, "`;` after declaration");
        Some(Stmt::Local {
            type_name,
            type_span,
            name,
            span,
        })
    }

    /// Parses one expression (chain, optional call, optional `=` RHS),
    /// collecting the member accesses it performs. Stops before `;`, `,`
    /// or `)`.
    fn parse_expr(&mut self, out: &mut Vec<AccessExpr>) {
        self.parse_chain(out);
        if self.eat(&TokenKind::Eq) {
            self.parse_expr(out);
        }
    }

    fn parse_chain(&mut self, out: &mut Vec<AccessExpr>) {
        match self.peek().kind.clone() {
            TokenKind::Int(_) => {
                self.bump();
            }
            TokenKind::Ident(first) => {
                let first_span = self.peek().span;
                self.bump();
                if self.at(&TokenKind::ColonColon) {
                    // a::b::...::m — all but the last segment qualify the
                    // scope, the last is the member.
                    let mut segments = vec![(first, first_span)];
                    while self.eat(&TokenKind::ColonColon) {
                        match self.expect_ident("a member name") {
                            Some(seg) => segments.push(seg),
                            None => break,
                        }
                    }
                    if segments.len() >= 2 {
                        if matches!(self.peek().kind, TokenKind::Arrow | TokenKind::Dot) {
                            // `ns::entity.m` — the whole path is a
                            // (namespace-qualified) receiver.
                            let var_span = segments
                                .iter()
                                .fold(segments[0].1, |acc, (_, sp)| acc.merge(*sp));
                            let var = segments
                                .iter()
                                .map(|(s, _)| s.as_str())
                                .collect::<Vec<_>>()
                                .join("::");
                            self.bump(); // . or ->
                            if let Some((member, member_span)) = self.expect_ident("a member name")
                            {
                                out.push(AccessExpr::Through {
                                    var,
                                    var_span,
                                    member,
                                    member_span,
                                });
                                self.finish_postfix(out);
                            }
                            return;
                        }
                        let (member, member_span) = segments.pop().expect("len >= 2");
                        let class_span = segments
                            .iter()
                            .fold(segments[0].1, |acc, (_, sp)| acc.merge(*sp));
                        let class = segments
                            .iter()
                            .map(|(s, _)| s.as_str())
                            .collect::<Vec<_>>()
                            .join("::");
                        out.push(AccessExpr::Qualified {
                            class,
                            class_span,
                            member,
                            member_span,
                        });
                        self.finish_postfix(out);
                    }
                } else if matches!(self.peek().kind, TokenKind::Arrow | TokenKind::Dot) {
                    self.bump();
                    if let Some((member, member_span)) = self.expect_ident("a member name") {
                        out.push(AccessExpr::Through {
                            var: first,
                            var_span: first_span,
                            member,
                            member_span,
                        });
                        self.finish_postfix(out);
                    }
                } else {
                    out.push(AccessExpr::Unqualified {
                        name: first,
                        span: first_span,
                    });
                    self.finish_postfix(out);
                }
            }
            other => {
                let sp = self.peek().span;
                self.error(sp, format!("unexpected {other} in expression"));
                self.bump();
            }
        }
    }

    /// After the first recorded access: consume a call's arguments
    /// (collecting their accesses) and silently swallow any further
    /// `.`/`->` selections (their receiver types are unknown to the
    /// subset).
    fn finish_postfix(&mut self, out: &mut Vec<AccessExpr>) {
        loop {
            match self.peek().kind {
                TokenKind::LParen => {
                    self.bump();
                    while !self.at(&TokenKind::RParen) && !self.at_eof() {
                        self.parse_expr(out);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)` to close the call");
                }
                TokenKind::Arrow | TokenKind::Dot => {
                    self.bump();
                    let _ = self.expect_ident("a member name");
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Program {
        let (p, diags) = parse(src);
        assert!(diags.is_empty(), "diagnostics: {diags:?}");
        p
    }

    #[test]
    fn parse_fig1_program() {
        // Figure 1 of the paper, verbatim modulo formatting.
        let p = ok("class A { public: void m(); };\n\
                    class B : public A {};\n\
                    class C : public B {};\n\
                    class D : public B { public: void m(); };\n\
                    class E : public C, public D {};\n\
                    E *p;\n\
                    int main() { p->m(); return 0; }\n");
        assert_eq!(p.classes.len(), 5);
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].type_name, "E");
        assert_eq!(p.functions.len(), 1);
        let main = &p.functions[0];
        let Stmt::Expr(accesses) = &main.body.stmts[0] else {
            panic!("expected expression stmt");
        };
        assert_eq!(accesses.len(), 1);
        assert!(
            matches!(&accesses[0], AccessExpr::Through { var, member, .. }
            if var == "p" && member == "m")
        );
    }

    #[test]
    fn struct_defaults_public_class_private() {
        let p = ok("struct S { int a; }; class C { int b; public: int c; };");
        assert_eq!(p.classes[0].members[0].access, Access::Public);
        assert_eq!(p.classes[1].members[0].access, Access::Private);
        assert_eq!(p.classes[1].members[1].access, Access::Public);
    }

    #[test]
    fn base_specifiers() {
        let p = ok("struct D : virtual public A, private B, C {};");
        let b = &p.classes[0].bases;
        assert_eq!(b.len(), 3);
        assert!(b[0].virtual_ && b[0].access == Some(Access::Public));
        assert!(!b[1].virtual_ && b[1].access == Some(Access::Private));
        assert!(!b[2].virtual_ && b[2].access.is_none());
    }

    #[test]
    fn member_kinds() {
        let p = ok("struct S {\n\
                    int data;\n\
                    static int sdata;\n\
                    void f();\n\
                    static void g();\n\
                    virtual void h() = 0;\n\
                    typedef int word;\n\
                    using alias = int;\n\
                    enum Color { RED, GREEN = 2, BLUE };\n\
                    enum { ANON };\n\
                    };");
        let s = &p.classes[0];
        let kind = |n: &str| s.members.iter().find(|m| m.name == n).unwrap().kind;
        assert_eq!(kind("data"), MemberKind::Data);
        assert_eq!(kind("sdata"), MemberKind::StaticData);
        assert_eq!(kind("f"), MemberKind::Function);
        assert_eq!(kind("g"), MemberKind::StaticFunction);
        assert_eq!(kind("h"), MemberKind::Function);
        assert_eq!(kind("word"), MemberKind::TypeName);
        assert_eq!(kind("alias"), MemberKind::TypeName);
        assert_eq!(kind("Color"), MemberKind::TypeName);
        assert_eq!(kind("RED"), MemberKind::Enumerator);
        assert_eq!(kind("GREEN"), MemberKind::Enumerator);
        assert_eq!(kind("BLUE"), MemberKind::Enumerator);
        assert_eq!(kind("ANON"), MemberKind::Enumerator);
    }

    #[test]
    fn comma_declarators() {
        let p = ok("struct S { int a, b, c; };");
        let names: Vec<&str> = p.classes[0]
            .members
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn pointer_members_and_initializers() {
        let p = ok("struct S { S *next; int x = 3; };");
        let names: Vec<&str> = p.classes[0]
            .members
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["next", "x"]);
    }

    #[test]
    fn inline_method_bodies_collected() {
        let p = ok("struct S { int x; void f() { x = 1; } };");
        let s = &p.classes[0];
        assert_eq!(s.methods.len(), 1);
        assert_eq!(s.methods[0].name, "f");
        let Stmt::Expr(acc) = &s.methods[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(&acc[0], AccessExpr::Unqualified { name, .. } if name == "x"));
    }

    #[test]
    fn qualified_and_dot_accesses() {
        let p = ok("int main() { E e; e.m = 10; S::m; }");
        let body = &p.functions[0].body;
        assert!(matches!(&body.stmts[0], Stmt::Local { type_name, name, .. }
            if type_name == "E" && name == "e"));
        let Stmt::Expr(a1) = &body.stmts[1] else {
            panic!()
        };
        assert!(matches!(&a1[0], AccessExpr::Through { var, member, .. }
            if var == "e" && member == "m"));
        let Stmt::Expr(a2) = &body.stmts[2] else {
            panic!()
        };
        assert!(matches!(&a2[0], AccessExpr::Qualified { class, member, .. }
            if class == "S" && member == "m"));
    }

    #[test]
    fn call_arguments_are_scanned() {
        let p = ok("int main() { f(a.x, B::y); }");
        let Stmt::Expr(acc) = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        // f (unqualified), a.x (through), B::y (qualified).
        assert_eq!(acc.len(), 3);
    }

    #[test]
    fn forward_declarations() {
        let p = ok("class A; class A { int m; };");
        assert_eq!(p.classes.len(), 2);
        assert!(p.classes[0].forward);
        assert!(!p.classes[1].forward);
    }

    #[test]
    fn destructors_are_skipped() {
        let p = ok("struct S { ~S(); int x; };");
        assert_eq!(p.classes[0].members.len(), 1);
        assert_eq!(p.classes[0].members[0].name, "x");
    }

    #[test]
    fn error_recovery_keeps_parsing() {
        let (p, diags) = parse("class { int x; }; struct T { int y; };");
        assert!(!diags.is_empty());
        // T still parses.
        assert!(p.classes.iter().any(|c| c.name == "T"));
    }

    #[test]
    fn scoped_enum_members_stay_scoped() {
        let p = ok("struct S { enum class E { A, B }; };");
        let names: Vec<&str> = p.classes[0]
            .members
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["E"], "A and B do not leak into S");
    }

    #[test]
    fn nested_class_becomes_type_member() {
        let p = ok("struct S { struct Inner { int z; }; int w; };");
        let names: Vec<&str> = p.classes[0]
            .members
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["Inner", "w"]);
    }
}
