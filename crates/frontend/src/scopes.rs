//! Namespace-scope name resolution.
//!
//! Section 6 of the paper reduces unqualified-name resolution to
//! "traditional name lookup in the presence of nested scopes" whose
//! class levels bottom out in member lookup. The namespace levels are
//! ordinary outward scope walking, implemented here over fully qualified
//! names joined with `::`.

/// Resolves `written` (possibly itself qualified) against the enclosing
/// namespace path `scope` (`"a::b"`, `""` for global scope): tries
/// `a::b::written`, then `a::written`, then `written`, returning the
/// first qualified candidate accepted by `exists`.
///
/// # Examples
///
/// ```
/// use cpplookup_frontend::scopes::resolve_in_scopes;
///
/// let known = ["gui::Widget", "Widget", "gui::detail::Impl"];
/// let exists = |name: &str| known.contains(&name);
/// assert_eq!(
///     resolve_in_scopes("gui::detail", "Widget", exists).as_deref(),
///     Some("gui::Widget")
/// );
/// assert_eq!(
///     resolve_in_scopes("", "Widget", exists).as_deref(),
///     Some("Widget")
/// );
/// assert_eq!(
///     resolve_in_scopes("gui", "detail::Impl", exists).as_deref(),
///     Some("gui::detail::Impl")
/// );
/// assert_eq!(resolve_in_scopes("gui", "Nope", exists), None);
/// ```
pub fn resolve_in_scopes(
    scope: &str,
    written: &str,
    exists: impl Fn(&str) -> bool,
) -> Option<String> {
    let mut segments: Vec<&str> = if scope.is_empty() {
        Vec::new()
    } else {
        scope.split("::").collect()
    };
    loop {
        let candidate = if segments.is_empty() {
            written.to_owned()
        } else {
            format!("{}::{written}", segments.join("::"))
        };
        if exists(&candidate) {
            return Some(candidate);
        }
        segments.pop()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_scope_wins() {
        let known = ["N::X", "X"];
        let exists = |n: &str| known.contains(&n);
        assert_eq!(resolve_in_scopes("N", "X", exists).unwrap(), "N::X");
        assert_eq!(resolve_in_scopes("", "X", exists).unwrap(), "X");
        assert_eq!(resolve_in_scopes("M", "X", exists).unwrap(), "X");
    }

    #[test]
    fn deep_scopes_walk_outward() {
        let known = ["a::T"];
        let exists = |n: &str| known.contains(&n);
        assert_eq!(resolve_in_scopes("a::b::c", "T", exists).unwrap(), "a::T");
    }

    #[test]
    fn qualified_written_names() {
        let known = ["a::b::T"];
        let exists = |n: &str| known.contains(&n);
        assert_eq!(resolve_in_scopes("a", "b::T", exists).unwrap(), "a::b::T");
        assert_eq!(resolve_in_scopes("", "a::b::T", exists).unwrap(), "a::b::T");
        assert_eq!(resolve_in_scopes("", "b::T", exists), None);
    }

    #[test]
    fn empty_everything() {
        assert_eq!(resolve_in_scopes("", "x", |_| false), None);
    }
}
