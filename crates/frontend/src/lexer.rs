//! Lexer for the mini-C++ subset.
//!
//! Handles `//` and `/* */` comments, preprocessor lines (skipped
//! wholesale), identifiers/keywords, integer literals, and the
//! punctuation the parser needs. Anything else produces a diagnostic and
//! is skipped, so lexing always produces a usable token stream.

use crate::diagnostics::Diagnostic;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source`, returning the tokens (always terminated by
/// [`TokenKind::Eof`]) and any diagnostics for unrecognized input.
pub fn lex(source: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut diags = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        diags.push(Diagnostic::error(
                            Span::new(start, bytes.len()),
                            "unterminated block comment".to_owned(),
                        ));
                        i = bytes.len();
                        break;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'#' => {
                // Preprocessor line: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = match text {
                    "class" => TokenKind::Class,
                    "struct" => TokenKind::Struct,
                    "public" => TokenKind::Public,
                    "protected" => TokenKind::Protected,
                    "private" => TokenKind::Private,
                    "virtual" => TokenKind::Virtual,
                    "static" => TokenKind::Static,
                    "typedef" => TokenKind::Typedef,
                    "using" => TokenKind::Using,
                    "enum" => TokenKind::Enum,
                    "namespace" => TokenKind::Namespace,
                    "const" => TokenKind::Const,
                    _ => TokenKind::Ident(text.to_owned()),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Int(source[start..i].to_owned()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                let start = i;
                let two = if i + 1 < bytes.len() {
                    &bytes[i..i + 2]
                } else {
                    &bytes[i..i + 1]
                };
                let (kind, len) = match two {
                    b"::" => (Some(TokenKind::ColonColon), 2),
                    b"->" => (Some(TokenKind::Arrow), 2),
                    _ => {
                        let one = match b {
                            b'{' => Some(TokenKind::LBrace),
                            b'}' => Some(TokenKind::RBrace),
                            b'(' => Some(TokenKind::LParen),
                            b')' => Some(TokenKind::RParen),
                            b';' => Some(TokenKind::Semi),
                            b':' => Some(TokenKind::Colon),
                            b',' => Some(TokenKind::Comma),
                            b'<' => Some(TokenKind::Lt),
                            b'>' => Some(TokenKind::Gt),
                            b'*' => Some(TokenKind::Star),
                            b'&' => Some(TokenKind::Amp),
                            b'=' => Some(TokenKind::Eq),
                            b'.' => Some(TokenKind::Dot),
                            b'~' => Some(TokenKind::Tilde),
                            _ => None,
                        };
                        (one, 1)
                    }
                };
                match kind {
                    Some(kind) => {
                        tokens.push(Token {
                            kind,
                            span: Span::new(start, start + len),
                        });
                        i += len;
                    }
                    None => {
                        // Advance by the full character so multi-byte
                        // UTF-8 never leaves us on a non-boundary.
                        let ch = source[start..].chars().next().unwrap_or('?');
                        let width = ch.len_utf8();
                        diags.push(Diagnostic::error(
                            Span::new(start, start + width),
                            format!("unexpected character `{ch}`"),
                        ));
                        i += width;
                    }
                }
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    (tokens, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (tokens, diags) = lex(src);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_class_declaration() {
        let k = kinds("class D : virtual public B { void m(); };");
        assert_eq!(
            k,
            vec![
                TokenKind::Class,
                TokenKind::Ident("D".into()),
                TokenKind::Colon,
                TokenKind::Virtual,
                TokenKind::Public,
                TokenKind::Ident("B".into()),
                TokenKind::LBrace,
                TokenKind::Ident("void".into()),
                TokenKind::Ident("m".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let k = kinds("#include <iostream>\n// c1\nint /* mid */ x;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("p->m; X::m;");
        assert!(k.contains(&TokenKind::Arrow));
        assert!(k.contains(&TokenKind::ColonColon));
    }

    #[test]
    fn lone_colon_vs_double() {
        let k = kinds(": ::");
        assert_eq!(k[0], TokenKind::Colon);
        assert_eq!(k[1], TokenKind::ColonColon);
    }

    #[test]
    fn numbers() {
        let k = kinds("x = 10;");
        assert_eq!(k[2], TokenKind::Int("10".into()));
    }

    #[test]
    fn bad_character_diagnosed_but_lexing_continues() {
        let (tokens, diags) = lex("int @ x;");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains('@'));
        assert_eq!(tokens.len(), 4); // int, x, ;, EOF
    }

    #[test]
    fn multibyte_garbage_is_diagnosed_not_panicked() {
        // Regression: the error path used to advance one byte at a time
        // through multi-byte UTF-8 and then slice mid-character.
        let (tokens, diags) = lex("int 𑎭𐖈 x; ¥");
        assert_eq!(diags.len(), 3);
        assert!(diags[0].message.contains('𑎭'));
        // The real tokens survive.
        assert_eq!(tokens.len(), 4); // int, x, ;, EOF
    }

    #[test]
    fn unterminated_block_comment() {
        let (_, diags) = lex("int x; /* oops");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unterminated"));
    }

    #[test]
    fn spans_are_accurate() {
        let (tokens, _) = lex("ab cd");
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 5));
    }
}
