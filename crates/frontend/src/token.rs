//! Tokens of the mini-C++ subset.

use std::fmt;

use crate::span::Span;

/// Token kinds. Type-ish keywords (`int`, `void`, ...) lex as
/// [`TokenKind::Ident`]; only structurally significant keywords get their
/// own kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or type-ish keyword.
    Ident(String),
    /// An integer literal (value kept as text; it is never evaluated).
    Int(String),
    /// `class`
    Class,
    /// `struct`
    Struct,
    /// `public`
    Public,
    /// `protected`
    Protected,
    /// `private`
    Private,
    /// `virtual`
    Virtual,
    /// `static`
    Static,
    /// `typedef`
    Typedef,
    /// `using`
    Using,
    /// `enum`
    Enum,
    /// `namespace`
    Namespace,
    /// `const`
    Const,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `,`
    Comma,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// `.`
    Dot,
    /// `~` (destructor names)
    Tilde,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(s) => write!(f, "`{s}`"),
            TokenKind::Class => write!(f, "`class`"),
            TokenKind::Struct => write!(f, "`struct`"),
            TokenKind::Public => write!(f, "`public`"),
            TokenKind::Protected => write!(f, "`protected`"),
            TokenKind::Private => write!(f, "`private`"),
            TokenKind::Virtual => write!(f, "`virtual`"),
            TokenKind::Static => write!(f, "`static`"),
            TokenKind::Typedef => write!(f, "`typedef`"),
            TokenKind::Using => write!(f, "`using`"),
            TokenKind::Enum => write!(f, "`enum`"),
            TokenKind::Namespace => write!(f, "`namespace`"),
            TokenKind::Const => write!(f, "`const`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::ColonColon => write!(f, "`::`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for k in [
            TokenKind::Ident("x".into()),
            TokenKind::Class,
            TokenKind::ColonColon,
            TokenKind::Eof,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn ident_accessor() {
        assert_eq!(TokenKind::Ident("ab".into()).ident(), Some("ab"));
        assert_eq!(TokenKind::Class.ident(), None);
    }
}
