//! Source positions for diagnostics.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// 1-based line/column position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Converts byte offsets to line/column positions.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offsets where each line starts; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
}

impl LineMap {
    /// Builds the map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Line/column of a byte offset.
    pub fn position(&self, offset: usize) -> LineCol {
        let line = self
            .line_starts
            .partition_point(|&s| s <= offset)
            .saturating_sub(1);
        LineCol {
            line: line + 1,
            column: offset - self.line_starts[line] + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions() {
        let map = LineMap::new("ab\ncd\n\nx");
        assert_eq!(map.position(0), LineCol { line: 1, column: 1 });
        assert_eq!(map.position(1), LineCol { line: 1, column: 2 });
        assert_eq!(map.position(3), LineCol { line: 2, column: 1 });
        assert_eq!(map.position(6), LineCol { line: 3, column: 1 });
        assert_eq!(map.position(7), LineCol { line: 4, column: 1 });
    }

    #[test]
    fn merge_and_display() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(a.to_string(), "2..5");
        assert!(!a.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    fn empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.position(0), LineCol { line: 1, column: 1 });
    }
}
