//! Name resolution over parsed programs: qualified member access
//! (`X::m`), receiver access (`p->m`, `obj.m`), and the unqualified-name
//! resolution of Section 6 of the paper (nested scopes whose class levels
//! bottom out in member lookup).
//!
//! Every member access found in a function body becomes a
//! [`MemberQuery`] with the lookup verdict and an access-rights check —
//! exactly the work a C++ front end performs when it statically analyzes
//! `x.m`.

use std::collections::HashMap;

use cpplookup_chg::{Access, Chg, ClassId};
use cpplookup_core::access::{check_access_fast, AccessContext, AccessError, AccessTable};
use cpplookup_core::{LookupOutcome, LookupTable};

use crate::ast::{AccessExpr, Block, Stmt};
use crate::diagnostics::Diagnostic;
use crate::lower::lower;
use crate::parser::parse;
use crate::scopes::resolve_in_scopes;
use crate::span::Span;

/// The verdict on one member access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryResult {
    /// Lookup succeeded and the member is accessible; carries the
    /// declaring class and the effective access.
    Resolved {
        /// Class whose declaration the access binds to.
        declaring_class: ClassId,
        /// Effective access at the accessed class.
        access: Access,
    },
    /// Lookup succeeded but the member is inaccessible in this context.
    AccessDenied {
        /// Class whose declaration the lookup resolved to.
        declaring_class: ClassId,
    },
    /// Member lookup was ambiguous (the C++ "ambiguous member" error).
    AmbiguousMember,
    /// The class has no member with this name.
    NoSuchMember,
    /// The receiver variable is not in scope.
    UnknownVariable,
    /// The receiver variable's type is not a class.
    ReceiverNotAClass,
    /// The qualifier names no known class.
    UnknownClass,
    /// An unqualified name resolved to a local variable, not a member.
    LocalVariable,
    /// An unqualified name resolved to a global variable.
    GlobalVariable,
    /// An unqualified name resolved to nothing at all.
    Undeclared,
}

impl QueryResult {
    /// Whether the access is legal C++.
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            QueryResult::Resolved { .. } | QueryResult::LocalVariable | QueryResult::GlobalVariable
        )
    }
}

/// One analyzed member access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberQuery {
    /// Source location of the member name.
    pub span: Span,
    /// Rendering of the access, e.g. `p->m` or `S::m`.
    pub description: String,
    /// The member name asked about.
    pub member: String,
    /// The class the lookup ran in, when one was determined.
    pub class: Option<ClassId>,
    /// The verdict.
    pub result: QueryResult,
}

/// A fully analyzed translation unit.
#[derive(Debug)]
pub struct Analysis {
    /// The lowered class hierarchy.
    pub chg: Chg,
    /// The lookup table for the hierarchy.
    pub table: LookupTable,
    /// Every member access, in source order.
    pub queries: Vec<MemberQuery>,
    /// Parse, lowering, and resolution diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// The queries that are errors (`!result.is_ok()`).
    pub fn failed_queries(&self) -> impl Iterator<Item = &MemberQuery> {
        self.queries.iter().filter(|q| !q.result.is_ok())
    }
}

/// Parses, lowers, builds the lookup table, and resolves every member
/// access of `source`.
///
/// # Examples
///
/// The paper's Figure 1 program really is ambiguous, and Figure 2's is
/// not:
///
/// ```
/// use cpplookup_frontend::{analyze, QueryResult};
///
/// let fig1 = "class A { public: void m(); };\n\
///             class B : public A {};\n\
///             class C : public B {};\n\
///             class D : public B { public: void m(); };\n\
///             class E : public C, public D {};\n\
///             E *p;\n\
///             int main() { p->m(); }\n";
/// let analysis = analyze(fig1);
/// assert_eq!(analysis.queries[0].result, QueryResult::AmbiguousMember);
///
/// let fig2 = fig1.replace("class C : public B", "class C : virtual public B")
///                .replace("class D : public B", "class D : virtual public B");
/// let analysis = analyze(&fig2);
/// assert!(matches!(analysis.queries[0].result, QueryResult::Resolved { .. }));
/// ```
pub fn analyze(source: &str) -> Analysis {
    let (program, mut diagnostics) = parse(source);
    let (chg, lower_diags) = lower(&program);
    diagnostics.extend(lower_diags);
    let table = LookupTable::build(&chg);
    let access_table = AccessTable::compute(&chg, &table);
    let mut resolver = Resolver {
        chg: &chg,
        table: &table,
        access_table: &access_table,
        globals: program
            .globals
            .iter()
            .map(|g| (g.name.clone(), (g.scope.clone(), g.type_name.clone())))
            .collect(),
        verdict_cache: HashMap::new(),
        queries: Vec::new(),
        diagnostics: Vec::new(),
    };
    for class in &program.classes {
        let id = resolver.chg.class_by_name(&class.name);
        for method in &class.methods {
            resolver.analyze_body(&method.body, id, &class.scope, &mut Vec::new());
        }
    }
    for method in &program.out_of_line_methods {
        // `scope` carries the qualified class name; the namespace scope
        // for fallbacks is everything before the final segment.
        let class_name = &method.scope;
        let id = resolver.chg.class_by_name(class_name);
        let ns_scope = class_name.rsplit_once("::").map(|(s, _)| s).unwrap_or("");
        if id.is_none() {
            diagnostics.push(Diagnostic::error(
                method.span,
                format!("out-of-line definition for unknown class `{class_name}`"),
            ));
        }
        resolver.analyze_body(&method.body, id, ns_scope, &mut Vec::new());
    }
    for function in &program.functions {
        resolver.analyze_body(&function.body, None, &function.scope, &mut Vec::new());
    }
    let Resolver {
        queries,
        diagnostics: resolve_diags,
        ..
    } = resolver;
    diagnostics.extend(resolve_diags);
    Analysis {
        chg,
        table,
        queries,
        diagnostics,
    }
}

struct Resolver<'a> {
    chg: &'a Chg,
    table: &'a LookupTable,
    access_table: &'a AccessTable,
    /// Memoized verdicts: real front ends answer the same
    /// (class, member, context) query thousands of times per TU.
    verdict_cache: HashMap<(ClassId, String, Option<ClassId>), QueryResult>,
    /// Fully qualified global variable name -> (declaring scope, written
    /// type name). The type is resolved in the *declaring* scope.
    globals: HashMap<String, (String, String)>,
    queries: Vec<MemberQuery>,
    diagnostics: Vec<Diagnostic>,
}

impl Resolver<'_> {
    fn analyze_body(
        &mut self,
        block: &Block,
        context_class: Option<ClassId>,
        scope: &str,
        locals: &mut Vec<HashMap<String, String>>,
    ) {
        locals.push(HashMap::new());
        for stmt in &block.stmts {
            match stmt {
                Stmt::Local {
                    type_name, name, ..
                } => {
                    locals
                        .last_mut()
                        .expect("scope pushed above")
                        .insert(name.clone(), type_name.clone());
                }
                Stmt::Block(inner) => self.analyze_body(inner, context_class, scope, locals),
                Stmt::Expr(accesses) => {
                    for access in accesses {
                        self.analyze_access(access, context_class, scope, locals);
                    }
                }
            }
        }
        locals.pop();
    }

    /// Resolves a (possibly qualified) type name written in `scope` to a
    /// class of the hierarchy, walking enclosing namespaces outward.
    fn resolve_class_name(&self, scope: &str, written: &str) -> Option<ClassId> {
        resolve_in_scopes(scope, written, |candidate| {
            self.chg.class_by_name(candidate).is_some()
        })
        .and_then(|qualified| self.chg.class_by_name(&qualified))
    }

    /// Resolves a (possibly qualified) variable name written in `scope`
    /// to a global variable, returning its declaring scope and written
    /// type name.
    fn resolve_global(&self, scope: &str, written: &str) -> Option<&(String, String)> {
        resolve_in_scopes(scope, written, |candidate| {
            self.globals.contains_key(candidate)
        })
        .and_then(|qualified| self.globals.get(&qualified))
    }

    fn lookup_member(
        &mut self,
        class: ClassId,
        member: &str,
        context: AccessContext,
    ) -> QueryResult {
        let ctx_key = match context {
            AccessContext::External => None,
            AccessContext::Inside(k) => Some(k),
        };
        let key = (class, member.to_owned(), ctx_key);
        if let Some(cached) = self.verdict_cache.get(&key) {
            return cached.clone();
        }
        let result = self.lookup_member_uncached(class, member, context);
        self.verdict_cache.insert(key, result.clone());
        result
    }

    fn lookup_member_uncached(
        &mut self,
        class: ClassId,
        member: &str,
        context: AccessContext,
    ) -> QueryResult {
        let Some(mid) = self.chg.member_by_name(member) else {
            return QueryResult::NoSuchMember;
        };
        match self.table.lookup(class, mid) {
            LookupOutcome::NotFound => QueryResult::NoSuchMember,
            LookupOutcome::Ambiguous { .. } => QueryResult::AmbiguousMember,
            LookupOutcome::Resolved {
                class: declaring_class,
                ..
            } => {
                match check_access_fast(
                    self.chg,
                    self.table,
                    self.access_table,
                    class,
                    mid,
                    context,
                ) {
                    Ok(access) => QueryResult::Resolved {
                        declaring_class,
                        access,
                    },
                    Err(AccessError::Inaccessible { .. }) => {
                        QueryResult::AccessDenied { declaring_class }
                    }
                    Err(AccessError::NotFound) => QueryResult::NoSuchMember,
                    Err(AccessError::Ambiguous) => QueryResult::AmbiguousMember,
                }
            }
        }
    }

    fn analyze_access(
        &mut self,
        access: &AccessExpr,
        context_class: Option<ClassId>,
        scope: &str,
        locals: &[HashMap<String, String>],
    ) {
        let context = match context_class {
            Some(k) => AccessContext::Inside(k),
            None => AccessContext::External,
        };
        let (description, class, result) = match access {
            AccessExpr::Qualified { class, member, .. } => {
                let description = format!("{class}::{member}");
                match self.resolve_class_name(scope, class) {
                    Some(id) => {
                        let r = self.lookup_member(id, member, context);
                        (description, Some(id), r)
                    }
                    None => {
                        // Not a class: maybe a namespace-qualified global
                        // (`N::g`).
                        let full = format!("{class}::{member}");
                        if self.resolve_global(scope, &full).is_some() {
                            (description, None, QueryResult::GlobalVariable)
                        } else {
                            (description, None, QueryResult::UnknownClass)
                        }
                    }
                }
            }
            AccessExpr::Through { var, member, .. } => {
                let description = format!("{var}.{member}");
                // A local's type is resolved in the function's scope; a
                // global's type in its own declaring scope.
                let typed = locals
                    .iter()
                    .rev()
                    .find_map(|block| block.get(var))
                    .map(|tn| (scope.to_owned(), tn.clone()))
                    .or_else(|| self.resolve_global(scope, var).cloned());
                match typed {
                    None => (description, None, QueryResult::UnknownVariable),
                    Some((decl_scope, tn)) => match self.resolve_class_name(&decl_scope, &tn) {
                        None => (description, None, QueryResult::ReceiverNotAClass),
                        Some(id) => {
                            let r = self.lookup_member(id, member, context);
                            (description, Some(id), r)
                        }
                    },
                }
            }
            AccessExpr::Unqualified { name, .. } => {
                let description = name.clone();
                // Section 6: walk the nested scopes; a class scope's
                // "local lookup" is exactly the member lookup problem,
                // and the namespace levels are ordinary scope walking.
                if locals.iter().rev().any(|block| block.contains_key(name)) {
                    (description, None, QueryResult::LocalVariable)
                } else if let Some(k) = context_class {
                    let r = self.lookup_member(k, name, context);
                    match r {
                        // Not a member: fall through to the namespaces.
                        QueryResult::NoSuchMember => {
                            if self.resolve_global(scope, name).is_some() {
                                (description, None, QueryResult::GlobalVariable)
                            } else {
                                (description, Some(k), QueryResult::Undeclared)
                            }
                        }
                        other => (description, Some(k), other),
                    }
                } else if self.resolve_global(scope, name).is_some() {
                    (description, None, QueryResult::GlobalVariable)
                } else {
                    (description, None, QueryResult::Undeclared)
                }
            }
        };
        let span = access.member_span();
        self.diagnose(span, &description, &result);
        self.queries.push(MemberQuery {
            span,
            description,
            member: access.member_name().to_owned(),
            class,
            result,
        });
    }

    fn diagnose(&mut self, span: Span, description: &str, result: &QueryResult) {
        let message = match result {
            QueryResult::Resolved { .. }
            | QueryResult::LocalVariable
            | QueryResult::GlobalVariable => return,
            QueryResult::AccessDenied { declaring_class } => format!(
                "`{description}` resolves to inaccessible member of `{}`",
                self.chg.class_name(*declaring_class)
            ),
            QueryResult::AmbiguousMember => {
                format!("member access `{description}` is ambiguous")
            }
            QueryResult::NoSuchMember => format!("no member named in `{description}`"),
            QueryResult::UnknownVariable => {
                format!("unknown variable in `{description}`")
            }
            QueryResult::ReceiverNotAClass => {
                format!("receiver of `{description}` is not of class type")
            }
            QueryResult::UnknownClass => format!("unknown class in `{description}`"),
            QueryResult::Undeclared => format!("use of undeclared name `{description}`"),
        };
        self.diagnostics.push(Diagnostic::error(span, message));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "class A { public: void m(); };\n\
                        class B : public A {};\n\
                        class C : public B {};\n\
                        class D : public B { public: void m(); };\n\
                        class E : public C, public D {};\n\
                        E *p;\n\
                        int main() { p->m(); }\n";

    #[test]
    fn fig1_is_ambiguous_fig2_is_not() {
        let analysis = analyze(FIG1);
        assert_eq!(analysis.queries.len(), 1);
        assert_eq!(analysis.queries[0].result, QueryResult::AmbiguousMember);
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.message.contains("ambiguous")));

        let fig2 = FIG1
            .replace("class C : public B", "class C : virtual public B")
            .replace("class D : public B", "class D : virtual public B");
        let analysis = analyze(&fig2);
        match &analysis.queries[0].result {
            QueryResult::Resolved {
                declaring_class, ..
            } => {
                assert_eq!(analysis.chg.class_name(*declaring_class), "D");
            }
            other => panic!("expected D::m, got {other:?}"),
        }
        assert!(analysis.diagnostics.is_empty());
    }

    #[test]
    fn fig9_program_resolves_to_c() {
        let src = "struct S { int m; };\n\
                   struct A : virtual S { int m; };\n\
                   struct B : virtual S { int m; };\n\
                   struct C : virtual A, virtual B { int m; };\n\
                   struct D : C {};\n\
                   struct E : virtual A, virtual B, D {};\n\
                   int main() { E e; e.m = 10; }\n";
        let analysis = analyze(src);
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
        match &analysis.queries[0].result {
            QueryResult::Resolved {
                declaring_class, ..
            } => {
                assert_eq!(analysis.chg.class_name(*declaring_class), "C");
            }
            other => panic!("expected C::m, got {other:?}"),
        }
    }

    #[test]
    fn qualified_access() {
        let src = "struct S { static int m; };\nint main() { S::m = 3; }\n";
        let analysis = analyze(src);
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
        let bad = "int main() { Nope::m; }";
        let analysis = analyze(bad);
        assert_eq!(analysis.queries[0].result, QueryResult::UnknownClass);
    }

    #[test]
    fn unqualified_resolution_order() {
        // Local shadows member shadows global.
        let src = "int g;\n\
                   struct S {\n\
                     int m;\n\
                     void f() { int m; m = 1; }\n\
                     void h() { m = 2; g = 3; nothing = 4; }\n\
                   };\n";
        let analysis = analyze(src);
        let results: Vec<&QueryResult> = analysis.queries.iter().map(|q| &q.result).collect();
        assert_eq!(results[0], &QueryResult::LocalVariable);
        assert!(matches!(results[1], QueryResult::Resolved { .. }));
        assert_eq!(results[2], &QueryResult::GlobalVariable);
        assert_eq!(results[3], &QueryResult::Undeclared);
    }

    #[test]
    fn access_rights_enforced_after_lookup() {
        let src = "class A { int secret; public: int open; };\n\
                   int main() { A a; a.secret; a.open; }\n";
        let analysis = analyze(src);
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::AccessDenied { .. }
        ));
        assert!(matches!(
            analysis.queries[1].result,
            QueryResult::Resolved { .. }
        ));
        assert_eq!(analysis.failed_queries().count(), 1);
    }

    #[test]
    fn methods_see_protected_members() {
        let src = "class B { protected: int p; };\n\
                   class D : public B { public: void f() { p = 1; } };\n\
                   int main() { D d; d.p; }\n";
        let analysis = analyze(src);
        // Inside D::f the protected member is fine; outside it is not.
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
        assert!(matches!(
            analysis.queries[1].result,
            QueryResult::AccessDenied { .. }
        ));
    }

    #[test]
    fn unknown_variable_and_nonclass_receiver() {
        let src = "int main() { int x; x.m; y.m; }";
        let analysis = analyze(src);
        assert_eq!(analysis.queries[0].result, QueryResult::ReceiverNotAClass);
        assert_eq!(analysis.queries[1].result, QueryResult::UnknownVariable);
    }

    #[test]
    fn no_such_member() {
        let src = "struct S { int m; };\nint main() { S s; s.q; }";
        let analysis = analyze(src);
        assert_eq!(analysis.queries[0].result, QueryResult::NoSuchMember);
    }

    #[test]
    fn block_scoping_of_locals() {
        let src = "struct T { int v; };\n\
                   int main() { { T t; t.v; } t.v; }";
        let analysis = analyze(src);
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
        assert_eq!(analysis.queries[1].result, QueryResult::UnknownVariable);
    }

    #[test]
    fn enumerators_and_statics_resolve_like_members() {
        let src = "struct S { enum { RED }; static int s; };\n\
                   struct A : S {}; struct B : S {};\n\
                   struct D : A, B {};\n\
                   int main() { D d; d.RED; d.s; }";
        let analysis = analyze(src);
        // Two S subobjects, but RED and s are static-like: unambiguous.
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
        assert!(matches!(
            analysis.queries[1].result,
            QueryResult::Resolved { .. }
        ));
    }
}

#[cfg(test)]
mod namespace_tests {
    use super::*;

    const LIB: &str = "namespace gui {\n\
                         struct Widget { int width; void draw(); };\n\
                         namespace detail {\n\
                           struct Impl : Widget { int handle; };\n\
                         }\n\
                         Widget screen;\n\
                         int theme;\n\
                       }\n\
                       struct Window : gui::detail::Impl { void show() { width = 1; } };\n\
                       gui::Widget top;\n\
                       int main() {\n\
                         gui::detail::Impl impl;\n\
                         impl.width;\n\
                         top.draw();\n\
                         gui::Widget::draw;\n\
                         gui::screen.width;\n\
                         Window w;\n\
                         w.handle;\n\
                       }\n";

    #[test]
    fn namespaced_hierarchy_lowers_and_resolves() {
        let analysis = analyze(LIB);
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
        let chg = &analysis.chg;
        assert!(chg.class_by_name("gui::Widget").is_some());
        assert!(chg.class_by_name("gui::detail::Impl").is_some());
        let widget = chg.class_by_name("gui::Widget").unwrap();
        let window = chg.class_by_name("Window").unwrap();
        assert!(chg.is_base_of(widget, window));
        // Every access resolves.
        assert_eq!(analysis.failed_queries().count(), 0);
        let by_desc = |d: &str| {
            analysis
                .queries
                .iter()
                .find(|q| q.description == d)
                .unwrap_or_else(|| panic!("no query {d}"))
        };
        // Inside Window::show the unqualified `width` is the inherited
        // member from gui::Widget, found through the class scope.
        match &by_desc("width").result {
            QueryResult::Resolved {
                declaring_class, ..
            } => {
                assert_eq!(analysis.chg.class_name(*declaring_class), "gui::Widget");
            }
            other => panic!("{other:?}"),
        }
        // Qualified static-style access through nested namespaces.
        assert!(matches!(
            by_desc("gui::Widget::draw").result,
            QueryResult::Resolved { .. }
        ));
        // Namespace-qualified global receiver.
        assert!(matches!(
            by_desc("gui::screen.width").result,
            QueryResult::Resolved { .. }
        ));
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let src = "struct T { int outer_only; };\n\
                   namespace n {\n\
                     struct T { int inner_only; };\n\
                     T t;\n\
                     int probe() { t.inner_only; t.outer_only; }\n\
                   }\n";
        let analysis = analyze(src);
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
        assert_eq!(analysis.queries[1].result, QueryResult::NoSuchMember);
    }

    #[test]
    fn namespace_globals_found_from_inner_scopes() {
        let src = "namespace a {\n\
                     int shared;\n\
                     namespace b {\n\
                       int probe() { shared = 1; missing = 2; }\n\
                     }\n\
                   }\n";
        let analysis = analyze(src);
        assert_eq!(analysis.queries[0].result, QueryResult::GlobalVariable);
        assert_eq!(analysis.queries[1].result, QueryResult::Undeclared);
    }

    #[test]
    fn qualified_global_from_outside() {
        let src = "namespace cfg { int level; }\n\
                   int main() { cfg::level = 3; nope::thing; }\n";
        let analysis = analyze(src);
        assert_eq!(analysis.queries[0].result, QueryResult::GlobalVariable);
        assert_eq!(analysis.queries[1].result, QueryResult::UnknownClass);
    }

    #[test]
    fn cross_namespace_bases() {
        let src = "namespace base { struct Root { int r; }; }\n\
                   namespace app { struct Leaf : base::Root {}; }\n\
                   int main() { app::Leaf l; l.r; }\n";
        let analysis = analyze(src);
        assert!(
            analysis.diagnostics.is_empty(),
            "{:?}",
            analysis.diagnostics
        );
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
    }
}

#[cfg(test)]
mod out_of_line_tests {
    use super::*;

    #[test]
    fn out_of_line_methods_use_class_context() {
        let src = "struct Base { protected: int counter; };\n\
                   struct W : Base { void tick(); int own; };\n\
                   void W::tick() { counter = 1; own = 2; stray = 3; }\n";
        let analysis = analyze(src);
        let results: Vec<&QueryResult> = analysis.queries.iter().map(|q| &q.result).collect();
        assert!(
            matches!(results[0], QueryResult::Resolved { .. }),
            "protected member OK from inside the class: {:?}",
            results[0]
        );
        assert!(matches!(results[1], QueryResult::Resolved { .. }));
        assert_eq!(results[2], &QueryResult::Undeclared);
    }

    #[test]
    fn out_of_line_methods_in_namespaces() {
        let src = "namespace app {\n\
                     struct Svc { int state; void poke(); };\n\
                   }\n\
                   void app::Svc::poke() { state = 1; }\n";
        let analysis = analyze(src);
        assert!(
            matches!(analysis.queries[0].result, QueryResult::Resolved { .. }),
            "{:?}",
            analysis.queries[0]
        );
    }

    #[test]
    fn unknown_class_out_of_line_is_diagnosed() {
        let src = "void Ghost::f() { }";
        let analysis = analyze(src);
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.message.contains("unknown class `Ghost`")));
    }

    #[test]
    fn constructors_are_not_members() {
        let src = "struct P { P(); P(int); int real; };\n\
                   int main() { P p; p.real; p.P; }\n";
        let analysis = analyze(src);
        assert!(matches!(
            analysis.queries[0].result,
            QueryResult::Resolved { .. }
        ));
        assert_eq!(
            analysis.queries[1].result,
            QueryResult::NoSuchMember,
            "the constructor is not a member for lookup"
        );
    }
}
