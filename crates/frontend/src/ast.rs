//! Abstract syntax for the mini-C++ subset.
//!
//! The subset covers everything the lookup algorithm can observe: class
//! declarations with virtual/non-virtual, access-specified bases; data,
//! function, static, type, and enumerator members; global variables; and
//! function bodies containing local declarations and member accesses
//! (`p->m`, `obj.m`, `X::m`, bare `m`).

use cpplookup_chg::{Access, MemberKind};

use crate::span::Span;

/// A parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Class definitions (and forward declarations) in source order.
    pub classes: Vec<ClassDecl>,
    /// Free functions with bodies (e.g. `main`).
    pub functions: Vec<FunctionDef>,
    /// Out-of-line member definitions (`void C::f() { ... }`); `scope`
    /// holds the (qualified) class name they belong to.
    pub out_of_line_methods: Vec<FunctionDef>,
    /// Global variable declarations.
    pub globals: Vec<GlobalVar>,
}

/// A base-class specifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstBase {
    /// Base class name as written (possibly qualified, e.g. `gui::Widget`).
    pub name: String,
    /// Where the name appears.
    pub span: Span,
    /// Whether `virtual` was written.
    pub virtual_: bool,
    /// Explicit access, if written (defaults depend on class/struct).
    pub access: Option<Access>,
}

/// A using-declaration inside a class body (`using Base::m;`), which
/// re-declares an inherited member in the class's own scope — the C++
/// mechanism for resolving lookup ambiguities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstUsing {
    /// The (possibly qualified) base class named on the left.
    pub base: String,
    /// The member name brought in.
    pub member: String,
    /// Where the declaration appears.
    pub span: Span,
    /// Access of the re-declared member (from the enclosing label).
    pub access: Access,
}

/// A member declaration inside a class body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstMember {
    /// Member name.
    pub name: String,
    /// Where the name appears.
    pub span: Span,
    /// What kind of member it is.
    pub kind: MemberKind,
    /// Its access (from the enclosing access label).
    pub access: Access,
}

/// A class or struct declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDecl {
    /// Fully qualified class name (`Outer::Inner::X` inside namespaces,
    /// plain `X` at global scope).
    pub name: String,
    /// The enclosing namespace path, joined with `::` (empty at global
    /// scope).
    pub scope: String,
    /// Where the name appears.
    pub name_span: Span,
    /// `struct` (public defaults) vs `class` (private defaults).
    pub is_struct: bool,
    /// `class X;` with no body.
    pub forward: bool,
    /// Base specifiers in declaration order.
    pub bases: Vec<AstBase>,
    /// Members in declaration order.
    pub members: Vec<AstMember>,
    /// Using-declarations in declaration order.
    pub usings: Vec<AstUsing>,
    /// Inline method bodies (analyzed with this class as context).
    pub methods: Vec<FunctionDef>,
}

/// A global variable (`E obj;` / `E *p;`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalVar {
    /// The enclosing namespace path (empty at global scope).
    pub scope: String,
    /// Declared type name as written (possibly qualified).
    pub type_name: String,
    /// Where the type appears.
    pub type_span: Span,
    /// Fully qualified variable name.
    pub name: String,
    /// Where the variable name appears.
    pub span: Span,
}

/// A function definition with a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionDef {
    /// The enclosing namespace path (empty at global scope).
    pub scope: String,
    /// Function name.
    pub name: String,
    /// Where the name appears.
    pub span: Span,
    /// The body.
    pub body: Block,
}

/// A `{ ... }` block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement of the subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `T x;` / `T *x;` / `T &x = ...;` — binds `x` to class `T`.
    Local {
        /// The declared type name.
        type_name: String,
        /// Where the type appears.
        type_span: Span,
        /// The variable name.
        name: String,
        /// Where the variable appears.
        span: Span,
    },
    /// An expression statement; only the member accesses matter.
    Expr(Vec<AccessExpr>),
    /// A nested block (its locals scope to it).
    Block(Block),
}

/// A member access found in an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessExpr {
    /// `X::m` — qualified lookup in class `X`.
    Qualified {
        /// The class name.
        class: String,
        /// Where the class name appears.
        class_span: Span,
        /// The member name.
        member: String,
        /// Where the member name appears.
        member_span: Span,
    },
    /// `v->m` or `v.m` — lookup in the static type of `v`.
    Through {
        /// The receiver variable.
        var: String,
        /// Where the receiver appears.
        var_span: Span,
        /// The member name.
        member: String,
        /// Where the member name appears.
        member_span: Span,
    },
    /// A bare identifier used as a value: unqualified lookup.
    Unqualified {
        /// The name.
        name: String,
        /// Where it appears.
        span: Span,
    },
}

impl AccessExpr {
    /// The member (or bare) name this access asks about.
    pub fn member_name(&self) -> &str {
        match self {
            AccessExpr::Qualified { member, .. } => member,
            AccessExpr::Through { member, .. } => member,
            AccessExpr::Unqualified { name, .. } => name,
        }
    }

    /// The span of the member name, for diagnostics.
    pub fn member_span(&self) -> Span {
        match self {
            AccessExpr::Qualified { member_span, .. } => *member_span,
            AccessExpr::Through { member_span, .. } => *member_span,
            AccessExpr::Unqualified { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_expr_accessors() {
        let q = AccessExpr::Qualified {
            class: "X".into(),
            class_span: Span::new(0, 1),
            member: "m".into(),
            member_span: Span::new(3, 4),
        };
        assert_eq!(q.member_name(), "m");
        assert_eq!(q.member_span(), Span::new(3, 4));
        let u = AccessExpr::Unqualified {
            name: "n".into(),
            span: Span::new(7, 8),
        };
        assert_eq!(u.member_name(), "n");
        assert_eq!(u.member_span(), Span::new(7, 8));
    }
}
