//! Compiler-style diagnostics with source locations.

use std::fmt;

use crate::span::{LineMap, Span};

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A note attached to other diagnostics or informational output.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// The program is ill-formed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic message anchored to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity level.
    pub severity: Severity,
    /// Source range the message refers to.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(span: Span, message: String) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message,
        }
    }

    /// A warning diagnostic.
    pub fn warning(span: Span, message: String) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message,
        }
    }

    /// A note diagnostic.
    pub fn note(span: Span, message: String) -> Self {
        Diagnostic {
            severity: Severity::Note,
            span,
            message,
        }
    }

    /// Renders the diagnostic with `file:line:col` position and the
    /// offending source line, gcc-style.
    pub fn render(&self, file: &str, source: &str) -> String {
        let map = LineMap::new(source);
        let pos = map.position(self.span.start);
        let line_text = source.lines().nth(pos.line - 1).unwrap_or("");
        let caret = " ".repeat(pos.column.saturating_sub(1)) + "^";
        format!(
            "{file}:{pos}: {}: {}\n  {line_text}\n  {caret}",
            self.severity, self.message
        )
    }
}

/// Renders a batch of diagnostics.
pub fn render_all(diags: &[Diagnostic], file: &str, source: &str) -> String {
    diags
        .iter()
        .map(|d| d.render(file, source))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_span() {
        let src = "class A {};\nclass B : Q {};\n";
        let q = src.find('Q').unwrap();
        let d = Diagnostic::error(Span::new(q, q + 1), "unknown base `Q`".into());
        let out = d.render("t.cpp", src);
        assert!(out.contains("t.cpp:2:11: error: unknown base `Q`"), "{out}");
        assert!(out.contains("class B : Q {};"));
        let caret_line = out.lines().last().unwrap();
        assert!(caret_line.ends_with('^'));
        // Two-space indent plus column-1 spaces of padding.
        assert_eq!(caret_line.len(), 2 + 10 + 1);
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn render_all_joins() {
        let src = "x";
        let d1 = Diagnostic::warning(Span::new(0, 1), "w".into());
        let d2 = Diagnostic::note(Span::new(0, 1), "n".into());
        let out = render_all(&[d1, d2], "f", src);
        assert!(out.contains("warning"));
        assert!(out.contains("note"));
    }
}
