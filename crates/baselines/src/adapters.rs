//! [`MemberLookup`] adapters for the baseline algorithms.
//!
//! The baselines answer queries in their own vocabularies — subobject
//! ids, definition paths, bare class ids. These adapters wrap each one
//! behind the crate-spanning [`MemberLookup`] trait so the differential
//! suite (and any client) can drive the paper's algorithm and its
//! competitors through one interface.
//!
//! Fidelity varies by baseline, and the adapters preserve that — they
//! are measurement subjects, not improved algorithms:
//!
//! * [`NaiveLookup`] computes real definition paths, so its entries
//!   carry accurate `leastVirtual` abstractions and `via` parents.
//! * [`GxxAdapter`] knows the winning subobject but not the red/blue
//!   abstractions; its entries use `Ω` placeholders and empty witness
//!   sets.
//! * [`TopoShortcut`] is the Section 7.2 shortcut: it cannot even
//!   detect ambiguity, and its unsoundness on ambiguous lookups shows
//!   through the trait exactly as the paper warns.
//!
//! # Examples
//!
//! ```
//! use cpplookup_baselines::adapters::{NaiveLookup, TopoShortcut};
//! use cpplookup_chg::fixtures;
//! use cpplookup_core::MemberLookup;
//!
//! let g = fixtures::fig9();
//! let e = g.class_by_name("E").unwrap();
//! let m = g.member_by_name("m").unwrap();
//! let mut naive = NaiveLookup::new(&g);
//! assert_eq!(
//!     naive.lookup(e, m).resolved_class().map(|c| g.class_name(c)),
//!     Some("C")
//! );
//! // The shortcut agrees here because the lookup is unambiguous.
//! let mut short = TopoShortcut::new(&g);
//! assert_eq!(short.lookup(e, m).resolved_class(), naive.lookup(e, m).resolved_class());
//! ```

use std::collections::HashMap;

use cpplookup_chg::{Chg, ClassId, MemberId};
use cpplookup_core::{Entry, LeastVirtual, LookupOutcome, MemberLookup, RedAbs};
use cpplookup_subobject::SubobjectGraph;

use crate::gxx::{gxx_lookup, gxx_lookup_corrected, GxxResult};
use crate::naive::{propagate, Propagation, PropagationConfig};
use crate::toposort::toposort_lookup;

/// The Section 7.2 topological-number shortcut behind [`MemberLookup`].
///
/// Stateless (the shortcut needs no precomputation beyond what the CHG
/// already caches). **Unsound on ambiguous lookups**: it reports the
/// most derived declaring ancestor instead of the ambiguity. Entries
/// use `Ω` as a `leastVirtual` placeholder — the shortcut does not
/// track virtual bases.
pub struct TopoShortcut<'a> {
    chg: &'a Chg,
}

impl<'a> TopoShortcut<'a> {
    /// Wraps `chg`.
    pub fn new(chg: &'a Chg) -> Self {
        TopoShortcut { chg }
    }
}

impl MemberLookup for TopoShortcut<'_> {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupOutcome::from_entry(self.entry(c, m).as_ref())
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        cpplookup_core::obs::baseline_query("toposort");
        toposort_lookup(self.chg, c, m).map(|winner| Entry::Red {
            // `generated` is (winner, Ω) — Ω here is a placeholder, not
            // a computed abstraction.
            abs: RedAbs::generated(winner),
            via: None,
            shared: Vec::new(),
        })
    }
}

/// The g++ 2.7.2.1 breadth-first lookup behind [`MemberLookup`],
/// faithful or corrected.
///
/// Builds (and memoises) one [`SubobjectGraph`] per queried class —
/// inheriting the worst-case exponential size that motivates the
/// paper's algorithm. Entries carry the winning declaring class only;
/// `leastVirtual` is an `Ω` placeholder and ambiguity witness sets are
/// empty, because the g++ strategy computes neither.
pub struct GxxAdapter<'a> {
    chg: &'a Chg,
    corrected: bool,
    limit: usize,
    graphs: HashMap<ClassId, SubobjectGraph>,
}

impl<'a> GxxAdapter<'a> {
    /// The faithful variant, including the Figure 9 false-ambiguity bug.
    pub fn faithful(chg: &'a Chg) -> Self {
        Self::with_limit(chg, false, 1_000_000)
    }

    /// The corrected variant (verdict deferred until all definitions
    /// are collected).
    pub fn corrected(chg: &'a Chg) -> Self {
        Self::with_limit(chg, true, 1_000_000)
    }

    /// Explicit subobject-graph size limit.
    ///
    /// # Panics
    ///
    /// Queries panic if a class's subobject graph exceeds `limit` —
    /// the baseline has no graceful answer without its graph.
    pub fn with_limit(chg: &'a Chg, corrected: bool, limit: usize) -> Self {
        GxxAdapter {
            chg,
            corrected,
            limit,
            graphs: HashMap::new(),
        }
    }

    fn graph(&mut self, c: ClassId) -> &SubobjectGraph {
        let (chg, limit) = (self.chg, self.limit);
        self.graphs.entry(c).or_insert_with(|| {
            SubobjectGraph::build(chg, c, limit).expect("subobject graph exceeded the limit")
        })
    }
}

impl MemberLookup for GxxAdapter<'_> {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupOutcome::from_entry(self.entry(c, m).as_ref())
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        cpplookup_core::obs::baseline_query(if self.corrected {
            "gxx-corrected"
        } else {
            "gxx-faithful"
        });
        let corrected = self.corrected;
        let chg = self.chg;
        let sg = self.graph(c);
        let result = if corrected {
            gxx_lookup_corrected(chg, sg, m)
        } else {
            gxx_lookup(chg, sg, m)
        };
        match result {
            GxxResult::NotFound => None,
            GxxResult::Resolved(id) => Some(Entry::Red {
                abs: RedAbs::generated(sg.subobject(id).class()),
                via: None,
                shared: Vec::new(),
            }),
            GxxResult::Ambiguous => Some(Entry::Blue(Vec::new())),
        }
    }
}

/// The Section 4 naive path-propagation algorithm behind
/// [`MemberLookup`].
///
/// Memoises one full [`Propagation`] per member name. Entries are
/// high-fidelity: `leastVirtual` is computed from the real winning
/// path, `via` is the path's parent pointer, and ambiguity witnesses
/// are the `leastVirtual` abstractions of the surviving definitions.
pub struct NaiveLookup<'a> {
    chg: &'a Chg,
    config: PropagationConfig,
    cache: HashMap<MemberId, Propagation>,
}

impl<'a> NaiveLookup<'a> {
    /// Default configuration (killing on, the default budget).
    pub fn new(chg: &'a Chg) -> Self {
        Self::with_config(chg, PropagationConfig::default())
    }

    /// Explicit propagation configuration.
    ///
    /// # Panics
    ///
    /// Queries panic if a propagation exceeds the configured budget —
    /// this adapter exists for differential testing, where a blowup is
    /// a test-setup bug.
    pub fn with_config(chg: &'a Chg, config: PropagationConfig) -> Self {
        NaiveLookup {
            chg,
            config,
            cache: HashMap::new(),
        }
    }
}

impl MemberLookup for NaiveLookup<'_> {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupOutcome::from_entry(self.entry(c, m).as_ref())
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        cpplookup_core::obs::baseline_query("naive");
        let (chg, config) = (self.chg, self.config);
        let prop = self
            .cache
            .entry(m)
            .or_insert_with(|| propagate(chg, m, config).expect("propagation exceeded its budget"));
        let node = prop.node(c)?;
        match &node.most_dominant {
            Some(path) => {
                let nodes = path.nodes();
                Some(Entry::Red {
                    abs: RedAbs {
                        ldc: path.ldc(),
                        lv: LeastVirtual::of_path(chg, path),
                    },
                    via: (nodes.len() >= 2).then(|| nodes[nodes.len() - 2]),
                    shared: Vec::new(),
                })
            }
            None => {
                let mut witnesses: Vec<LeastVirtual> = node
                    .propagated
                    .iter()
                    .map(|p| LeastVirtual::of_path(chg, p))
                    .collect();
                witnesses.sort();
                witnesses.dedup();
                Some(Entry::Blue(witnesses))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;
    use cpplookup_core::LookupTable;

    fn adapters<'a>(g: &'a Chg) -> Vec<(&'static str, Box<dyn MemberLookup + 'a>)> {
        vec![
            ("toposort", Box::new(TopoShortcut::new(g))),
            ("gxx-corrected", Box::new(GxxAdapter::corrected(g))),
            ("naive", Box::new(NaiveLookup::new(g))),
        ]
    }

    #[test]
    fn adapters_agree_with_core_on_resolved_class() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
        ] {
            let table = LookupTable::build(&g);
            for (name, mut adapter) in adapters(&g) {
                for c in g.classes() {
                    for m in g.member_ids() {
                        let expected = table.lookup(c, m);
                        let got = adapter.lookup(c, m);
                        if let Some(class) = expected.resolved_class() {
                            assert_eq!(
                                got.resolved_class(),
                                Some(class),
                                "{name} on ({}, {})",
                                g.class_name(c),
                                g.member_name(m)
                            );
                        } else if name != "toposort" {
                            // The shortcut is documented-unsound on
                            // ambiguous lookups; everyone else must
                            // match the verdict kind.
                            assert_eq!(
                                got.is_resolved(),
                                expected.is_resolved(),
                                "{name} on ({}, {})",
                                g.class_name(c),
                                g.member_name(m)
                            );
                            assert_eq!(
                                matches!(got, LookupOutcome::NotFound),
                                matches!(expected, LookupOutcome::NotFound),
                                "{name} on ({}, {})",
                                g.class_name(c),
                                g.member_name(m)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn faithful_gxx_reproduces_fig9_bug_through_the_trait() {
        let g = fixtures::fig9();
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        let mut faithful = GxxAdapter::faithful(&g);
        assert!(matches!(
            faithful.lookup(e, m),
            LookupOutcome::Ambiguous { .. }
        ));
        let mut corrected = GxxAdapter::corrected(&g);
        assert_eq!(
            corrected
                .lookup(e, m)
                .resolved_class()
                .map(|c| g.class_name(c)),
            Some("C")
        );
    }

    #[test]
    fn naive_entries_carry_accurate_abstractions() {
        let g = fixtures::fig3();
        let table = LookupTable::build(&g);
        let mut naive = NaiveLookup::new(&g);
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        // Full red-abstraction agreement, not just the class.
        assert_eq!(
            naive.entry(h, foo).unwrap().red_abs(),
            table.entry(h, foo).unwrap().red_abs()
        );
        // And path recovery works through the default trait method.
        assert_eq!(
            naive
                .resolve_path(&g, h, foo)
                .unwrap()
                .display(&g)
                .to_string(),
            "GH"
        );
    }

    #[test]
    fn toposort_unsoundness_is_visible() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        let table = LookupTable::build(&g);
        assert!(matches!(
            table.lookup(e, m),
            LookupOutcome::Ambiguous { .. }
        ));
        let mut short = TopoShortcut::new(&g);
        assert_eq!(
            short.lookup(e, m).resolved_class().map(|c| g.class_name(c)),
            Some("D")
        );
    }
}
