//! The "simple, but inefficient" two-phase algorithm of Section 4 of the
//! paper: propagate concrete definition *paths* through the CHG, then pick
//! the most-dominant reaching definition per class — with the paper's
//! killing optimization as a switch, so its effect can be measured
//! (experiment E12) and Figures 4–5 reproduced, crossed-out definitions
//! included.
//!
//! Dominance between concrete paths is decided through the subobject
//! model (one subobject graph per class, built on demand), which is what
//! makes this the *expensive* reference point: both the number of
//! propagated paths and the dominance test can blow up exponentially.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use cpplookup_chg::{Chg, ClassId, MemberId, Path};
use cpplookup_subobject::{Subobject, SubobjectGraph};

/// Configuration for the naive propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropagationConfig {
    /// Whether dominated definitions are killed at each node (the
    /// optimization of Section 4). Without killing, *every* definition
    /// path reaches every node it can.
    pub kill: bool,
    /// Budget on the total number of propagated definitions, and on the
    /// per-class subobject graphs used for dominance tests.
    pub budget: usize,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            kill: true,
            budget: 1_000_000,
        }
    }
}

/// The propagation exceeded its budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetError {
    /// The configured budget.
    pub budget: usize,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "naive propagation exceeded budget of {} definitions",
            self.budget
        )
    }
}

impl Error for BudgetError {}

/// Per-class result of the propagation: the reaching definition paths,
/// which of them were killed, and the most-dominant one if it exists —
/// the content of one node annotation in Figures 4–5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeDefs {
    /// The class.
    pub class: ClassId,
    /// All reaching definitions (generated + inherited), in arrival
    /// order.
    pub reaching: Vec<Path>,
    /// The subset of `reaching` killed at this node (empty when killing
    /// is disabled). These are the crossed-out paths of the figures.
    pub killed: Vec<Path>,
    /// The definitions propagated along outgoing edges
    /// (`reaching − killed`).
    pub propagated: Vec<Path>,
    /// The most-dominant reaching definition, when the lookup is
    /// unambiguous.
    pub most_dominant: Option<Path>,
}

/// Whole-hierarchy propagation result for one member name.
#[derive(Clone, Debug)]
pub struct Propagation {
    /// Per-class results, in topological order, for classes where the
    /// member is visible.
    pub nodes: Vec<NodeDefs>,
    /// Total definitions propagated (Σ per-node `propagated`), the cost
    /// measure of experiment E12.
    pub propagated_defs: usize,
    /// Total reaching definitions (Σ per-node `reaching`).
    pub reaching_defs: usize,
}

impl Propagation {
    /// The node record for `class`, if the member is visible there.
    pub fn node(&self, class: ClassId) -> Option<&NodeDefs> {
        self.nodes.iter().find(|n| n.class == class)
    }
}

/// Runs the two-phase Section 4 algorithm for member `m`.
///
/// # Errors
///
/// Returns [`BudgetError`] when the number of live definitions or the
/// subobject graphs needed for dominance tests exceed `config.budget`.
pub fn propagate(
    chg: &Chg,
    m: MemberId,
    config: PropagationConfig,
) -> Result<Propagation, BudgetError> {
    let mut out_defs: HashMap<ClassId, Vec<Path>> = HashMap::new();
    let mut nodes = Vec::new();
    let mut propagated_defs = 0usize;
    let mut reaching_defs = 0usize;

    for &c in chg.topo_order() {
        // Gather reaching definitions: inherited first (base declaration
        // order), then the generated one, matching the figures.
        let mut reaching: Vec<Path> = Vec::new();
        for spec in chg.direct_bases(c) {
            if let Some(defs) = out_defs.get(&spec.base) {
                for p in defs {
                    reaching.push(p.extended(chg, c));
                }
            }
        }
        if chg.declares(c, m) {
            reaching.push(Path::trivial(c));
        }
        if reaching.is_empty() {
            continue;
        }
        reaching_defs += reaching.len();
        if reaching_defs > config.budget {
            return Err(BudgetError {
                budget: config.budget,
            });
        }

        // Dominance among the reaching paths, via the subobject poset of c.
        let sg = SubobjectGraph::build(chg, c, config.budget).map_err(|_| BudgetError {
            budget: config.budget,
        })?;
        let ids: Vec<_> = reaching
            .iter()
            .map(|p| {
                sg.id_of(&Subobject::from_path(chg, p))
                    .expect("definition paths end at c")
            })
            .collect();
        let dominated: Vec<bool> = ids
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                ids.iter()
                    .enumerate()
                    .any(|(j, &v)| i != j && sg.dominates(v, u) && !(sg.dominates(u, v) && j > i))
            })
            .collect();
        let most_dominant = ids
            .iter()
            .position(|&u| ids.iter().all(|&v| sg.dominates(u, v)))
            .map(|i| reaching[i].clone());

        let (killed, propagated): (Vec<Path>, Vec<Path>) = if config.kill {
            let mut killed = Vec::new();
            let mut kept = Vec::new();
            for (i, p) in reaching.iter().enumerate() {
                if dominated[i] {
                    killed.push(p.clone());
                } else {
                    kept.push(p.clone());
                }
            }
            (killed, kept)
        } else {
            (Vec::new(), reaching.clone())
        };

        propagated_defs += propagated.len();
        out_defs.insert(c, propagated.clone());
        nodes.push(NodeDefs {
            class: c,
            reaching,
            killed,
            propagated,
            most_dominant,
        });
    }

    Ok(Propagation {
        nodes,
        propagated_defs,
        reaching_defs,
    })
}

/// Phase-2 lookup on top of [`propagate`]: the most-dominant reaching
/// definition at `c`, `Ok(None)` when `m` is invisible there, and
/// `Err(reaching paths)` when ambiguous.
///
/// # Errors
///
/// The `Err` variant carries the reaching definitions that made the
/// lookup ambiguous (inner result), wrapped in a [`BudgetError`] layer
/// for the propagation itself.
#[allow(clippy::type_complexity)]
pub fn lookup_naive(
    chg: &Chg,
    c: ClassId,
    m: MemberId,
    config: PropagationConfig,
) -> Result<Result<Option<Path>, Vec<Path>>, BudgetError> {
    let prop = propagate(chg, m, config)?;
    Ok(match prop.node(c) {
        None => Ok(None),
        Some(node) => match &node.most_dominant {
            Some(p) => Ok(Some(p.clone())),
            None => Err(node.reaching.clone()),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    fn show(chg: &Chg, paths: &[Path]) -> Vec<String> {
        let mut v: Vec<String> = paths.iter().map(|p| p.display(chg).to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn figure4_foo_propagation() {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        let prop = propagate(&g, foo, PropagationConfig::default()).unwrap();

        // Node D: ABD and ACD reach, neither dominates, both propagated.
        let d = prop.node(g.class_by_name("D").unwrap()).unwrap();
        assert_eq!(show(&g, &d.reaching), vec!["ABD", "ACD"]);
        assert!(d.killed.is_empty());
        assert_eq!(d.most_dominant, None);

        // Node G: generated G kills ABDG and ACDG (Figure 4's crossed-out
        // definitions).
        let gn = prop.node(g.class_by_name("G").unwrap()).unwrap();
        assert_eq!(show(&g, &gn.reaching), vec!["ABDG", "ACDG", "G"]);
        assert_eq!(show(&g, &gn.killed), vec!["ABDG", "ACDG"]);
        assert_eq!(show(&g, &gn.propagated), vec!["G"]);

        // Node H: GH dominates and kills ABDFH/ACDFH.
        let h = prop.node(g.class_by_name("H").unwrap()).unwrap();
        assert_eq!(show(&g, &h.reaching), vec!["ABDFH", "ACDFH", "GH"]);
        assert_eq!(show(&g, &h.killed), vec!["ABDFH", "ACDFH"]);
        assert_eq!(
            h.most_dominant.as_ref().unwrap().display(&g).to_string(),
            "GH"
        );
    }

    #[test]
    fn figure5_bar_propagation() {
        let g = fixtures::fig3();
        let bar = g.member_by_name("bar").unwrap();
        let prop = propagate(&g, bar, PropagationConfig::default()).unwrap();

        // Node F: DF and EF reach; ambiguous; both (blue) propagated.
        let f = prop.node(g.class_by_name("F").unwrap()).unwrap();
        assert_eq!(show(&g, &f.reaching), vec!["DF", "EF"]);
        assert_eq!(f.most_dominant, None);
        assert_eq!(show(&g, &f.propagated), vec!["DF", "EF"]);

        // Node G: G kills DG.
        let gn = prop.node(g.class_by_name("G").unwrap()).unwrap();
        assert_eq!(show(&g, &gn.killed), vec!["DG"]);

        // Node H: EFH survives (GH does not dominate it): ambiguous,
        // exactly the blue-definition scenario the paper uses to justify
        // propagating blues.
        let h = prop.node(g.class_by_name("H").unwrap()).unwrap();
        assert_eq!(show(&g, &h.reaching), vec!["DFH", "EFH", "GH"]);
        assert_eq!(h.most_dominant, None);
        assert_eq!(show(&g, &h.killed), vec!["DFH"]);
    }

    #[test]
    fn killing_never_changes_results() {
        // Corollary 1 of the paper, checked on all fixtures.
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
        ] {
            for m in g.member_ids() {
                let with = propagate(
                    &g,
                    m,
                    PropagationConfig {
                        kill: true,
                        budget: 100_000,
                    },
                )
                .unwrap();
                let without = propagate(
                    &g,
                    m,
                    PropagationConfig {
                        kill: false,
                        budget: 100_000,
                    },
                )
                .unwrap();
                for node in &with.nodes {
                    let other = without.node(node.class).unwrap();
                    // Ambiguity verdicts agree; winners are ≈-equivalent.
                    match (&node.most_dominant, &other.most_dominant) {
                        (None, None) => {}
                        (Some(p), Some(q)) => {
                            assert!(p.equivalent(q, &g), "winners must be ≈-equivalent")
                        }
                        (p, q) => panic!("kill changed the verdict: {p:?} vs {q:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn killing_reduces_propagated_counts() {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        let with = propagate(
            &g,
            foo,
            PropagationConfig {
                kill: true,
                budget: 100_000,
            },
        )
        .unwrap();
        let without = propagate(
            &g,
            foo,
            PropagationConfig {
                kill: false,
                budget: 100_000,
            },
        )
        .unwrap();
        assert!(with.propagated_defs < without.propagated_defs);
    }

    #[test]
    fn lookup_naive_agrees_with_paper() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let win = lookup_naive(&g, h, foo, PropagationConfig::default())
            .unwrap()
            .unwrap()
            .unwrap();
        assert_eq!(win.display(&g).to_string(), "GH");
        assert!(lookup_naive(&g, h, bar, PropagationConfig::default())
            .unwrap()
            .is_err());
        // Invisible member.
        let a = g.class_by_name("A").unwrap();
        assert_eq!(
            lookup_naive(&g, a, bar, PropagationConfig::default()).unwrap(),
            Ok(None)
        );
    }

    #[test]
    fn budget_trips() {
        let g = fixtures::fig3();
        let foo = g.member_by_name("foo").unwrap();
        assert!(propagate(
            &g,
            foo,
            PropagationConfig {
                kill: false,
                budget: 3
            }
        )
        .is_err());
    }
}
