//! The topological-number shortcut of Section 7.2 of the paper.
//!
//! *"If one assumes that a particular lookup is unambiguous, then the
//! lookup can be done very simply as follows. Associate each class `X`
//! with a topological number ... Then, from the set of definitions that
//! reach a class `X`, one simply selects the `u` for which
//! `top-sort(ldc(u))` is maximum as the most dominant definition."*
//!
//! This is the Eiffel/Attali-et-al. assumption: correct whenever the
//! lookup really is unambiguous (the winner's `ldc` is strictly the most
//! derived declaring ancestor), silently wrong otherwise — experiment E17
//! quantifies how often.

use cpplookup_chg::{Chg, ClassId, MemberId};

/// Resolves `m` in `c` by picking the declaring ancestor class (or `c`
/// itself) with the largest topological number. Returns `None` when `m`
/// is not visible in `c`.
///
/// **Only sound when the real lookup is unambiguous** — see module docs.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_baselines::toposort::toposort_lookup;
///
/// let g = fixtures::fig2();
/// let e = g.class_by_name("E").unwrap();
/// let m = g.member_by_name("m").unwrap();
/// // The fig2 lookup is unambiguous, so the shortcut gets it right.
/// assert_eq!(toposort_lookup(&g, e, m).map(|c| g.class_name(c)), Some("D"));
/// ```
pub fn toposort_lookup(chg: &Chg, c: ClassId, m: MemberId) -> Option<ClassId> {
    chg.declaring_classes(m)
        .iter()
        .copied()
        .filter(|&d| d == c || chg.is_base_of(d, c))
        .max_by_key(|&d| chg.topo_position(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;
    use cpplookup_core::{LookupOutcome, LookupTable};

    #[test]
    fn matches_real_lookup_when_unambiguous() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::dominance_diamond(),
        ] {
            let t = LookupTable::build(&g);
            for c in g.classes() {
                for m in g.member_ids() {
                    if let LookupOutcome::Resolved { class, .. } = t.lookup(c, m) {
                        assert_eq!(
                            toposort_lookup(&g, c, m),
                            Some(class),
                            "shortcut must agree on unambiguous lookup ({}, {})",
                            g.class_name(c),
                            g.member_name(m)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn silently_wrong_on_ambiguous_lookups() {
        // fig1's lookup(E, m) is ambiguous, but the shortcut happily
        // returns D (the most derived declarer) — the unsoundness the
        // paper warns about.
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        let t = LookupTable::build(&g);
        assert!(matches!(t.lookup(e, m), LookupOutcome::Ambiguous { .. }));
        assert_eq!(
            toposort_lookup(&g, e, m).map(|c| g.class_name(c)),
            Some("D")
        );
    }

    #[test]
    fn none_when_invisible() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        assert_eq!(toposort_lookup(&g, a, bar), None);
    }

    #[test]
    fn own_declaration_wins() {
        let g = fixtures::fig3();
        let gg = g.class_by_name("G").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        assert_eq!(toposort_lookup(&g, gg, foo), Some(gg));
    }
}
