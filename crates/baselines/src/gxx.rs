//! The g++ 2.7.2.1 member lookup strategy, reimplemented from the paper's
//! description (Section 7.1), in two flavours:
//!
//! * [`gxx_lookup`] — **faithful**, including the bug the paper reports
//!   (confirmed by g++ co-author Mike Stump): during the breadth-first
//!   scan of the subobject graph, the moment two definitions are found of
//!   which neither dominates the other, ambiguity is reported and the
//!   search quits. On Figure 9 this is wrong — a definition found later
//!   dominates both. Per the paper, 3 of the 7 compilers the authors
//!   tried shared this bug.
//! * [`gxx_lookup_corrected`] — the same breadth-first traversal, but
//!   deferring the verdict until all definitions are collected.
//!
//! Both run on the explicit subobject graph and therefore inherit its
//! worst-case exponential size — the motivation for the paper's CHG-based
//! algorithm.

use std::collections::VecDeque;

use cpplookup_chg::{Chg, ClassId, MemberId};
use cpplookup_subobject::{most_dominant, SubobjectGraph, SubobjectId};

/// Outcome of a g++-style lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GxxResult {
    /// No subobject declares the member.
    NotFound,
    /// The lookup resolved to this subobject.
    Resolved(SubobjectId),
    /// The lookup was reported ambiguous. For the faithful variant this
    /// may be a *false* ambiguity (see Figure 9 of the paper).
    Ambiguous,
}

impl GxxResult {
    /// The declaring class of a resolved lookup.
    pub fn resolved_class(&self, sg: &SubobjectGraph) -> Option<ClassId> {
        match self {
            GxxResult::Resolved(id) => Some(sg.subobject(*id).class()),
            _ => None,
        }
    }
}

fn bfs_order(sg: &SubobjectGraph) -> impl Iterator<Item = SubobjectId> + '_ {
    let mut visited = vec![false; sg.len()];
    let mut queue = VecDeque::new();
    visited[sg.root().index()] = true;
    queue.push_back(sg.root());
    std::iter::from_fn(move || {
        let id = queue.pop_front()?;
        for &child in sg.direct_bases(id) {
            if !visited[child.index()] {
                visited[child.index()] = true;
                queue.push_back(child);
            }
        }
        Some(id)
    })
}

/// The faithful g++ 2.7.2.1 algorithm: breadth-first scan keeping the
/// most-dominant definition found *so far*, giving up on the first
/// incomparable pair.
///
/// # Examples
///
/// The Figure 9 counterexample — faithful g++ reports a spurious
/// ambiguity:
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_baselines::gxx::{gxx_lookup, gxx_lookup_corrected, GxxResult};
/// use cpplookup_subobject::SubobjectGraph;
///
/// let g = fixtures::fig9();
/// let e = g.class_by_name("E").unwrap();
/// let m = g.member_by_name("m").unwrap();
/// let sg = SubobjectGraph::build(&g, e, 1_000)?;
/// assert_eq!(gxx_lookup(&g, &sg, m), GxxResult::Ambiguous); // the bug
/// let fixed = gxx_lookup_corrected(&g, &sg, m);
/// assert_eq!(fixed.resolved_class(&sg).map(|c| g.class_name(c)), Some("C"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gxx_lookup(chg: &Chg, sg: &SubobjectGraph, m: MemberId) -> GxxResult {
    let mut best: Option<SubobjectId> = None;
    for id in bfs_order(sg) {
        if !chg.declares(sg.subobject(id).class(), m) {
            continue;
        }
        match best {
            None => best = Some(id),
            Some(b) => {
                if sg.dominates(b, id) {
                    // keep b
                } else if sg.dominates(id, b) {
                    best = Some(id);
                } else {
                    // Neither dominates: report ambiguity and quit —
                    // the incorrect step the paper identifies.
                    return GxxResult::Ambiguous;
                }
            }
        }
    }
    match best {
        Some(id) => GxxResult::Resolved(id),
        None => GxxResult::NotFound,
    }
}

/// The corrected breadth-first algorithm: collect every definition, then
/// ask for a global most-dominant element.
pub fn gxx_lookup_corrected(chg: &Chg, sg: &SubobjectGraph, m: MemberId) -> GxxResult {
    let defs: Vec<SubobjectId> = bfs_order(sg)
        .filter(|&id| chg.declares(sg.subobject(id).class(), m))
        .collect();
    if defs.is_empty() {
        return GxxResult::NotFound;
    }
    match most_dominant(sg, &defs) {
        Some(u) => GxxResult::Resolved(u),
        None => GxxResult::Ambiguous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;
    use cpplookup_core::{LookupOutcome, LookupTable};

    fn sg_of(g: &Chg, class: &str) -> SubobjectGraph {
        SubobjectGraph::build(g, g.class_by_name(class).unwrap(), 10_000).unwrap()
    }

    #[test]
    fn fig9_faithful_is_wrong_corrected_is_right() {
        let g = fixtures::fig9();
        let sg = sg_of(&g, "E");
        let m = g.member_by_name("m").unwrap();
        assert_eq!(gxx_lookup(&g, &sg, m), GxxResult::Ambiguous);
        let fixed = gxx_lookup_corrected(&g, &sg, m);
        assert_eq!(
            fixed.resolved_class(&sg).map(|c| g.class_name(c)),
            Some("C")
        );
        // And the paper's algorithm agrees with the corrected one.
        let t = LookupTable::build(&g);
        let e = g.class_by_name("E").unwrap();
        match t.lookup(e, m) {
            LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "C"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn both_agree_on_fig1_and_fig2() {
        for (fixture, ambiguous) in [(fixtures::fig1(), true), (fixtures::fig2(), false)] {
            let sg = sg_of(&fixture, "E");
            let m = fixture.member_by_name("m").unwrap();
            let faithful = gxx_lookup(&fixture, &sg, m);
            let corrected = gxx_lookup_corrected(&fixture, &sg, m);
            if ambiguous {
                assert_eq!(faithful, GxxResult::Ambiguous);
                assert_eq!(corrected, GxxResult::Ambiguous);
            } else {
                assert_eq!(faithful, corrected);
                assert!(matches!(faithful, GxxResult::Resolved(_)));
            }
        }
    }

    #[test]
    fn fig3_foo_resolves_bar_does_not() {
        let g = fixtures::fig3();
        let sg = sg_of(&g, "H");
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let r = gxx_lookup_corrected(&g, &sg, foo);
        assert_eq!(r.resolved_class(&sg).map(|c| g.class_name(c)), Some("G"));
        assert_eq!(gxx_lookup_corrected(&g, &sg, bar), GxxResult::Ambiguous);
    }

    #[test]
    fn faithful_may_also_be_right_on_fig3() {
        // Fig3/foo: BFS order from H visits GH before the deep As, so the
        // faithful algorithm happens to get it right here.
        let g = fixtures::fig3();
        let sg = sg_of(&g, "H");
        let foo = g.member_by_name("foo").unwrap();
        assert!(matches!(gxx_lookup(&g, &sg, foo), GxxResult::Resolved(_)));
    }

    #[test]
    fn not_found() {
        let g = fixtures::fig3();
        let sg = sg_of(&g, "A");
        let bar = g.member_by_name("bar").unwrap();
        assert_eq!(gxx_lookup(&g, &sg, bar), GxxResult::NotFound);
        assert_eq!(gxx_lookup_corrected(&g, &sg, bar), GxxResult::NotFound);
    }

    #[test]
    fn member_in_start_class_wins_immediately() {
        let g = fixtures::fig3();
        let sg = sg_of(&g, "G");
        let foo = g.member_by_name("foo").unwrap();
        let r = gxx_lookup(&g, &sg, foo);
        assert_eq!(r.resolved_class(&sg).map(|c| g.class_name(c)), Some("G"));
    }
}
