//! Baseline member lookup algorithms the paper compares against or
//! derives from.
//!
//! * [`gxx`] — the g++ 2.7.2.1 breadth-first subobject-graph lookup,
//!   both faithful (reproducing the false-ambiguity bug of Figure 9) and
//!   corrected;
//! * [`naive`] — the Section 4 two-phase path-propagation algorithm with
//!   the killing optimization as a switch (reproduces Figures 4–5 and
//!   powers the killing-ablation experiment);
//! * [`toposort`] — the topological-number shortcut of Section 7.2,
//!   sound only for unambiguous lookups.
//!
//! All of these exist to be measured against `cpplookup-core`'s
//! CHG-based algorithm; see `cpplookup-bench` for the experiments. The
//! [`adapters`] module puts each baseline behind the
//! [`cpplookup_core::MemberLookup`] trait so the differential suite can
//! drive them all through one interface.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapters;
pub mod gxx;
pub mod naive;
pub mod toposort;
