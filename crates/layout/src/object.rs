//! Complete-object layout: a byte offset for every subobject of the
//! Rossie–Friedman subobject model, plus data-member slots.
//!
//! The subobject crate answers *which* subobjects an object contains;
//! this module answers *where* each lives: replicated (non-virtual)
//! subobjects inside their parent's non-virtual part, shared virtual
//! bases appended once at the end of the complete object.

use std::collections::HashMap;
use std::fmt::Write as _;

use cpplookup_chg::{Chg, ClassId, MemberId};
use cpplookup_subobject::{BlowupError, Subobject, SubobjectGraph, SubobjectId};

use crate::model::{virtual_base_order, NvLayouts};

/// The layout of a complete object of one class.
#[derive(Debug)]
pub struct ObjectLayout {
    complete: ClassId,
    size: u64,
    vbase_offsets: Vec<(ClassId, u64)>,
    graph: SubobjectGraph,
    offsets: Vec<u64>, // indexed by SubobjectId
}

impl ObjectLayout {
    /// Computes the layout of a complete `complete` object.
    ///
    /// # Errors
    ///
    /// Returns [`BlowupError`] if the object has more than `limit`
    /// subobjects (replication is exponential in the worst case).
    pub fn compute(
        chg: &Chg,
        nv: &NvLayouts,
        complete: ClassId,
        limit: usize,
    ) -> Result<Self, BlowupError> {
        let graph = SubobjectGraph::build(chg, complete, limit)?;

        // Anchor offsets: the complete object's non-virtual part at 0,
        // virtual bases appended in discovery order.
        let mut offset = nv.of(complete).size;
        let mut vbase_offsets = Vec::new();
        let mut anchor_offset: HashMap<ClassId, u64> = HashMap::new();
        anchor_offset.insert(complete, 0);
        for v in virtual_base_order(chg, complete) {
            vbase_offsets.push((v, offset));
            anchor_offset.insert(v, offset);
            offset += nv.of(v).size;
        }
        let size = offset.max(1); // complete objects are at least 1 byte

        // Every subobject: anchor offset plus the walk down its fixed
        // (all non-virtual) chain.
        let mut offsets = vec![0u64; graph.len()];
        for id in graph.iter() {
            let so = graph.subobject(id);
            let anchor = so.anchor();
            let mut off = *anchor_offset
                .get(&anchor)
                .expect("anchor is the complete class or one of its virtual bases");
            let sigma = so.sigma();
            // sigma = [ldc, ..., anchor]; descend from the anchor.
            for w in sigma.windows(2).rev() {
                off += nv
                    .base_offset(w[1], w[0])
                    .expect("sigma edges are non-virtual direct bases");
            }
            offsets[id.index()] = off;
        }

        Ok(ObjectLayout {
            complete,
            size,
            vbase_offsets,
            graph,
            offsets,
        })
    }

    /// The complete class.
    pub fn complete(&self) -> ClassId {
        self.complete
    }

    /// Total object size in bytes (`sizeof`).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The subobject graph the layout is based on.
    pub fn graph(&self) -> &SubobjectGraph {
        &self.graph
    }

    /// Offsets of the shared virtual bases, in layout order.
    pub fn vbase_offsets(&self) -> &[(ClassId, u64)] {
        &self.vbase_offsets
    }

    /// Byte offset of a subobject.
    pub fn offset(&self, id: SubobjectId) -> u64 {
        self.offsets[id.index()]
    }

    /// Byte offset of a subobject given by canonical value, if it exists
    /// in this object.
    pub fn offset_of(&self, so: &Subobject) -> Option<u64> {
        self.graph.id_of(so).map(|id| self.offset(id))
    }

    /// Byte offset of the data member `m` *declared by* the class of
    /// subobject `id` (each subobject carries its own copy).
    pub fn field_offset(&self, nv: &NvLayouts, id: SubobjectId, m: MemberId) -> Option<u64> {
        let class = self.graph.subobject(id).class();
        nv.of(class)
            .field_offsets
            .iter()
            .find(|&&(fm, _)| fm == m)
            .map(|&(_, rel)| self.offset(id) + rel)
    }

    /// Every `(subobject, member, absolute offset)` data slot of the
    /// object, sorted by offset — the physical field map.
    pub fn all_field_slots(&self, nv: &NvLayouts) -> Vec<(SubobjectId, MemberId, u64)> {
        let mut slots = Vec::new();
        for id in self.graph.iter() {
            let class = self.graph.subobject(id).class();
            for &(m, rel) in &nv.of(class).field_offsets {
                slots.push((id, m, self.offset(id) + rel));
            }
        }
        slots.sort_by_key(|&(_, _, off)| off);
        slots
    }

    /// Renders the layout clang-`-fdump-record-layouts` style.
    pub fn render(&self, chg: &Chg, nv: &NvLayouts) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "layout of {} (size {}):",
            chg.class_name(self.complete),
            self.size
        );
        let mut rows: Vec<(u64, String)> = Vec::new();
        for id in self.graph.iter() {
            let so = self.graph.subobject(id);
            let virt = if so.is_virtually_anchored() {
                " (virtual)"
            } else {
                ""
            };
            rows.push((self.offset(id), format!("{}{}", so.display(chg), virt)));
        }
        for (id, m, off) in self.all_field_slots(nv) {
            let class = self.graph.subobject(id).class();
            rows.push((
                off,
                format!("  {}::{}", chg.class_name(class), chg.member_name(m)),
            ));
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (off, label) in rows {
            let _ = writeln!(out, "  {off:>4} | {label}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, Path};

    fn layout(g: &Chg, class: &str) -> (NvLayouts, ObjectLayout) {
        let nv = NvLayouts::compute(g);
        let c = g.class_by_name(class).unwrap();
        let l = ObjectLayout::compute(g, &nv, c, 100_000).unwrap();
        (nv, l)
    }

    #[test]
    fn fig1_two_a_subobjects_at_distinct_offsets() {
        let g = fixtures::fig1();
        let (_, l) = layout(&g, "E");
        let off = |p: &str| {
            l.offset_of(&Subobject::from_path(&g, &Path::parse(&g, p).unwrap()))
                .unwrap()
        };
        assert_eq!(l.size(), 16);
        assert_eq!(off("ABCE"), 0, "A under the primary C chain");
        assert_eq!(off("ABDE"), 8, "A under D");
        assert_ne!(off("ABCE"), off("ABDE"));
    }

    #[test]
    fn fig2_single_shared_a() {
        let g = fixtures::fig2();
        let (_, l) = layout(&g, "E");
        // C nv (8) + D nv (8) + shared B nv (8, containing A).
        assert_eq!(l.size(), 24);
        let b = g.class_by_name("B").unwrap();
        assert_eq!(l.vbase_offsets(), &[(b, 16)]);
        let off = |p: &str| {
            l.offset_of(&Subobject::from_path(&g, &Path::parse(&g, p).unwrap()))
                .unwrap()
        };
        assert_eq!(off("ABDE"), 16, "the one shared A inside the virtual B");
        assert_eq!(off("ABCE"), 16, "equivalent path, same subobject");
    }

    #[test]
    fn fig9_field_slots_disjoint_and_in_bounds() {
        let g = fixtures::fig9();
        let (nv, l) = layout(&g, "E");
        let slots = l.all_field_slots(&nv);
        // Four distinct m copies: S, A, B, C subobjects.
        assert_eq!(slots.len(), 4);
        let mut offsets: Vec<u64> = slots.iter().map(|&(_, _, o)| o).collect();
        offsets.dedup();
        assert_eq!(offsets.len(), 4, "each copy has its own slot");
        for &(_, _, o) in &slots {
            assert!(o + 8 <= l.size());
        }
    }

    #[test]
    fn empty_object_is_one_byte() {
        let mut b = cpplookup_chg::ChgBuilder::new();
        let c = b.class("Empty");
        let g = b.finish().unwrap();
        let nv = NvLayouts::compute(&g);
        let l = ObjectLayout::compute(&g, &nv, c, 10).unwrap();
        assert_eq!(l.size(), 1);
        assert_eq!(l.offset(l.graph().root()), 0);
    }

    #[test]
    fn virtual_base_laid_out_once() {
        let g = fixtures::dominance_diamond();
        let (_, l) = layout(&g, "Bottom");
        assert_eq!(l.vbase_offsets().len(), 1);
        let top = g.class_by_name("Top").unwrap();
        assert_eq!(l.vbase_offsets()[0].0, top);
        // Left nv (vptr, 8) + Right nv (vptr, 8) + Top (vptr, 8).
        assert_eq!(l.size(), 24);
    }

    #[test]
    fn render_contains_offsets_and_names() {
        let g = fixtures::fig2();
        let (nv, l) = layout(&g, "E");
        let text = l.render(&g, &nv);
        assert!(text.contains("layout of E (size 24):"), "{text}");
        assert!(text.contains("   0 | E"));
        assert!(text.contains("(virtual)"));
    }

    #[test]
    fn blowup_guard() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let nv = NvLayouts::compute(&g);
        assert!(ObjectLayout::compute(&g, &nv, e, 3).is_err());
    }
}
