//! Virtual-table construction on top of the object layout — the concrete
//! artifact behind the paper's "constructing virtual-function tables"
//! motivation.
//!
//! Every distinct vptr location in a complete object owns one vtable.
//! A vtable has a slot per callable member name visible at that location;
//! each slot binds to the *final overrider* — which is exactly
//! `lookup(complete, m)` — and records the `this`-pointer adjustment from
//! the vptr's subobject to the subobject that declares the overrider
//! (non-zero adjustments are the thunks of real ABIs).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cpplookup_chg::{Chg, ClassId, MemberId};
use cpplookup_core::{LookupOutcome, LookupTable};
use cpplookup_subobject::{Subobject, SubobjectId};

use crate::model::NvLayouts;
use crate::object::ObjectLayout;

/// One vtable slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VtableSlot {
    /// The final overrider and the `this` adjustment (in bytes) from the
    /// vtable's subobject to the overrider's subobject. Non-zero means a
    /// thunk in a real ABI.
    Bound {
        /// The member name.
        member: MemberId,
        /// Class declaring the final overrider.
        declaring_class: ClassId,
        /// `offset(overrider subobject) - offset(vtable subobject)`.
        this_adjustment: i64,
    },
    /// Calling this name through this object is ill-formed (ambiguous
    /// lookup); the slot is poisoned.
    Ambiguous {
        /// The member name.
        member: MemberId,
    },
}

/// A vtable: the group of subobjects sharing one vptr, plus the slots.
#[derive(Clone, Debug)]
pub struct Vtable {
    /// Byte offset of the vptr this table is installed at.
    pub vptr_offset: u64,
    /// The subobjects sharing this vptr (primary-base chains), outermost
    /// first.
    pub covers: Vec<SubobjectId>,
    /// Slots, sorted by member id.
    pub slots: Vec<VtableSlot>,
}

/// All vtables of one complete object.
#[derive(Clone, Debug)]
pub struct Vtables {
    complete: ClassId,
    tables: Vec<Vtable>,
}

impl Vtables {
    /// Builds the vtables of `layout`'s complete object.
    ///
    /// Slots bind with the *complete* class's lookup (dynamic dispatch —
    /// the Rossie–Friedman `dyn`); the adjustment is computed from the
    /// recovered winning path's subobject.
    pub fn compute(chg: &Chg, nv: &NvLayouts, layout: &ObjectLayout, table: &LookupTable) -> Self {
        let complete = layout.complete();
        let graph = layout.graph();

        // Group subobjects by the absolute offset of their vptr (primary
        // chains share one). Outermost = largest class (latest topo pos).
        let mut groups: BTreeMap<u64, Vec<SubobjectId>> = BTreeMap::new();
        for id in graph.iter() {
            let class = graph.subobject(id).class();
            if let Some(rel) = nv.of(class).vptr {
                groups.entry(layout.offset(id) + rel).or_default().push(id);
            }
        }

        let mut tables = Vec::new();
        for (vptr_offset, mut covers) in groups {
            covers.sort_by_key(|&id| {
                std::cmp::Reverse(chg.topo_position(graph.subobject(id).class()))
            });
            let outermost_class = graph.subobject(covers[0]).class();

            // Slots: every callable member name visible in the outermost
            // class of the group, in member-id order.
            let mut members: Vec<MemberId> =
                chg.member_ids()
                    .filter(|&m| {
                        chg.is_member_visible(outermost_class, m)
                            && chg.declaring_classes(m).iter().any(|&d| {
                                chg.member_decl(d, m).is_some_and(|x| x.kind.is_function())
                            })
                    })
                    .collect();
            members.sort();

            let mut slots = Vec::new();
            for m in members {
                let slot = match table.lookup(complete, m) {
                    LookupOutcome::Resolved { class, .. } => {
                        let path = table
                            .resolve_path(chg, complete, m)
                            .expect("resolved lookups recover a path");
                        let target = graph
                            .id_of(&Subobject::from_path(chg, &path))
                            .expect("the winning path names a subobject of the object");
                        VtableSlot::Bound {
                            member: m,
                            declaring_class: class,
                            this_adjustment: layout.offset(target) as i64 - vptr_offset as i64,
                        }
                    }
                    _ => VtableSlot::Ambiguous { member: m },
                };
                slots.push(slot);
            }
            tables.push(Vtable {
                vptr_offset,
                covers,
                slots,
            });
        }
        Vtables { complete, tables }
    }

    /// The complete class these vtables belong to.
    pub fn complete(&self) -> ClassId {
        self.complete
    }

    /// The vtables, in vptr-offset order.
    pub fn tables(&self) -> &[Vtable] {
        &self.tables
    }

    /// The vtable installed at a given vptr offset.
    pub fn at_offset(&self, vptr_offset: u64) -> Option<&Vtable> {
        self.tables.iter().find(|t| t.vptr_offset == vptr_offset)
    }

    /// Renders the tables, ABI-dump style.
    pub fn render(&self, chg: &Chg, layout: &ObjectLayout) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "vtables of {}:", chg.class_name(self.complete));
        for t in &self.tables {
            let covers: Vec<String> = t
                .covers
                .iter()
                .map(|&id| layout.graph().subobject(id).display(chg).to_string())
                .collect();
            let _ = writeln!(
                out,
                "  vptr @ {:>3} ({})",
                t.vptr_offset,
                covers.join(" = ")
            );
            for slot in &t.slots {
                match slot {
                    VtableSlot::Bound {
                        member,
                        declaring_class,
                        this_adjustment,
                    } => {
                        let thunk = if *this_adjustment != 0 {
                            format!("  [thunk this{this_adjustment:+}]")
                        } else {
                            String::new()
                        };
                        let _ = writeln!(
                            out,
                            "    {:<10} -> {}::{}{thunk}",
                            chg.member_name(*member),
                            chg.class_name(*declaring_class),
                            chg.member_name(*member)
                        );
                    }
                    VtableSlot::Ambiguous { member } => {
                        let _ =
                            writeln!(out, "    {:<10} -> <ambiguous>", chg.member_name(*member));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    fn vtables_of(g: &Chg, class: &str) -> (NvLayouts, ObjectLayout, Vtables) {
        let nv = NvLayouts::compute(g);
        let c = g.class_by_name(class).unwrap();
        let layout = ObjectLayout::compute(g, &nv, c, 100_000).unwrap();
        let table = LookupTable::build(g);
        let vt = Vtables::compute(g, &nv, &layout, &table);
        (nv, layout, vt)
    }

    #[test]
    fn dominance_diamond_thunks() {
        // Bottom : Left, Right with virtual Top; Left::f overrides Top::f.
        // Layout: Left(+Bottom primary) @0, Right @8, Top @16.
        let g = fixtures::dominance_diamond();
        let (_, _, vt) = vtables_of(&g, "Bottom");
        assert_eq!(vt.tables().len(), 3);
        let f = g.member_by_name("f").unwrap();
        // Primary table: binds to Left::f with no adjustment.
        match &vt.at_offset(0).unwrap().slots[0] {
            VtableSlot::Bound {
                member,
                declaring_class,
                this_adjustment,
            } => {
                assert_eq!(*member, f);
                assert_eq!(g.class_name(*declaring_class), "Left");
                assert_eq!(*this_adjustment, 0);
            }
            other => panic!("{other:?}"),
        }
        // Right's table: same final overrider, adjustment -8 (thunk).
        match &vt.at_offset(8).unwrap().slots[0] {
            VtableSlot::Bound {
                this_adjustment, ..
            } => assert_eq!(*this_adjustment, -8),
            other => panic!("{other:?}"),
        }
        // Shared Top's table: thunk back to offset 0 (-16).
        match &vt.at_offset(16).unwrap().slots[0] {
            VtableSlot::Bound {
                this_adjustment, ..
            } => assert_eq!(*this_adjustment, -16),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn primary_chains_share_one_table() {
        // fig1: E : C, D with A's vptr shared up each chain.
        let g = fixtures::fig1();
        let (_, layout, vt) = vtables_of(&g, "E");
        // Two vptrs: the C-chain at 0 (covering E, CE, BCE, ABCE) and the
        // D-chain at 8.
        assert_eq!(vt.tables().len(), 2);
        let t0 = vt.at_offset(0).unwrap();
        assert_eq!(t0.covers.len(), 4);
        let outer = layout.graph().subobject(t0.covers[0]).class();
        assert_eq!(g.class_name(outer), "E", "outermost first");
        // E's lookup of m is ambiguous: poisoned slot.
        assert!(matches!(t0.slots[0], VtableSlot::Ambiguous { .. }));
    }

    #[test]
    fn unambiguous_object_has_clean_slots() {
        let g = fixtures::fig2();
        let (_, _, vt) = vtables_of(&g, "E");
        for t in vt.tables() {
            for slot in &t.slots {
                assert!(matches!(slot, VtableSlot::Bound { .. }), "{slot:?}");
            }
        }
        // Every slot binds to D::m (the dominant definition).
        let d = g.class_by_name("D").unwrap();
        for t in vt.tables() {
            match &t.slots[0] {
                VtableSlot::Bound {
                    declaring_class, ..
                } => {
                    assert_eq!(*declaring_class, d)
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn data_only_hierarchies_have_empty_slot_lists() {
        // fig9 classes carry vptrs for their virtual bases (our model
        // merges the vbptr into the vptr), but with no member functions
        // anywhere, every table is slot-free.
        let g = fixtures::fig9();
        let nv = NvLayouts::compute(&g);
        let e = g.class_by_name("E").unwrap();
        let layout = ObjectLayout::compute(&g, &nv, e, 1000).unwrap();
        let table = LookupTable::build(&g);
        let vt = Vtables::compute(&g, &nv, &layout, &table);
        assert!(!vt.tables().is_empty(), "vbptrs exist");
        assert!(vt.tables().iter().all(|t| t.slots.is_empty()));
        // A truly static hierarchy (no virtual anything) has none at all.
        let flat = fixtures::static_diamond();
        let nv = NvLayouts::compute(&flat);
        let d = flat.class_by_name("D").unwrap();
        let layout = ObjectLayout::compute(&flat, &nv, d, 1000).unwrap();
        let table = LookupTable::build(&flat);
        let vt = Vtables::compute(&flat, &nv, &layout, &table);
        assert!(vt.tables().is_empty());
    }

    #[test]
    fn render_mentions_thunks() {
        let g = fixtures::dominance_diamond();
        let (_, layout, vt) = vtables_of(&g, "Bottom");
        let text = vt.render(&g, &layout);
        assert!(text.contains("vtables of Bottom:"));
        assert!(text.contains("[thunk this-16]"), "{text}");
        assert!(text.contains("Left::f"));
    }
}
