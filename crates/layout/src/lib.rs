//! Subobject-accurate C++ object layout.
//!
//! The paper's formalism tells a compiler *which* subobjects a complete
//! object contains; laying them out in memory (and knowing which
//! definition each dispatch slot binds to — `cpplookup-core::dispatch`)
//! is the downstream work the paper motivates with "constructing
//! virtual-function tables". This crate computes:
//!
//! * per-class **non-virtual layouts** ([`NvLayouts`]): data-member
//!   slots, vptr placement with primary-base sharing,
//! * per-class **complete-object layouts** ([`ObjectLayout`]): a byte
//!   offset for every subobject of the Rossie–Friedman model, shared
//!   virtual bases appended once, plus the absolute slot of every data
//!   member copy,
//! * **virtual tables** ([`Vtables`]): one table per vptr location, each
//!   slot bound to the final overrider by member lookup, with the
//!   `this`-adjustments (thunks) that fall out of the subobject offsets.
//!
//! The ABI model is deliberately simplified (8-byte slots, no empty-base
//! optimization, every member function dispatch-relevant); what it
//! preserves — and what the tests verify against `cpplookup-subobject` —
//! is the *structure*: exactly the right set of subobjects, replication
//! of non-virtual bases, sharing of virtual ones, and disjoint member
//! slots.
//!
//! # Examples
//!
//! Figure 1 vs Figure 2 of the paper, physically:
//!
//! ```
//! use cpplookup_chg::fixtures;
//! use cpplookup_layout::{NvLayouts, ObjectLayout};
//!
//! // Non-virtual: two A subobjects inside an E.
//! let g = fixtures::fig1();
//! let nv = NvLayouts::compute(&g);
//! let e = g.class_by_name("E").unwrap();
//! let l = ObjectLayout::compute(&g, &nv, e, 1_000)?;
//! let a = g.class_by_name("A").unwrap();
//! assert_eq!(l.graph().subobjects_of_class(a).count(), 2);
//!
//! // Virtual: one shared A, at one offset.
//! let g = fixtures::fig2();
//! let nv = NvLayouts::compute(&g);
//! let e = g.class_by_name("E").unwrap();
//! let l = ObjectLayout::compute(&g, &nv, e, 1_000)?;
//! let a = g.class_by_name("A").unwrap();
//! assert_eq!(l.graph().subobjects_of_class(a).count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod model;
mod object;
mod vtable;

pub use model::{virtual_base_order, NvLayout, NvLayouts, SLOT};
pub use object::ObjectLayout;
pub use vtable::{Vtable, VtableSlot, Vtables};
