//! The layout model: sizes, slots, and the per-class non-virtual layout.
//!
//! The model is a simplified Itanium-style ABI:
//!
//! * every non-static data member occupies one 8-byte slot (we lay out
//!   *structure*, not scalar packing);
//! * a class whose objects need dynamic dispatch (it declares a member
//!   function, inherits one, or has virtual bases) carries a vptr;
//! * the first direct non-virtual base that already has a vptr becomes
//!   the *primary base* and is placed at offset 0, sharing its vptr;
//! * virtual bases are laid out once per complete object, appended after
//!   the non-virtual part in inheritance-DFS discovery order.
//!
//! Deliberate simplifications (documented substitutions): no empty-base
//! optimization, no bitfields/alignment subtleties (everything is
//! 8-byte), and every member function is dispatch-relevant.

use std::collections::HashMap;

use cpplookup_chg::{Chg, ClassId, MemberId};

/// Size of one data-member slot and of a vptr, in bytes.
pub const SLOT: u64 = 8;

/// The layout of a class's *non-virtual part*: what gets embedded into
/// derived classes (virtual bases excluded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NvLayout {
    /// Size of the non-virtual part in bytes (may be 0 for an empty
    /// class).
    pub size: u64,
    /// Offset of the vptr within the part, if this class needs one.
    pub vptr: Option<u64>,
    /// Offsets of the non-virtual direct bases' parts, in declaration
    /// order.
    pub base_offsets: Vec<(ClassId, u64)>,
    /// Offsets of the class's own non-static data members.
    pub field_offsets: Vec<(MemberId, u64)>,
    /// The primary base (shares our vptr at offset 0), if any.
    pub primary: Option<ClassId>,
}

/// Per-class non-virtual layouts for a whole hierarchy.
#[derive(Clone, Debug)]
pub struct NvLayouts {
    layouts: Vec<NvLayout>,
    needs_vptr: Vec<bool>,
}

impl NvLayouts {
    /// Computes the non-virtual layout of every class, bases first.
    pub fn compute(chg: &Chg) -> Self {
        let n = chg.class_count();
        let mut layouts: Vec<Option<NvLayout>> = vec![None; n];
        let mut needs_vptr = vec![false; n];
        for &c in chg.topo_order() {
            // Dispatch need: own member functions, virtual bases, or any
            // direct base that needs one.
            let own_virtual = chg
                .declared_members(c)
                .iter()
                .any(|&(_, d)| d.kind.is_function());
            let has_virtual_base = chg
                .direct_bases(c)
                .iter()
                .any(|b| b.inheritance.is_virtual());
            let inherited = chg
                .direct_bases(c)
                .iter()
                .any(|b| needs_vptr[b.base.index()]);
            needs_vptr[c.index()] = own_virtual || has_virtual_base || inherited;

            // Primary base: the first direct non-virtual base with a vptr.
            let primary = chg
                .direct_bases(c)
                .iter()
                .find(|b| !b.inheritance.is_virtual() && needs_vptr[b.base.index()])
                .map(|b| b.base);

            let mut offset = 0u64;
            let mut vptr = None;
            let mut base_offsets = Vec::new();
            if let Some(p) = primary {
                let p_layout = layouts[p.index()].as_ref().expect("bases laid out first");
                vptr = p_layout.vptr;
                base_offsets.push((p, 0));
                offset = p_layout.size;
            } else if needs_vptr[c.index()] {
                vptr = Some(0);
                offset = SLOT;
            }
            for spec in chg.direct_bases(c) {
                if spec.inheritance.is_virtual() || Some(spec.base) == primary {
                    continue;
                }
                let b_layout = layouts[spec.base.index()]
                    .as_ref()
                    .expect("bases laid out first");
                base_offsets.push((spec.base, offset));
                offset += b_layout.size;
            }
            let mut field_offsets = Vec::new();
            for &(m, decl) in chg.declared_members(c) {
                if decl.kind == cpplookup_chg::MemberKind::Data {
                    field_offsets.push((m, offset));
                    offset += SLOT;
                }
            }
            layouts[c.index()] = Some(NvLayout {
                size: offset,
                vptr,
                base_offsets,
                field_offsets,
                primary,
            });
        }
        NvLayouts {
            layouts: layouts
                .into_iter()
                .map(|l| l.expect("all computed"))
                .collect(),
            needs_vptr,
        }
    }

    /// The non-virtual layout of `c`.
    pub fn of(&self, c: ClassId) -> &NvLayout {
        &self.layouts[c.index()]
    }

    /// Whether `c`'s objects carry a vptr.
    pub fn needs_vptr(&self, c: ClassId) -> bool {
        self.needs_vptr[c.index()]
    }

    /// Offset of direct non-virtual base `base` within `c`'s part.
    pub fn base_offset(&self, c: ClassId, base: ClassId) -> Option<u64> {
        self.of(c)
            .base_offsets
            .iter()
            .find(|&&(b, _)| b == base)
            .map(|&(_, o)| o)
    }
}

/// The virtual bases of `c` in Itanium-style inheritance-DFS discovery
/// order (left-to-right, depth-first, first visit wins).
pub fn virtual_base_order(chg: &Chg, c: ClassId) -> Vec<ClassId> {
    let mut seen: HashMap<ClassId, ()> = HashMap::new();
    let mut order = Vec::new();
    fn dfs(chg: &Chg, x: ClassId, seen: &mut HashMap<ClassId, ()>, order: &mut Vec<ClassId>) {
        for spec in chg.direct_bases(x) {
            if spec.inheritance.is_virtual() && !seen.contains_key(&spec.base) {
                seen.insert(spec.base, ());
                order.push(spec.base);
            }
            dfs(chg, spec.base, seen, order);
        }
    }
    dfs(chg, c, &mut seen, &mut order);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn fig1_nv_layouts() {
        let g = fixtures::fig1();
        let nv = NvLayouts::compute(&g);
        let id = |n: &str| g.class_by_name(n).unwrap();
        // A declares a member function m: vptr only (no data).
        assert_eq!(nv.of(id("A")).size, SLOT);
        assert_eq!(nv.of(id("A")).vptr, Some(0));
        assert!(nv.needs_vptr(id("A")));
        // B : A — A is primary, shared vptr, same size.
        assert_eq!(nv.of(id("B")).size, SLOT);
        assert_eq!(nv.of(id("B")).primary, Some(id("A")));
        // E : C, D — C primary at 0, D at 8.
        assert_eq!(nv.of(id("E")).size, 2 * SLOT);
        assert_eq!(nv.base_offset(id("E"), id("C")), Some(0));
        assert_eq!(nv.base_offset(id("E"), id("D")), Some(SLOT));
    }

    #[test]
    fn data_only_class_has_no_vptr() {
        let g = fixtures::fig9(); // all `m` are data members
        let nv = NvLayouts::compute(&g);
        let s = g.class_by_name("S").unwrap();
        assert!(!nv.needs_vptr(s));
        assert_eq!(nv.of(s).vptr, None);
        assert_eq!(nv.of(s).size, SLOT); // one int slot
                                         // A : virtual S { int m; } — vptr (virtual base) + its own m;
                                         // the virtual S is NOT part of the non-virtual part.
        let a = g.class_by_name("A").unwrap();
        assert!(nv.needs_vptr(a));
        assert_eq!(nv.of(a).size, 2 * SLOT);
        assert_eq!(nv.of(a).field_offsets[0].1, SLOT);
    }

    #[test]
    fn virtual_base_order_is_dfs_first_visit() {
        let g = fixtures::fig9();
        let e = g.class_by_name("E").unwrap();
        let order: Vec<&str> = virtual_base_order(&g, e)
            .into_iter()
            .map(|c| g.class_name(c))
            .collect();
        // E : virtual A, virtual B, D — A first, then S (under A), then B.
        assert_eq!(order, vec!["A", "S", "B"]);
    }

    #[test]
    fn empty_class_nv_part_is_zero_sized() {
        let g = fixtures::fig2();
        let nv = NvLayouts::compute(&g);
        // C : virtual B {} — vptr only (virtual base forces one... B's A
        // has a function so everything here is dynamic anyway).
        let c = g.class_by_name("C").unwrap();
        assert_eq!(nv.of(c).size, SLOT);
        assert_eq!(nv.of(c).vptr, Some(0));
    }

    #[test]
    fn fields_follow_bases() {
        let mut b = cpplookup_chg::ChgBuilder::new();
        let base = b.class("Base");
        let derived = b.class("Derived");
        b.member(base, "x");
        b.member(derived, "y");
        b.member(derived, "z");
        b.derive(derived, base, cpplookup_chg::Inheritance::NonVirtual)
            .unwrap();
        let g = b.finish().unwrap();
        let nv = NvLayouts::compute(&g);
        assert_eq!(nv.of(base).size, SLOT);
        let d = nv.of(derived);
        assert_eq!(d.size, 3 * SLOT);
        assert_eq!(d.base_offsets, vec![(base, 0)]);
        assert_eq!(d.field_offsets[0].1, SLOT);
        assert_eq!(d.field_offsets[1].1, 2 * SLOT);
        assert_eq!(d.vptr, None, "no functions anywhere: no vptr");
    }
}
