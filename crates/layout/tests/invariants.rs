//! Structural layout invariants on random hierarchies, validated against
//! the subobject model.

use cpplookup_chg::Inheritance;
use cpplookup_hiergen::{families, random_hierarchy, RandomConfig};
use cpplookup_layout::{NvLayouts, ObjectLayout};

fn check_invariants(chg: &cpplookup_chg::Chg) {
    let nv = NvLayouts::compute(chg);
    for c in chg.classes() {
        let Ok(layout) = ObjectLayout::compute(chg, &nv, c, 50_000) else {
            continue;
        };
        let graph = layout.graph();

        // 1. Every subobject's extent lies within the object.
        for id in graph.iter() {
            let class = graph.subobject(id).class();
            let end = layout.offset(id) + nv.of(class).size;
            assert!(
                end <= layout.size().max(1),
                "subobject extent out of bounds in {}",
                chg.class_name(c)
            );
        }

        // 2. Data-member slots are pairwise disjoint.
        let slots = layout.all_field_slots(&nv);
        for w in slots.windows(2) {
            assert!(
                w[0].2 + 8 <= w[1].2,
                "overlapping field slots in {}",
                chg.class_name(c)
            );
        }

        // 3. Non-virtual containment: a child reached through a
        //    non-virtual edge lies inside its parent's non-virtual part.
        for parent in graph.iter() {
            let p_class = graph.subobject(parent).class();
            let p_off = layout.offset(parent);
            let p_end = p_off + nv.of(p_class).size;
            for &child in graph.direct_bases(parent) {
                let edge = chg
                    .edge(graph.subobject(child).class(), p_class)
                    .expect("containment edges mirror inheritance");
                if edge.is_virtual() {
                    continue;
                }
                let c_off = layout.offset(child);
                assert!(
                    p_off <= c_off && c_off + nv.of(graph.subobject(child).class()).size <= p_end,
                    "non-virtual child escapes its parent in {}",
                    chg.class_name(c)
                );
            }
        }

        // 4. Virtual bases sit exactly at their table offsets, once.
        for &(v, off) in layout.vbase_offsets() {
            let mut found = 0;
            for id in graph.iter() {
                let so = graph.subobject(id);
                if so.anchor() == v && so.class() == v {
                    assert_eq!(layout.offset(id), off);
                    found += 1;
                }
            }
            assert_eq!(found, 1, "virtual base {} laid out once", chg.class_name(v));
        }
    }
}

#[test]
fn random_hierarchies_satisfy_layout_invariants() {
    for seed in 0..80 {
        check_invariants(&random_hierarchy(&RandomConfig::stress(seed)));
    }
    for seed in 0..5 {
        check_invariants(&random_hierarchy(&RandomConfig::realistic(100, seed)));
    }
}

#[test]
fn structured_families_satisfy_layout_invariants() {
    check_invariants(&families::chain(64, Some(7)));
    check_invariants(&families::stacked_diamonds(7, Inheritance::NonVirtual));
    check_invariants(&families::stacked_diamonds(7, Inheritance::Virtual));
    check_invariants(&families::grid(4, 4));
    check_invariants(&families::gxx_trap(4));
    check_invariants(&families::wide_diamond(6, Inheritance::Virtual));
    check_invariants(&families::pyramid(6, Inheritance::NonVirtual));
    check_invariants(&families::pyramid(6, Inheritance::Virtual));
    check_invariants(&families::interface_heavy(12, 3));
}

#[test]
fn replication_count_matches_subobject_model() {
    // sizeof grows with replication: the non-virtual diamond stack's
    // object size is exponential, the virtual one linear.
    let nvd = families::stacked_diamonds(8, Inheritance::NonVirtual);
    let nv = NvLayouts::compute(&nvd);
    let bottom = nvd.class_by_name("D8").unwrap();
    let l = ObjectLayout::compute(&nvd, &nv, bottom, 100_000).unwrap();
    let d0 = nvd.class_by_name("D0").unwrap();
    let copies = l.graph().subobjects_of_class(d0).count();
    assert_eq!(copies, 256, "2^8 replicated tops");
    assert!(l.size() >= 256 * 8, "each copy occupies its slot");

    let vd = families::stacked_diamonds(8, Inheritance::Virtual);
    let nv = NvLayouts::compute(&vd);
    let bottom = vd.class_by_name("D8").unwrap();
    let l = ObjectLayout::compute(&vd, &nv, bottom, 100_000).unwrap();
    let d0 = vd.class_by_name("D0").unwrap();
    assert_eq!(l.graph().subobjects_of_class(d0).count(), 1);
}
