//! The workspace-wide integrity checksum: 4-lane word-FNV.
//!
//! One definition, three consumers: the snapshot container checksums
//! its sections and whole file with it, the wire protocol trails every
//! frame with it, and the write-ahead log seals every record with it.
//! They used to carry private copies; a silent divergence between them
//! would have made artifacts written by one layer unreadable by
//! another, so the function lives here — in the one crate all three
//! already depend on — with a pinned-value test freezing the exact
//! bit pattern.

/// The integrity checksum: FNV-1a's xor-multiply step applied to
/// little-endian 8-byte words instead of single bytes, in four
/// independent lanes that are mixed together at the end. Words beat
/// bytes because each multiply digests 8 bytes at once; four lanes beat
/// one because the `(h ^ w) * PRIME` chain is latency-bound — splitting
/// it lets the CPU overlap four multiplies. Together they make
/// checksumming an order of magnitude faster than classic byte-wise
/// FNV, which matters because every cold load checksums the whole file.
///
/// Not cryptographic; it exists to catch truncation, bit rot, and
/// transport damage. Detection of any single flipped byte is
/// deterministic, not probabilistic: each lane step `h = (h ^ w) *
/// PRIME` is a bijection of `h` for fixed `w` (the prime is odd), the
/// final combine is a bijection of each lane holding the others fixed,
/// and a flipped byte perturbs exactly one lane — so two inputs of
/// equal length differing in one byte always hash differently.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    // Lane seeds: the FNV-1a offset basis, then successive additions of
    // the golden-ratio constant so the lanes start decorrelated.
    let mut h: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x6b91_1ab6_2c97_85ce,
        0x0b2f_9c87_d50c_e877,
        0xaace_1e59_7d82_4c20,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        let block: &[u8; 32] = block.try_into().expect("chunks_exact yields 32 bytes");
        let w0 = u64::from_le_bytes(block[0..8].try_into().expect("8-byte word"));
        let w1 = u64::from_le_bytes(block[8..16].try_into().expect("8-byte word"));
        let w2 = u64::from_le_bytes(block[16..24].try_into().expect("8-byte word"));
        let w3 = u64::from_le_bytes(block[24..32].try_into().expect("8-byte word"));
        h[0] = (h[0] ^ w0).wrapping_mul(PRIME);
        h[1] = (h[1] ^ w1).wrapping_mul(PRIME);
        h[2] = (h[2] ^ w2).wrapping_mul(PRIME);
        h[3] = (h[3] ^ w3).wrapping_mul(PRIME);
    }
    for &b in blocks.remainder() {
        h[0] = (h[0] ^ u64::from(b)).wrapping_mul(PRIME);
    }
    let mut out = h[0];
    for lane in &h[1..] {
        out = out.wrapping_mul(PRIME) ^ lane;
    }
    out.wrapping_mul(PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned values: every on-disk and on-wire artifact in the
    /// workspace embeds checksums of this exact function. If this test
    /// fails, the function changed, and every existing snapshot, WAL,
    /// and wire peer just became unreadable — that is a format break,
    /// not a refactor.
    #[test]
    fn pinned_values() {
        assert_eq!(checksum64(b""), PINNED_EMPTY);
        assert_eq!(checksum64(b"cpplookup"), PINNED_CPPLOOKUP);
        assert_eq!(
            checksum64(b"the quick brown fox jumps over the lazy dog"),
            PINNED_FOX
        );
        let ramp: Vec<u8> = (0..=255u8).collect();
        assert_eq!(checksum64(&ramp), PINNED_RAMP);
    }

    const PINNED_EMPTY: u64 = 0x8a84_1eee_319a_9b54;
    const PINNED_CPPLOOKUP: u64 = 0x538d_a4ec_8a08_5cd9;
    const PINNED_FOX: u64 = 0xcd5c_8606_481e_15e1;
    const PINNED_RAMP: u64 = 0x6b43_b9e2_7c64_8354;

    #[test]
    fn detects_any_single_byte_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = checksum64(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.to_vec();
                copy[i] ^= 1 << bit;
                assert_ne!(checksum64(&copy), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn length_extension_of_zeroes_changes_the_sum() {
        // Appending zero bytes must not be invisible (a torn tail of
        // zeroed blocks has to fail the record checksum).
        let base = checksum64(b"abc");
        assert_ne!(checksum64(b"abc\0"), base);
        assert_ne!(checksum64(b"abc\0\0\0\0\0\0\0\0"), base);
    }
}
