//! Paths in the class hierarchy graph and the path operations of the
//! paper's formalism (Section 2 and 3).
//!
//! A path runs from a base class towards a derived class: its first node is
//! `ldc` (the *least derived class*) and its last node is `mdc` (the *most
//! derived class*). A path of a single node is valid and plays the role of
//! a *generated* definition in the algorithm.
//!
//! Because C++ forbids listing the same class twice as a direct base, there
//! is at most one edge between any ordered pair of classes, so a node
//! sequence determines the edges (and their virtualness) uniquely and a
//! path can be stored as a plain sequence of [`ClassId`]s.

use std::fmt;

use crate::error::PathError;
use crate::graph::Chg;
use crate::ids::ClassId;

/// A path in a [`Chg`], stored as the sequence of its nodes.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::{fixtures, Path};
///
/// let g = fixtures::fig3();
/// let p = Path::parse(&g, "ABDFH")?;
/// assert_eq!(g.class_name(p.ldc()), "A");
/// assert_eq!(g.class_name(p.mdc()), "H");
/// assert_eq!(p.fixed(&g).display(&g).to_string(), "ABD");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    nodes: Vec<ClassId>,
}

impl Path {
    /// The trivial path consisting of the single class `c`.
    pub fn trivial(c: ClassId) -> Self {
        Path { nodes: vec![c] }
    }

    /// Builds a path from a node sequence, validating every edge against
    /// the graph.
    ///
    /// # Errors
    ///
    /// [`PathError::Empty`] for an empty sequence, and
    /// [`PathError::MissingEdge`] if two consecutive classes are not
    /// related by a direct inheritance edge.
    pub fn new(chg: &Chg, nodes: Vec<ClassId>) -> Result<Self, PathError> {
        if nodes.is_empty() {
            return Err(PathError::Empty);
        }
        for w in nodes.windows(2) {
            if chg.edge(w[0], w[1]).is_none() {
                return Err(PathError::MissingEdge {
                    from: chg.class_name(w[0]).to_owned(),
                    to: chg.class_name(w[1]).to_owned(),
                });
            }
        }
        Ok(Path { nodes })
    }

    /// Parses a path written as a concatenation of single-character class
    /// names, the notation the paper uses (`"ABDFH"`). Multi-character
    /// class names can be separated by whitespace (`"Base Mid Derived"`).
    ///
    /// # Errors
    ///
    /// Fails like [`Path::new`], or with [`PathError::MissingEdge`] when a
    /// named class does not exist (reported as a missing edge from/to the
    /// unknown name).
    pub fn parse(chg: &Chg, text: &str) -> Result<Self, PathError> {
        let names: Vec<String> = if text.contains(char::is_whitespace) {
            text.split_whitespace().map(str::to_owned).collect()
        } else {
            text.chars().map(|c| c.to_string()).collect()
        };
        if names.is_empty() {
            return Err(PathError::Empty);
        }
        let mut nodes = Vec::with_capacity(names.len());
        for name in &names {
            match chg.class_by_name(name) {
                Some(id) => nodes.push(id),
                None => {
                    return Err(PathError::MissingEdge {
                        from: name.clone(),
                        to: name.clone(),
                    })
                }
            }
        }
        Path::new(chg, nodes)
    }

    /// The nodes of the path, `ldc` first.
    pub fn nodes(&self) -> &[ClassId] {
        &self.nodes
    }

    /// The source of the path: the *least derived class* (paper, Def. 1).
    pub fn ldc(&self) -> ClassId {
        self.nodes[0]
    }

    /// The target of the path: the *most derived class* (paper, Def. 1).
    pub fn mdc(&self) -> ClassId {
        *self.nodes.last().expect("paths are nonempty")
    }

    /// Number of edges in the path (0 for a trivial path).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the path has no edges — identical to
    /// [`is_trivial`](Path::is_trivial) (paths always have at least one
    /// node).
    pub fn is_empty(&self) -> bool {
        self.is_trivial()
    }

    /// Whether the path is a single node (a *generated* definition).
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The longest prefix containing no virtual edge (paper, Def. 2).
    ///
    /// The result always contains at least the first node; if the very
    /// first edge is virtual the fixed part is the trivial path at `ldc`.
    pub fn fixed(&self, chg: &Chg) -> Path {
        let mut end = 1;
        for w in self.nodes.windows(2) {
            match chg.edge(w[0], w[1]) {
                Some(inh) if !inh.is_virtual() => end += 1,
                _ => break,
            }
        }
        Path {
            nodes: self.nodes[..end].to_vec(),
        }
    }

    /// Whether the path contains at least one virtual edge (a *v-path*,
    /// paper Def. 13).
    pub fn is_v_path(&self, chg: &Chg) -> bool {
        self.nodes.windows(2).any(|w| {
            chg.edge(w[0], w[1])
                .map(|i| i.is_virtual())
                .unwrap_or(false)
        })
    }

    /// Concatenation `self ∘ other`, defined when `self.mdc() ==
    /// other.ldc()` (paper, Section 2: `(ABC)∘(CED) = ABCED`).
    ///
    /// # Panics
    ///
    /// Panics if the endpoints do not match.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(
            self.mdc(),
            other.ldc(),
            "concatenation requires matching endpoints"
        );
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        Path { nodes }
    }

    /// Extends the path by one edge to `derived`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the edge `mdc -> derived` does not exist.
    pub fn extended(&self, chg: &Chg, derived: ClassId) -> Path {
        debug_assert!(
            chg.edge(self.mdc(), derived).is_some(),
            "extending along a nonexistent edge"
        );
        let mut nodes = self.nodes.clone();
        nodes.push(derived);
        Path { nodes }
    }

    /// Whether `self` is a suffix of `other` — the paper's *hides*
    /// relation (Def. 5): `α` hides `β` iff `α` is a suffix of `β`.
    pub fn is_suffix_of(&self, other: &Path) -> bool {
        let n = self.nodes.len();
        let m = other.nodes.len();
        n <= m && other.nodes[m - n..] == self.nodes[..]
    }

    /// The *hides* relation (paper, Def. 5): `self` hides `other` iff
    /// `self` is a suffix of `other`.
    pub fn hides(&self, other: &Path) -> bool {
        self.is_suffix_of(other)
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        let n = self.nodes.len();
        n <= other.nodes.len() && other.nodes[..n] == self.nodes[..]
    }

    /// The `≈` equivalence of Definition 3: same `fixed` part and same
    /// `mdc`. Two paths are `≈`-equivalent iff they identify the same
    /// subobject.
    pub fn equivalent(&self, other: &Path, chg: &Chg) -> bool {
        self.mdc() == other.mdc() && self.fixed(chg) == other.fixed(chg)
    }

    /// All proper prefixes, shortest first (used by tests of the *red*
    /// definition property, paper Def. 12).
    pub fn proper_prefixes(&self) -> impl Iterator<Item = Path> + '_ {
        (1..self.nodes.len()).map(move |end| Path {
            nodes: self.nodes[..end].to_vec(),
        })
    }

    /// Renders the path with class names resolved against `chg`.
    pub fn display<'a>(&'a self, chg: &'a Chg) -> DisplayPath<'a> {
        DisplayPath { path: self, chg }
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

/// Helper returned by [`Path::display`]: formats the path using class
/// names, matching the paper's `ABDFH` notation (names longer than one
/// character are separated by `·`).
pub struct DisplayPath<'a> {
    path: &'a Path,
    chg: &'a Chg,
}

impl fmt::Display for DisplayPath<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let all_short = self
            .path
            .nodes
            .iter()
            .all(|&n| self.chg.class_name(n).chars().count() == 1);
        for (i, &n) in self.path.nodes.iter().enumerate() {
            if i > 0 && !all_short {
                write!(f, "·")?;
            }
            write!(f, "{}", self.chg.class_name(n))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::graph::{ChgBuilder, Inheritance};

    #[test]
    fn fig3_fixed_parts_match_paper() {
        // Paper, Section 3 example: fixed(ABDFH) = ABD, fixed(ABDGH) = ABD,
        // fixed(ACDFH) = ACD, fixed(ACDGH) = ACD.
        let g = fixtures::fig3();
        for (path, fixed) in [
            ("ABDFH", "ABD"),
            ("ABDGH", "ABD"),
            ("ACDFH", "ACD"),
            ("ACDGH", "ACD"),
        ] {
            let p = Path::parse(&g, path).unwrap();
            assert_eq!(p.fixed(&g).display(&g).to_string(), fixed, "fixed({path})");
        }
    }

    #[test]
    fn fig3_equivalences_match_paper() {
        // ABDFH ≈ ABDGH, ACDFH ≈ ACDGH, ABDFH !≈ ACDFH.
        let g = fixtures::fig3();
        let abdfh = Path::parse(&g, "ABDFH").unwrap();
        let abdgh = Path::parse(&g, "ABDGH").unwrap();
        let acdfh = Path::parse(&g, "ACDFH").unwrap();
        let acdgh = Path::parse(&g, "ACDGH").unwrap();
        assert!(abdfh.equivalent(&abdgh, &g));
        assert!(acdfh.equivalent(&acdgh, &g));
        assert!(!abdfh.equivalent(&acdfh, &g));
    }

    #[test]
    fn fig3_hides_examples_match_paper() {
        // "path GH hides ABDGH but not ABDFH"
        let g = fixtures::fig3();
        let gh = Path::parse(&g, "GH").unwrap();
        let abdgh = Path::parse(&g, "ABDGH").unwrap();
        let abdfh = Path::parse(&g, "ABDFH").unwrap();
        assert!(gh.hides(&abdgh));
        assert!(!gh.hides(&abdfh));
    }

    #[test]
    fn trivial_path_properties() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        let p = Path::trivial(a);
        assert!(p.is_trivial());
        assert_eq!(p.len(), 0);
        assert_eq!(p.ldc(), a);
        assert_eq!(p.mdc(), a);
        assert!(!p.is_v_path(&g));
        assert_eq!(p.fixed(&g), p);
        assert!(p.is_suffix_of(&p), "a path is a suffix of itself");
        assert!(p.is_prefix_of(&p), "a path is a prefix of itself");
    }

    #[test]
    fn invalid_paths_rejected() {
        let g = fixtures::fig3();
        assert_eq!(Path::new(&g, vec![]), Err(PathError::Empty));
        // No edge H -> A (wrong direction).
        assert!(matches!(
            Path::parse(&g, "HA"),
            Err(PathError::MissingEdge { .. })
        ));
        assert!(matches!(
            Path::parse(&g, "AZ"),
            Err(PathError::MissingEdge { .. })
        ));
    }

    #[test]
    fn concat_matches_paper_notation() {
        // (ABC)∘(CED) = ABCED analogue on fig3: (ABD)∘(DFH) = ABDFH.
        let g = fixtures::fig3();
        let abd = Path::parse(&g, "ABD").unwrap();
        let dfh = Path::parse(&g, "DFH").unwrap();
        let cat = abd.concat(&dfh);
        assert_eq!(cat, Path::parse(&g, "ABDFH").unwrap());
        assert!(abd.is_prefix_of(&cat));
        assert!(dfh.is_suffix_of(&cat));
    }

    #[test]
    #[should_panic(expected = "matching endpoints")]
    fn concat_mismatched_endpoints_panics() {
        let g = fixtures::fig3();
        let ab = Path::parse(&g, "AB").unwrap();
        let gh = Path::parse(&g, "GH").unwrap();
        let _ = ab.concat(&gh);
    }

    #[test]
    fn v_path_detection() {
        let g = fixtures::fig3();
        assert!(Path::parse(&g, "DFH").unwrap().is_v_path(&g));
        assert!(!Path::parse(&g, "ABD").unwrap().is_v_path(&g));
        assert!(!Path::parse(&g, "EFH").unwrap().is_v_path(&g));
    }

    #[test]
    fn proper_prefixes_enumerated_shortest_first() {
        let g = fixtures::fig3();
        let p = Path::parse(&g, "ABD").unwrap();
        let prefixes: Vec<String> = p
            .proper_prefixes()
            .map(|q| q.display(&g).to_string())
            .collect();
        assert_eq!(prefixes, vec!["A", "AB"]);
    }

    #[test]
    fn extended_appends_edge() {
        let g = fixtures::fig3();
        let ab = Path::parse(&g, "AB").unwrap();
        let d = g.class_by_name("D").unwrap();
        assert_eq!(ab.extended(&g, d), Path::parse(&g, "ABD").unwrap());
    }

    #[test]
    fn display_multichar_names_with_separator() {
        let mut b = ChgBuilder::new();
        let base = b.class("Base");
        let derived = b.class("Derived");
        b.derive(derived, base, Inheritance::NonVirtual).unwrap();
        let g = b.finish().unwrap();
        let p = Path::new(&g, vec![base, derived]).unwrap();
        assert_eq!(p.display(&g).to_string(), "Base·Derived");
        let parsed = Path::parse(&g, "Base Derived").unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn suffix_is_not_symmetric() {
        let g = fixtures::fig3();
        let gh = Path::parse(&g, "GH").unwrap();
        let dgh = Path::parse(&g, "DGH").unwrap();
        assert!(gh.is_suffix_of(&dgh));
        assert!(!dgh.is_suffix_of(&gh));
    }

    #[test]
    fn debug_format_nonempty() {
        let g = fixtures::fig3();
        let p = Path::parse(&g, "AB").unwrap();
        let s = format!("{p:?}");
        assert!(s.starts_with("Path["));
    }
}
