//! The class hierarchies used as running examples in the paper, as ready
//! to use [`Chg`] values.
//!
//! Tests, examples, and the `report` experiment harness all refer to these;
//! class and member names match the paper exactly so results can be checked
//! against the figures by eye.

use crate::graph::{Chg, ChgBuilder, Inheritance};
use crate::members::{MemberDecl, MemberKind};

/// Figure 1: the non-virtual inheritance example.
///
/// ```cpp
/// class A { void m(); };
/// class B : A {};
/// class C : B {};
/// class D : B { void m(); };
/// class E : C, D {};
/// E *p; p->m(); // ambiguous!
/// ```
///
/// An `E` object has **two** `A` subobjects, so `lookup(E, m)` is
/// ambiguous: `D::m` dominates the `m` in the `A` below `D`, but not the
/// one in the `A` below `C`.
pub fn fig1() -> Chg {
    let mut b = ChgBuilder::new();
    let a = b.class("A");
    let bb = b.class("B");
    let c = b.class("C");
    let d = b.class("D");
    let e = b.class("E");
    b.member_with(a, "m", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(d, "m", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.derive(bb, a, Inheritance::NonVirtual).unwrap();
    b.derive(c, bb, Inheritance::NonVirtual).unwrap();
    b.derive(d, bb, Inheritance::NonVirtual).unwrap();
    b.derive(e, c, Inheritance::NonVirtual).unwrap();
    b.derive(e, d, Inheritance::NonVirtual).unwrap();
    b.finish().expect("fig1 is a valid hierarchy")
}

/// Figure 2: the virtual inheritance example — identical to
/// [`fig1`] except that `C` and `D` inherit `B` *virtually*.
///
/// ```cpp
/// class A { void m(); };
/// class B : A {};
/// class C : virtual B {};
/// class D : virtual B { void m(); };
/// class E : C, D {};
/// E p; p.m(); // unambiguous: D::m
/// ```
///
/// An `E` object now has a **single** shared `A` subobject, which `D::m`
/// dominates, so the lookup resolves to `D::m`.
pub fn fig2() -> Chg {
    let mut b = ChgBuilder::new();
    let a = b.class("A");
    let bb = b.class("B");
    let c = b.class("C");
    let d = b.class("D");
    let e = b.class("E");
    b.member_with(a, "m", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(d, "m", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.derive(bb, a, Inheritance::NonVirtual).unwrap();
    b.derive(c, bb, Inheritance::Virtual).unwrap();
    b.derive(d, bb, Inheritance::Virtual).unwrap();
    b.derive(e, c, Inheritance::NonVirtual).unwrap();
    b.derive(e, d, Inheritance::NonVirtual).unwrap();
    b.finish().expect("fig2 is a valid hierarchy")
}

/// Figure 3: the running example of Sections 3–5, with members `foo`
/// (declared in `A` and `G`) and `bar` (declared in `D`, `E`, and `G`).
///
/// Edges (solid = non-virtual, dashed = virtual):
///
/// ```text
///        A(foo)
///       /      \
///      B        C
///       \      /
///        D(bar)            E(bar)
///       ⇣      ⇣ (virtual)  |
///       F ←────+────────────+   G(foo,bar)
///        \                     /
///         +──────── H ────────+
/// ```
///
/// Known results from the paper:
/// `lookup(H, foo) = {GH}`; `lookup(H, bar) = ⊥`;
/// `fixed(ABDFH) = ABD`; `ABDFH ≈ ABDGH`; `GH` dominates `ABDFH`.
pub fn fig3() -> Chg {
    let mut b = ChgBuilder::new();
    let a = b.class("A");
    let bb = b.class("B");
    let c = b.class("C");
    let d = b.class("D");
    let e = b.class("E");
    let f = b.class("F");
    let g = b.class("G");
    let h = b.class("H");
    b.member_with(a, "foo", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(g, "foo", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(d, "bar", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(e, "bar", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(g, "bar", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.derive(bb, a, Inheritance::NonVirtual).unwrap();
    b.derive(c, a, Inheritance::NonVirtual).unwrap();
    b.derive(d, bb, Inheritance::NonVirtual).unwrap();
    b.derive(d, c, Inheritance::NonVirtual).unwrap();
    b.derive(f, d, Inheritance::Virtual).unwrap();
    b.derive(f, e, Inheritance::NonVirtual).unwrap();
    b.derive(g, d, Inheritance::Virtual).unwrap();
    b.derive(h, f, Inheritance::NonVirtual).unwrap();
    b.derive(h, g, Inheritance::NonVirtual).unwrap();
    b.finish().expect("fig3 is a valid hierarchy")
}

/// Figure 9: the counterexample on which g++ 2.7.2.1 (and 3 of the 7
/// compilers the authors tried) incorrectly reported an ambiguity.
///
/// ```cpp
/// struct S { int m; };
/// struct A : virtual S { int m; };
/// struct B : virtual S { int m; };
/// struct C : virtual A, virtual B { int m; };
/// struct D : C {};
/// struct E : virtual A, virtual B, D {};
/// E e; e.m = 10; // unambiguous: C::m
/// ```
///
/// A breadth-first traversal of the subobject graph of `E` meets the `m`s
/// of `A` and `B` (neither dominating the other) before the `m` of `C`
/// that dominates both, and gives up too early. The correct answer is
/// `C::m`.
pub fn fig9() -> Chg {
    let mut b = ChgBuilder::new();
    let s = b.class("S");
    let a = b.class("A");
    let bb = b.class("B");
    let c = b.class("C");
    let d = b.class("D");
    let e = b.class("E");
    for class in [s, a, bb, c] {
        b.member_with(class, "m", MemberDecl::public(MemberKind::Data))
            .unwrap();
    }
    b.derive(a, s, Inheritance::Virtual).unwrap();
    b.derive(bb, s, Inheritance::Virtual).unwrap();
    b.derive(c, a, Inheritance::Virtual).unwrap();
    b.derive(c, bb, Inheritance::Virtual).unwrap();
    b.derive(d, c, Inheritance::NonVirtual).unwrap();
    b.derive(e, a, Inheritance::Virtual).unwrap();
    b.derive(e, bb, Inheritance::Virtual).unwrap();
    b.derive(e, d, Inheritance::NonVirtual).unwrap();
    b.finish().expect("fig9 is a valid hierarchy")
}

/// A static-member example for Section 6 (Definitions 16–17):
///
/// ```cpp
/// struct A { static int s; int d; };
/// struct B : A {};
/// struct C : A {};
/// struct D : B, C {};
/// ```
///
/// `lookup(D, d)` is ambiguous (two `A` subobjects), but `lookup(D, s)`
/// is well-defined because both maximal definitions name the *same*
/// static member `A::s`.
pub fn static_diamond() -> Chg {
    let mut b = ChgBuilder::new();
    let a = b.class("A");
    let bb = b.class("B");
    let c = b.class("C");
    let d = b.class("D");
    b.member_with(a, "s", MemberDecl::public(MemberKind::StaticData))
        .unwrap();
    b.member_with(a, "d", MemberDecl::public(MemberKind::Data))
        .unwrap();
    b.derive(bb, a, Inheritance::NonVirtual).unwrap();
    b.derive(c, a, Inheritance::NonVirtual).unwrap();
    b.derive(d, bb, Inheritance::NonVirtual).unwrap();
    b.derive(d, c, Inheritance::NonVirtual).unwrap();
    b.finish().expect("static_diamond is a valid hierarchy")
}

/// A hierarchy demonstrating that Section 6's sketch ("modify
/// `dominates` with the static rule") must track *sets* of co-maximal
/// static definitions, not a representative:
///
/// ```cpp
/// struct S0 { static int id; };
/// struct M  : S0 {};
/// struct J  : M, virtual S0 {};   // two S0 subobjects, both static id
/// struct W  : J { int id; };      // W::id dominates the *virtual* S0 only
/// struct T  : virtual W, J {};
/// ```
///
/// `lookup(J, id)` is well-defined (both maximal definitions are the same
/// static `S0::id`), but at `T` the non-static `W::id` dominates only the
/// virtual `S0` — the replicated `S0` under `T`'s direct `J` base
/// survives, so `lookup(T, id)` **is ambiguous** (different members `W::id`
/// vs `S0::id`). An implementation that propagated only a representative
/// of `J`'s shared-static pair would wrongly resolve it to `W::id`.
/// Discovered by differential testing against the Definition 17 oracle.
pub fn static_override_mix() -> Chg {
    let mut b = ChgBuilder::new();
    let s0 = b.class("S0");
    let m = b.class("M");
    let j = b.class("J");
    let w = b.class("W");
    let t = b.class("T");
    b.member_with(s0, "id", MemberDecl::public(MemberKind::StaticData))
        .unwrap();
    b.member_with(w, "id", MemberDecl::public(MemberKind::Data))
        .unwrap();
    b.derive(m, s0, Inheritance::NonVirtual).unwrap();
    b.derive(j, m, Inheritance::NonVirtual).unwrap();
    b.derive(j, s0, Inheritance::Virtual).unwrap();
    b.derive(w, j, Inheritance::NonVirtual).unwrap();
    b.derive(t, w, Inheritance::Virtual).unwrap();
    b.derive(t, j, Inheritance::NonVirtual).unwrap();
    b.finish()
        .expect("static_override_mix is a valid hierarchy")
}

/// The classic "dreaded diamond" with a virtual base and an override:
///
/// ```cpp
/// struct Top { void f(); };
/// struct Left : virtual Top { void f(); };
/// struct Right : virtual Top {};
/// struct Bottom : Left, Right {};
/// ```
///
/// `lookup(Bottom, f)` resolves to `Left::f` by dominance — the textbook
/// case the ARM describes informally.
pub fn dominance_diamond() -> Chg {
    let mut b = ChgBuilder::new();
    let top = b.class("Top");
    let left = b.class("Left");
    let right = b.class("Right");
    let bottom = b.class("Bottom");
    b.member_with(top, "f", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.member_with(left, "f", MemberDecl::public(MemberKind::Function))
        .unwrap();
    b.derive(left, top, Inheritance::Virtual).unwrap();
    b.derive(right, top, Inheritance::Virtual).unwrap();
    b.derive(bottom, left, Inheritance::NonVirtual).unwrap();
    b.derive(bottom, right, Inheritance::NonVirtual).unwrap();
    b.finish().expect("dominance_diamond is a valid hierarchy")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let g = fig1();
        assert_eq!(g.class_count(), 5);
        assert_eq!(g.edge_count(), 5);
        let e = g.class_by_name("E").unwrap();
        let a = g.class_by_name("A").unwrap();
        assert!(g.is_base_of(a, e));
        assert!(!g.is_virtual_base_of(a, e));
        assert_eq!(g.virtual_bases_of(e).count(), 0);
    }

    #[test]
    fn fig2_has_virtual_b() {
        let g = fig2();
        let bb = g.class_by_name("B").unwrap();
        let e = g.class_by_name("E").unwrap();
        let c = g.class_by_name("C").unwrap();
        assert!(g.is_virtual_base_of(bb, c));
        assert!(g.is_virtual_base_of(bb, e));
        let a = g.class_by_name("A").unwrap();
        assert!(
            !g.is_virtual_base_of(a, e),
            "A itself is inherited non-virtually (below the virtual B)"
        );
    }

    #[test]
    fn fig3_shape_and_members() {
        let g = fig3();
        assert_eq!(g.class_count(), 8);
        assert_eq!(g.edge_count(), 9);
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let names = |m| -> Vec<&str> {
            let mut v: Vec<&str> = g
                .declaring_classes(m)
                .iter()
                .map(|&c| g.class_name(c))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(names(foo), vec!["A", "G"]);
        assert_eq!(names(bar), vec!["D", "E", "G"]);
        let d = g.class_by_name("D").unwrap();
        let h = g.class_by_name("H").unwrap();
        assert!(g.is_virtual_base_of(d, h));
    }

    #[test]
    fn fig9_shape() {
        let g = fig9();
        assert_eq!(g.class_count(), 6);
        assert_eq!(g.edge_count(), 8);
        let e = g.class_by_name("E").unwrap();
        let vb: Vec<&str> = g.virtual_bases_of(e).map(|c| g.class_name(c)).collect();
        assert_eq!(vb, vec!["S", "A", "B"]);
        let c = g.class_by_name("C").unwrap();
        let vb_c: Vec<&str> = g.virtual_bases_of(c).map(|v| g.class_name(v)).collect();
        assert_eq!(vb_c, vec!["S", "A", "B"]);
    }

    #[test]
    fn static_diamond_kinds() {
        let g = static_diamond();
        let a = g.class_by_name("A").unwrap();
        let s = g.member_by_name("s").unwrap();
        let d = g.member_by_name("d").unwrap();
        assert!(g.member_decl(a, s).unwrap().kind.is_static_for_lookup());
        assert!(!g.member_decl(a, d).unwrap().kind.is_static_for_lookup());
    }

    #[test]
    fn static_override_mix_shape() {
        let g = static_override_mix();
        assert_eq!(g.class_count(), 5);
        assert_eq!(g.edge_count(), 6);
        let s0 = g.class_by_name("S0").unwrap();
        let j = g.class_by_name("J").unwrap();
        let w = g.class_by_name("W").unwrap();
        let t = g.class_by_name("T").unwrap();
        assert!(g.is_virtual_base_of(s0, j));
        assert!(g.is_virtual_base_of(w, t));
        assert!(g.is_virtual_base_of(s0, t));
        let id = g.member_by_name("id").unwrap();
        assert!(g.member_decl(s0, id).unwrap().kind.is_static_for_lookup());
        assert!(!g.member_decl(w, id).unwrap().kind.is_static_for_lookup());
    }

    #[test]
    fn dominance_diamond_shape() {
        let g = dominance_diamond();
        let top = g.class_by_name("Top").unwrap();
        let bottom = g.class_by_name("Bottom").unwrap();
        assert!(g.is_virtual_base_of(top, bottom));
    }
}
