//! Fixed-capacity bit sets and bit matrices.
//!
//! The lookup algorithm's constant-time dominance test (paper, Lemma 4)
//! requires constant-time "is `V` a virtual base of `L`" queries. The paper
//! suggests a boolean matrix computed by a transitive-closure-like algorithm
//! (Section 5); [`BitMatrix`] is that matrix, with rows unioned wordwise so
//! the closure costs `O(|N| * (|N| + |E|) / 64)`.

use std::fmt;

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(97);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`, returning whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bitset index out of range");
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `index`, returning whether it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Whether `index` is present. Out-of-range indices are absent.
    pub fn contains(&self, index: usize) -> bool {
        index < self.capacity && self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Unions `other` into `self` wordwise; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// Whether `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

/// A dense square boolean matrix: `rows` bit sets of equal capacity.
///
/// Row `i` typically holds a relation image such as "the set of (virtual)
/// bases of class `i`".
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<BitSet>,
    columns: usize,
}

impl BitMatrix {
    /// Creates an all-false matrix with `rows` rows and `columns` columns.
    pub fn new(rows: usize, columns: usize) -> Self {
        BitMatrix {
            rows: vec![BitSet::new(columns); rows],
            columns,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns
    }

    /// Sets cell `(row, column)` to true.
    pub fn set(&mut self, row: usize, column: usize) {
        self.rows[row].insert(column);
    }

    /// Reads cell `(row, column)`.
    pub fn get(&self, row: usize, column: usize) -> bool {
        self.rows[row].contains(column)
    }

    /// Borrows row `row`.
    pub fn row(&self, row: usize) -> &BitSet {
        &self.rows[row]
    }

    /// Unions row `src` into row `dst`; returns whether `dst` changed.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (aliasing a row with itself is a no-op the
    /// caller almost certainly did not intend).
    pub fn union_rows(&mut self, dst: usize, src: usize) -> bool {
        assert_ne!(dst, src, "union of a row into itself");
        let (a, b) = if dst < src {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        a.union_with(b)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.rows.len(), self.columns)?;
        for (i, row) in self.rows.iter().enumerate() {
            writeln!(f, "  {i}: {row:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports not-fresh");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn union_and_change_detection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(1);
        b.insert(70);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union changes nothing");
        assert!(a.contains(70));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn intersects_and_subset() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(5);
        a.insert(80);
        b.insert(80);
        assert!(a.intersects(&b));
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        b.clear();
        assert!(!a.intersects(&b));
        assert!(b.is_subset_of(&a), "empty set is a subset of anything");
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for &i in &[199, 0, 63, 64, 65, 128] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn iter_empty() {
        let s = BitSet::new(70);
        assert_eq!(s.iter().count(), 0);
        let s0 = BitSet::new(0);
        assert_eq!(s0.iter().count(), 0);
    }

    #[test]
    fn matrix_rows_and_union() {
        let mut m = BitMatrix::new(4, 4);
        m.set(1, 2);
        m.set(2, 3);
        assert!(m.get(1, 2));
        assert!(!m.get(2, 2));
        assert!(m.union_rows(1, 2));
        assert!(m.get(1, 3));
        assert!(!m.union_rows(1, 2));
        assert_eq!(m.row(1).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(m.row_count(), 4);
        assert_eq!(m.column_count(), 4);
    }

    #[test]
    #[should_panic(expected = "into itself")]
    fn matrix_self_union_panics() {
        let mut m = BitMatrix::new(2, 2);
        m.union_rows(1, 1);
    }

    #[test]
    fn debug_nonempty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
        let m = BitMatrix::new(1, 1);
        assert!(format!("{m:?}").contains("BitMatrix"));
    }
}
