//! Deterministic, seeded FxHash-style hashing for the hot maps.
//!
//! The default `std::collections` hasher (SipHash-1-3) is keyed per
//! process and pays for DoS resistance we do not need on interned
//! `u32`-backed ids and short member names. This module provides a
//! fixed-seed multiplicative hasher in the style of rustc's `FxHasher`:
//! each 8-byte word is folded in with a rotate-xor-multiply step, which
//! is a handful of cycles per key and — because the seed is a compile
//! time constant — produces the same hash for the same key in every
//! process and on every run.
//!
//! Determinism caveat: map *iteration order* still depends on insertion
//! order and capacity, so callers must not let iteration order leak
//! into output (the lookup crates sort before serializing). What the
//! fixed seed buys is reproducible behaviour — identical probe
//! sequences, identical resize points — across runs, which keeps
//! profiles and benchmarks stable.
//!
//! # Examples
//!
//! ```
//! use cpplookup_chg::fxmap::FxHashMap;
//!
//! let mut m: FxHashMap<&str, u32> = FxHashMap::default();
//! m.insert("lookup", 1997);
//! assert_eq!(m.get("lookup"), Some(&1997));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The multiplicative constant from FxHash (a.k.a. the Firefox hash):
/// a prime close to the golden ratio times 2^64.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed seed folded into every hasher so hashes are stable across
/// processes (unlike `RandomState`). The value is arbitrary but must
/// never change silently: [`tests::hash_values_are_pinned`] pins it.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, non-cryptographic, fixed-seed hasher.
///
/// Suitable for interned ids and short strings in trusted input; not
/// resistant to collision attacks, so never use it on attacker
/// controlled keys exposed to untrusted parties.
#[derive(Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher { hash: SEED }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        // Fold the length in so prefixes padded with zero bytes
        // ("a" vs "a\0") do not collide trivially.
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s with the fixed seed.
///
/// A zero-sized type, so `FxHashMap` is layout-identical to a plain
/// `HashMap` minus the two random `u64`s of `RandomState`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using the fixed-seed [`FxHasher`]. Construct with
/// `FxHashMap::default()` or `FxHashMap::with_capacity_and_hasher`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fixed-seed [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with the fixed-seed hasher; handy for handle
/// dedup tables that key on a hash and resolve collisions themselves.
#[inline]
pub fn fxhash<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed and constant are load-bearing: snapshots, benchmarks
    /// and the dedup arenas assume hashes never vary between runs. If
    /// this test fails you changed the hash function — make sure
    /// nothing persisted depends on it.
    #[test]
    fn hash_values_are_pinned() {
        assert_eq!(fxhash(&0u64), 0x6d5e_786d_8728_102f);
        assert_eq!(fxhash(&1u64), 0x1be1_b6b6_6006_059a);
        assert_eq!(fxhash(&"m"), 0x1157_0559_5596_fd9e);
    }

    #[test]
    fn identical_across_hasher_instances() {
        for key in ["", "m", "foo", "a_rather_longer_member_name"] {
            assert_eq!(fxhash(&key), fxhash(&key));
        }
        assert_ne!(fxhash(&"a"), fxhash(&"b"));
        // Zero-padding must not make "a" collide with "a\0".
        assert_ne!(fxhash(&b"a".as_slice()), fxhash(&b"a\0".as_slice()));
    }

    #[test]
    fn map_behaves_like_hashmap() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for (i, name) in ["x", "y", "z", "x"].iter().enumerate() {
            m.insert((*name).to_owned(), i);
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m["x"], 3);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
