//! Errors reported while building or validating a class hierarchy graph.

use std::error::Error;
use std::fmt;

use crate::ids::ClassId;

/// An error produced by [`crate::ChgBuilder`].
///
/// Class names are carried as owned strings so the error remains meaningful
/// after the builder is gone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChgError {
    /// The inheritance relation contains a cycle; C++ class hierarchies
    /// must be acyclic. Carries one class on the cycle.
    Cycle {
        /// A class known to participate in the cycle.
        class: String,
    },
    /// A class was listed twice as a direct base of the same derived class,
    /// which is ill-formed in C++ (`class D : B, B {}`).
    DuplicateDirectBase {
        /// The derived class.
        derived: String,
        /// The base listed more than once.
        base: String,
    },
    /// A class was made a direct base of itself (`class C : C {}`).
    SelfInheritance {
        /// The offending class.
        class: String,
    },
    /// A member name was declared twice in the same class with incompatible
    /// kinds. Function overloads (two `Function` declarations) are allowed
    /// and merged; anything else is a redeclaration error.
    ConflictingMember {
        /// The declaring class.
        class: String,
        /// The member name.
        member: String,
    },
    /// A `ClassId` that does not belong to this builder was used.
    UnknownClass {
        /// The stray id.
        id: ClassId,
    },
}

impl fmt::Display for ChgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChgError::Cycle { class } => {
                write!(f, "inheritance cycle through class `{class}`")
            }
            ChgError::DuplicateDirectBase { derived, base } => {
                write!(
                    f,
                    "class `{derived}` lists `{base}` as a direct base more than once"
                )
            }
            ChgError::SelfInheritance { class } => {
                write!(f, "class `{class}` cannot be its own direct base")
            }
            ChgError::ConflictingMember { class, member } => {
                write!(
                    f,
                    "member `{member}` redeclared with a conflicting kind in class `{class}`"
                )
            }
            ChgError::UnknownClass { id } => {
                write!(f, "class id {id} does not belong to this graph")
            }
        }
    }
}

impl Error for ChgError {}

/// An error produced when constructing a [`crate::Path`] from a node
/// sequence that is not a path of the graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The node sequence was empty; paths have at least one node.
    Empty,
    /// Two consecutive nodes are not joined by an inheritance edge.
    MissingEdge {
        /// The would-be base (edge source).
        from: String,
        /// The would-be derived class (edge target).
        to: String,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "a path must contain at least one class"),
            PathError::MissingEdge { from, to } => {
                write!(f, "no inheritance edge from `{from}` to `{to}`")
            }
        }
    }
}

impl Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ChgError::Cycle { class: "A".into() };
        assert_eq!(e.to_string(), "inheritance cycle through class `A`");
        let e = ChgError::DuplicateDirectBase {
            derived: "D".into(),
            base: "B".into(),
        };
        assert!(e.to_string().contains("more than once"));
        let e = ChgError::SelfInheritance { class: "C".into() };
        assert!(e.to_string().contains("own direct base"));
        let e = ChgError::ConflictingMember {
            class: "C".into(),
            member: "m".into(),
        };
        assert!(e.to_string().contains("conflicting kind"));
        let e = ChgError::UnknownClass {
            id: ClassId::from_index(9),
        };
        assert!(e.to_string().contains("#9"));
    }

    #[test]
    fn path_error_messages() {
        assert!(PathError::Empty.to_string().contains("at least one"));
        let e = PathError::MissingEdge {
            from: "A".into(),
            to: "B".into(),
        };
        assert!(e.to_string().contains("`A`"));
        assert!(e.to_string().contains("`B`"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ChgError::Cycle { class: "A".into() });
        takes_err(PathError::Empty);
    }
}
