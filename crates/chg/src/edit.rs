//! Append-only hierarchy edits.
//!
//! C++ translation units only ever *grow* a class hierarchy: new classes,
//! new member declarations, new base-class lists. [`Edit`] captures that
//! append-only mutation vocabulary as data, so an evolving hierarchy can be
//! described as an initial [`Chg`] plus a script of edits. [`apply_edits`]
//! replays a script through [`ChgBuilder::from_chg`], producing a fresh
//! immutable graph with all closures recomputed and the generation counter
//! advanced — the substrate `cpplookup-core`'s incremental lookup engine
//! builds on.

use crate::graph::{Chg, ChgBuilder, Inheritance};
use crate::ids::ClassId;
use crate::members::{Access, MemberDecl};
use crate::ChgError;

/// One append-only mutation of a class hierarchy.
///
/// Edits reference existing classes by [`ClassId`], which stays stable
/// across [`apply_edits`]: classes are only ever appended, never reordered
/// or removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Introduce a new class with no bases and no members.
    ///
    /// Applying this to a hierarchy that already has a class of this name
    /// is a no-op (mirroring [`ChgBuilder::class`]).
    AddClass {
        /// Name of the class to create.
        name: String,
    },
    /// Declare a member in an existing class.
    AddMember {
        /// The declaring class.
        class: ClassId,
        /// The member name (interned on apply).
        name: String,
        /// Kind, access, and staticness of the declaration.
        decl: MemberDecl,
    },
    /// Add a direct inheritance edge `base → derived`.
    AddEdge {
        /// The derived class gaining a base.
        derived: ClassId,
        /// The base class.
        base: ClassId,
        /// Virtual or non-virtual inheritance.
        inheritance: Inheritance,
        /// Access of the inheritance edge.
        access: Access,
    },
}

impl Edit {
    /// Applies this edit to a builder.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`ChgBuilder`] errors:
    /// [`ChgError::UnknownClass`] for stray ids,
    /// [`ChgError::ConflictingMember`] for incompatible redeclarations, and
    /// [`ChgError::SelfInheritance`] / [`ChgError::DuplicateDirectBase`]
    /// for ill-formed edges. Cycles through longer chains are reported by
    /// [`ChgBuilder::finish`].
    pub fn apply(&self, b: &mut ChgBuilder) -> Result<(), ChgError> {
        match self {
            Edit::AddClass { name } => {
                b.class(name);
                Ok(())
            }
            Edit::AddMember { class, name, decl } => b.member_with(*class, name, *decl).map(|_| ()),
            Edit::AddEdge {
                derived,
                base,
                inheritance,
                access,
            } => b.derive_with_access(*derived, *base, *inheritance, *access),
        }
    }
}

/// Replays `edits` on top of `chg`, returning a new graph.
///
/// The input graph is untouched; on success the result carries
/// `chg.generation() + 1` (one rebuild, however many edits). Existing
/// [`ClassId`]s and interned member names remain valid in the result.
///
/// # Errors
///
/// Returns the first [`ChgError`] hit while applying an edit, or a
/// [`ChgError::Cycle`] from validation if the edited hierarchy is cyclic.
/// On error no partial graph escapes — callers keep using `chg`.
pub fn apply_edits(chg: &Chg, edits: &[Edit]) -> Result<Chg, ChgError> {
    let mut b = ChgBuilder::from_chg(chg);
    for e in edits {
        e.apply(&mut b)?;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::members::MemberKind;

    #[test]
    fn add_class_extends_and_is_idempotent() {
        let chg = fixtures::fig1();
        let n = chg.class_count();
        let out = apply_edits(
            &chg,
            &[
                Edit::AddClass { name: "F".into() },
                Edit::AddClass { name: "A".into() }, // already exists: no-op
            ],
        )
        .unwrap();
        assert_eq!(out.class_count(), n + 1);
        assert_eq!(out.generation(), chg.generation() + 1);
        // Existing ids still resolve to the same classes.
        for c in chg.classes() {
            assert_eq!(out.class_name(c), chg.class_name(c));
        }
    }

    #[test]
    fn add_member_and_edge() {
        let chg = fixtures::fig1();
        let e = chg.class_by_name("E").unwrap();
        let a = chg.class_by_name("A").unwrap();
        let out = apply_edits(
            &chg,
            &[
                Edit::AddClass { name: "F".into() },
                Edit::AddMember {
                    class: e,
                    name: "fresh".into(),
                    decl: MemberDecl::public(MemberKind::Data),
                },
            ],
        )
        .unwrap();
        let f = out.class_by_name("F").unwrap();
        let out = apply_edits(
            &out,
            &[Edit::AddEdge {
                derived: f,
                base: e,
                inheritance: Inheritance::NonVirtual,
                access: Access::Public,
            }],
        )
        .unwrap();
        assert!(out.is_base_of(e, f));
        assert!(out.is_base_of(a, f), "closures recomputed transitively");
        let fresh = out.member_by_name("fresh").unwrap();
        assert!(out.declares(e, fresh));
        assert_eq!(out.generation(), 2);
    }

    #[test]
    fn cycle_is_rejected() {
        let chg = fixtures::fig1();
        let a = chg.class_by_name("A").unwrap();
        let e = chg.class_by_name("E").unwrap();
        // A is (transitively) a base of E; E → A closes a cycle.
        let err = apply_edits(
            &chg,
            &[Edit::AddEdge {
                derived: a,
                base: e,
                inheritance: Inheritance::NonVirtual,
                access: Access::Public,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ChgError::Cycle { .. }));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let chg = fixtures::fig1();
        let a = chg.class_by_name("A").unwrap();
        let b = chg.class_by_name("B").unwrap();
        let err = apply_edits(
            &chg,
            &[Edit::AddEdge {
                derived: b,
                base: a,
                inheritance: Inheritance::NonVirtual,
                access: Access::Public,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ChgError::DuplicateDirectBase { .. }));
    }

    #[test]
    fn derived_of_matches_closure() {
        let chg = fixtures::fig1();
        let b = chg.class_by_name("B").unwrap();
        let derived: Vec<String> = chg
            .derived_of(b)
            .map(|d| chg.class_name(d).to_owned())
            .collect();
        assert_eq!(derived, ["C", "D", "E"]);
    }
}
