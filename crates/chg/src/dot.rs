//! Graphviz DOT export of class hierarchy graphs.
//!
//! Mirrors the paper's figures: solid edges for non-virtual inheritance,
//! dashed edges for virtual inheritance, member names listed with their
//! declaring class.

use std::fmt::Write as _;

use crate::graph::Chg;

/// Renders `chg` as a Graphviz `digraph`.
///
/// Edges point from base to derived class, like the paper's figures.
/// Classes are labelled `Name` or `Name\n(m1, m2)` when they declare
/// members directly.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::{dot, fixtures};
///
/// let text = dot::to_dot(&fixtures::fig2());
/// assert!(text.contains("digraph chg"));
/// assert!(text.contains("style=dashed")); // virtual edges
/// ```
pub fn to_dot(chg: &Chg) -> String {
    let mut out = String::new();
    out.push_str("digraph chg {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for c in chg.classes() {
        let members: Vec<&str> = chg
            .declared_members(c)
            .iter()
            .map(|&(m, _)| chg.member_name(m))
            .collect();
        let label = if members.is_empty() {
            chg.class_name(c).to_owned()
        } else {
            format!("{}\\n({})", chg.class_name(c), members.join(", "))
        };
        let _ = writeln!(out, "  c{} [label=\"{}\"];", c.index(), label);
    }
    for derived in chg.classes() {
        for spec in chg.direct_bases(derived) {
            let style = if spec.inheritance.is_virtual() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  c{} -> c{}{};",
                spec.base.index(),
                derived.index(),
                style
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn dot_contains_all_classes_and_edges() {
        let g = fixtures::fig3();
        let dot = to_dot(&g);
        for c in g.classes() {
            assert!(dot.contains(&format!("c{} [", c.index())));
        }
        // 9 edges total.
        assert_eq!(dot.matches(" -> ").count(), 9);
        // Two virtual edges in fig3 (D->F, D->G).
        assert_eq!(dot.matches("style=dashed").count(), 2);
    }

    #[test]
    fn dot_lists_members_in_labels() {
        let g = fixtures::fig3();
        let dot = to_dot(&g);
        assert!(dot.contains("G\\n(foo, bar)"));
        assert!(dot.contains("A\\n(foo)"));
    }

    #[test]
    fn dot_of_empty_graph() {
        let g = crate::ChgBuilder::new().finish().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph chg {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
