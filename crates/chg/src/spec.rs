//! A plain-data description of a class hierarchy, convertible to and from
//! [`Chg`].
//!
//! [`ChgSpec`] exists so hierarchies can be stored, diffed, and (with the
//! `serde` feature) serialized by tools, without exposing the `Chg`'s
//! internal precomputed tables.

use crate::error::ChgError;
use crate::graph::{Chg, ChgBuilder, Inheritance};
use crate::members::{Access, MemberDecl, MemberKind};

/// One base-class entry of a [`ClassSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaseSpecDesc {
    /// Name of the base class.
    pub name: String,
    /// Whether the inheritance is virtual.
    pub virtual_: bool,
    /// Access of the inheritance edge.
    pub access: Access,
}

/// One member entry of a [`ClassSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemberSpecDesc {
    /// The member's name.
    pub name: String,
    /// The member's kind.
    pub kind: MemberKind,
    /// The member's declared access.
    pub access: Access,
}

/// One class of a [`ChgSpec`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassSpec {
    /// The class name.
    pub name: String,
    /// Direct bases in declaration order.
    pub bases: Vec<BaseSpecDesc>,
    /// Directly declared members in declaration order.
    pub members: Vec<MemberSpecDesc>,
}

/// A plain-data class hierarchy description.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::{fixtures, spec::ChgSpec};
///
/// let original = fixtures::fig2();
/// let spec = ChgSpec::from_chg(&original);
/// let rebuilt = spec.build()?;
/// assert_eq!(rebuilt.class_count(), original.class_count());
/// assert_eq!(rebuilt.edge_count(), original.edge_count());
/// # Ok::<(), cpplookup_chg::ChgError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChgSpec {
    /// Classes in creation order.
    pub classes: Vec<ClassSpec>,
}

impl ChgSpec {
    /// Extracts a spec from a built graph.
    pub fn from_chg(chg: &Chg) -> Self {
        let classes = chg
            .classes()
            .map(|c| ClassSpec {
                name: chg.class_name(c).to_owned(),
                bases: chg
                    .direct_bases(c)
                    .iter()
                    .map(|b| BaseSpecDesc {
                        name: chg.class_name(b.base).to_owned(),
                        virtual_: b.inheritance.is_virtual(),
                        access: b.access,
                    })
                    .collect(),
                members: chg
                    .declared_members(c)
                    .iter()
                    .map(|&(m, decl)| MemberSpecDesc {
                        name: chg.member_name(m).to_owned(),
                        kind: decl.kind,
                        access: decl.access,
                    })
                    .collect(),
            })
            .collect();
        ChgSpec { classes }
    }

    /// Builds a validated [`Chg`] from the description.
    ///
    /// # Errors
    ///
    /// Propagates any [`ChgError`] from the builder (cycles, duplicate
    /// bases, conflicting members).
    pub fn build(&self) -> Result<Chg, ChgError> {
        let mut b = ChgBuilder::new();
        for class in &self.classes {
            b.class(&class.name);
        }
        for class in &self.classes {
            let id = b.class(&class.name);
            for base in &class.bases {
                let base_id = b.class(&base.name);
                let inh = if base.virtual_ {
                    Inheritance::Virtual
                } else {
                    Inheritance::NonVirtual
                };
                b.derive_with_access(id, base_id, inh, base.access)?;
            }
            for m in &class.members {
                b.member_with(id, &m.name, MemberDecl::with_access(m.kind, m.access))?;
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn roundtrip_preserves_structure() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
        ] {
            let spec = ChgSpec::from_chg(&g);
            let rebuilt = spec.build().unwrap();
            assert_eq!(ChgSpec::from_chg(&rebuilt), spec, "spec is a fixed point");
            assert_eq!(rebuilt.class_count(), g.class_count());
            assert_eq!(rebuilt.edge_count(), g.edge_count());
            for c in g.classes() {
                let rc = rebuilt.class_by_name(g.class_name(c)).unwrap();
                assert_eq!(
                    g.direct_bases(c).len(),
                    rebuilt.direct_bases(rc).len(),
                    "base lists preserved"
                );
            }
        }
    }

    #[test]
    fn invalid_spec_reports_builder_error() {
        let spec = ChgSpec {
            classes: vec![ClassSpec {
                name: "A".into(),
                bases: vec![BaseSpecDesc {
                    name: "A".into(),
                    virtual_: false,
                    access: Access::Public,
                }],
                members: vec![],
            }],
        };
        assert!(matches!(
            spec.build(),
            Err(ChgError::SelfInheritance { .. })
        ));
    }

    #[test]
    fn forward_references_allowed() {
        // A base that is only defined later in the class list still works
        // because all names are pre-registered.
        let spec = ChgSpec {
            classes: vec![
                ClassSpec {
                    name: "Derived".into(),
                    bases: vec![BaseSpecDesc {
                        name: "Base".into(),
                        virtual_: true,
                        access: Access::Public,
                    }],
                    members: vec![],
                },
                ClassSpec {
                    name: "Base".into(),
                    bases: vec![],
                    members: vec![],
                },
            ],
        };
        let g = spec.build().unwrap();
        let base = g.class_by_name("Base").unwrap();
        let derived = g.class_by_name("Derived").unwrap();
        assert!(g.is_virtual_base_of(base, derived));
    }
}

impl ChgSpec {
    /// Renders the spec as JSON (hand-rolled writer — no serialization
    /// dependency needed for the common tooling case; the optional
    /// `serde` feature provides full `Serialize`/`Deserialize` for
    /// everything else).
    pub fn to_json(&self) -> String {
        fn escape(s: &str, out: &mut String) {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::from("{\"classes\":[");
        for (i, class) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape(&class.name, &mut out);
            out.push_str(",\"bases\":[");
            for (j, base) in class.bases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                escape(&base.name, &mut out);
                out.push_str(&format!(
                    ",\"virtual\":{},\"access\":\"{}\"}}",
                    base.virtual_, base.access
                ));
            }
            out.push_str("],\"members\":[");
            for (j, m) in class.members.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                escape(&m.name, &mut out);
                out.push_str(&format!(
                    ",\"kind\":\"{:?}\",\"access\":\"{}\"}}",
                    m.kind, m.access
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn json_is_well_formed_and_complete() {
        let g = fixtures::fig9();
        let json = ChgSpec::from_chg(&g).to_json();
        assert!(json.starts_with("{\"classes\":["));
        assert!(json.ends_with("]}"));
        // Every class, base relation, and member shows up.
        for name in ["\"S\"", "\"A\"", "\"B\"", "\"C\"", "\"D\"", "\"E\""] {
            assert!(json.contains(name), "{json}");
        }
        assert!(json.contains("\"virtual\":true"));
        assert!(json.contains("\"kind\":\"Data\""));
        // Balanced braces/brackets (no string content interferes here).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_pathological_names() {
        let spec = ChgSpec {
            classes: vec![ClassSpec {
                name: "we\"ird\\na\tme".into(),
                bases: vec![],
                members: vec![],
            }],
        };
        let json = spec.to_json();
        assert!(json.contains("we\\\"ird\\\\na\\tme"));
    }
}
