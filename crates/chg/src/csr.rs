//! Compressed-sparse-row (CSR) view of a class hierarchy.
//!
//! [`crate::Chg`] stores adjacency as per-class `Vec<BaseSpec>`s behind
//! id lookups, which is convenient for queries but cache-hostile for
//! whole-table builders that sweep the hierarchy once per build. This
//! module flattens the graph **once** into contiguous `u32` arrays laid
//! out in topological order:
//!
//! * a topo-order array and its inverse (class index → topo rank),
//! * parent adjacency (`derived → base` edges, preserving each class's
//!   base *declaration order*, which merge semantics depend on),
//! * a virtual-edge bitmap indexed by edge position,
//! * child adjacency (the transpose), used to push member frontiers
//!   down the hierarchy.
//!
//! The same [`Csr`] is shared by the sequential batched builder, the
//! work-stealing parallel builder, and the engine's full-rebuild path,
//! so the flattening cost is paid once per hierarchy generation.
//!
//! # Examples
//!
//! ```
//! use cpplookup_chg::{fixtures, Csr};
//!
//! let g = fixtures::fig2();
//! let csr = Csr::build(&g);
//! assert_eq!(csr.class_count(), g.class_count());
//! // Every parent precedes its children in topological rank.
//! for rank in 0..csr.class_count() as u32 {
//!     for edge in csr.parents(rank) {
//!         assert!(edge.base_rank < rank);
//!     }
//! }
//! ```

use crate::bitset::BitSet;
use crate::graph::Chg;
use crate::ids::ClassId;

/// One `derived → base` inheritance edge as seen from the CSR view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrEdge {
    /// The base class the edge points at.
    pub base: ClassId,
    /// Topological rank of [`CsrEdge::base`]; always less than the
    /// derived class's rank.
    pub base_rank: u32,
    /// Whether this is a `virtual` inheritance edge.
    pub is_virtual: bool,
}

/// Compressed-sparse-row snapshot of a [`Chg`]'s inheritance structure.
///
/// All arrays are indexed by **topological rank** (position in
/// [`Chg::topo_order`]), not by raw class id; [`Csr::rank_of`] and
/// [`Csr::class_at`] convert between the two.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Rank → class id (a copy of the topological order).
    topo: Vec<ClassId>,
    /// Class index → rank.
    rank: Vec<u32>,
    /// Rank → offset into the parent edge arrays; length `n + 1`.
    parent_start: Vec<u32>,
    /// Edge position → base class id, grouped by derived class in
    /// declaration order of its bases.
    parent_base: Vec<ClassId>,
    /// Edge position → rank of the base class.
    parent_rank: Vec<u32>,
    /// Edge position → virtual-inheritance flag.
    parent_virtual: BitSet,
    /// Rank → offset into `child_rank`; length `n + 1`.
    child_start: Vec<u32>,
    /// Child adjacency (transpose of the parent arrays), ranks in
    /// ascending order within each class.
    child_rank: Vec<u32>,
}

impl Csr {
    /// Flattens `chg` into the CSR layout. `O(|N| + |E|)`.
    pub fn build(chg: &Chg) -> Csr {
        let n = chg.class_count();
        let topo: Vec<ClassId> = chg.topo_order().to_vec();
        let mut rank = vec![0u32; n];
        for (r, &c) in topo.iter().enumerate() {
            rank[c.index()] = r as u32;
        }

        let e = chg.edge_count();
        let mut parent_start = Vec::with_capacity(n + 1);
        let mut parent_base = Vec::with_capacity(e);
        let mut parent_rank = Vec::with_capacity(e);
        let mut parent_virtual = BitSet::new(e);
        parent_start.push(0);
        for &c in &topo {
            for spec in chg.direct_bases(c) {
                if spec.inheritance.is_virtual() {
                    parent_virtual.insert(parent_base.len());
                }
                parent_base.push(spec.base);
                parent_rank.push(rank[spec.base.index()]);
            }
            parent_start.push(parent_base.len() as u32);
        }

        // Transpose by counting sort: children end up grouped by base
        // rank, and — because edges are emitted in ascending derived
        // rank — sorted ascending within each group.
        let mut child_start = vec![0u32; n + 1];
        for &p in &parent_rank {
            child_start[p as usize + 1] += 1;
        }
        for i in 1..=n {
            child_start[i] += child_start[i - 1];
        }
        let mut cursor = child_start.clone();
        let mut child_rank = vec![0u32; parent_rank.len()];
        for (r, &c) in topo.iter().enumerate() {
            let lo = parent_start[r] as usize;
            let hi = parent_start[r + 1] as usize;
            debug_assert_eq!(hi - lo, chg.direct_bases(c).len());
            for &p in &parent_rank[lo..hi] {
                let slot = &mut cursor[p as usize];
                child_rank[*slot as usize] = r as u32;
                *slot += 1;
            }
        }

        Csr {
            topo,
            rank,
            parent_start,
            parent_base,
            parent_rank,
            parent_virtual,
            child_start,
            child_rank,
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.topo.len()
    }

    /// Number of inheritance edges.
    pub fn edge_count(&self) -> usize {
        self.parent_base.len()
    }

    /// The class at topological rank `rank`.
    pub fn class_at(&self, rank: u32) -> ClassId {
        self.topo[rank as usize]
    }

    /// The topological rank of class `c`.
    pub fn rank_of(&self, c: ClassId) -> u32 {
        self.rank[c.index()]
    }

    /// The topological order as a slice of class ids (rank-indexed).
    pub fn topo(&self) -> &[ClassId] {
        &self.topo
    }

    /// The direct bases of the class at `rank`, in the declaration
    /// order of [`Chg::direct_bases`] (merge order depends on it).
    pub fn parents(&self, rank: u32) -> impl Iterator<Item = CsrEdge> + '_ {
        let lo = self.parent_start[rank as usize] as usize;
        let hi = self.parent_start[rank as usize + 1] as usize;
        (lo..hi).map(move |i| CsrEdge {
            base: self.parent_base[i],
            base_rank: self.parent_rank[i],
            is_virtual: self.parent_virtual.contains(i),
        })
    }

    /// Ranks of the classes directly derived from the class at `rank`,
    /// in ascending rank order.
    pub fn children(&self, rank: u32) -> &[u32] {
        let lo = self.child_start[rank as usize] as usize;
        let hi = self.child_start[rank as usize + 1] as usize;
        &self.child_rank[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::graph::Inheritance;

    fn graphs() -> Vec<Chg> {
        vec![
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            crate::ChgBuilder::new().finish().unwrap(),
        ]
    }

    #[test]
    fn ranks_are_topological() {
        for g in graphs() {
            let csr = Csr::build(&g);
            assert_eq!(csr.class_count(), g.class_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            for r in 0..csr.class_count() as u32 {
                let c = csr.class_at(r);
                assert_eq!(csr.rank_of(c), r);
                assert_eq!(g.topo_position(c), r as usize);
                for edge in csr.parents(r) {
                    assert!(edge.base_rank < r, "base must precede derived");
                }
            }
        }
    }

    #[test]
    fn parents_preserve_declaration_order_and_virtual_bits() {
        for g in graphs() {
            let csr = Csr::build(&g);
            for c in g.classes() {
                let r = csr.rank_of(c);
                let got: Vec<(ClassId, bool)> =
                    csr.parents(r).map(|e| (e.base, e.is_virtual)).collect();
                let want: Vec<(ClassId, bool)> = g
                    .direct_bases(c)
                    .iter()
                    .map(|s| (s.base, s.inheritance == Inheritance::Virtual))
                    .collect();
                assert_eq!(got, want, "bases of {}", g.class_name(c));
            }
        }
    }

    #[test]
    fn children_are_the_exact_transpose() {
        for g in graphs() {
            let csr = Csr::build(&g);
            let mut pairs_from_children = Vec::new();
            for r in 0..csr.class_count() as u32 {
                let mut prev = None;
                for &child in csr.children(r) {
                    assert!(prev.is_none_or(|p| p < child), "ascending within class");
                    prev = Some(child);
                    pairs_from_children.push((child, r));
                }
            }
            let mut pairs_from_parents = Vec::new();
            for r in 0..csr.class_count() as u32 {
                for edge in csr.parents(r) {
                    pairs_from_parents.push((r, edge.base_rank));
                }
            }
            pairs_from_children.sort_unstable();
            pairs_from_parents.sort_unstable();
            assert_eq!(pairs_from_children, pairs_from_parents);
        }
    }
}
