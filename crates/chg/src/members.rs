//! Member declarations: kinds, staticness, and access levels.
//!
//! The paper (Section 6) distinguishes *static* and *non-static* members
//! because the relaxed dominance rule of Definition 17 applies only to
//! static members, and notes that nested type names and enumeration
//! constants "are treated exactly like static members" for lookup. Access
//! rights "do not affect the member lookup process in any way; they are
//! applied only after a successful member lookup".

use std::fmt;

/// The kind of entity a member declaration introduces.
///
/// Only [`is_static_for_lookup`](MemberKind::is_static_for_lookup) matters
/// to the lookup algorithm itself; the finer distinctions exist so the
/// frontend can model real C++ declarations and so diagnostics can describe
/// what was found.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemberKind {
    /// A non-static data member, e.g. `int m;`.
    #[default]
    Data,
    /// A non-static member function, e.g. `void m();`.
    Function,
    /// A static data member, e.g. `static int m;`.
    StaticData,
    /// A static member function, e.g. `static void m();`.
    StaticFunction,
    /// A nested type name, e.g. `typedef int m;` or `using m = int;` or a
    /// nested `class m`.
    TypeName,
    /// An enumeration constant introduced into the class scope, e.g. the
    /// `m` of `enum { m };`.
    Enumerator,
}

impl MemberKind {
    /// Whether the relaxed static-member dominance rule (paper
    /// Definition 17 / the third clause of the modified `dominates`)
    /// applies to this member.
    ///
    /// Per Section 6, type names and enumeration constants are treated
    /// exactly like static members.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpplookup_chg::MemberKind;
    ///
    /// assert!(MemberKind::StaticData.is_static_for_lookup());
    /// assert!(MemberKind::Enumerator.is_static_for_lookup());
    /// assert!(!MemberKind::Function.is_static_for_lookup());
    /// ```
    pub fn is_static_for_lookup(self) -> bool {
        matches!(
            self,
            MemberKind::StaticData
                | MemberKind::StaticFunction
                | MemberKind::TypeName
                | MemberKind::Enumerator
        )
    }

    /// Whether this kind denotes a callable member function.
    pub fn is_function(self) -> bool {
        matches!(self, MemberKind::Function | MemberKind::StaticFunction)
    }
}

impl fmt::Display for MemberKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemberKind::Data => "data member",
            MemberKind::Function => "member function",
            MemberKind::StaticData => "static data member",
            MemberKind::StaticFunction => "static member function",
            MemberKind::TypeName => "nested type name",
            MemberKind::Enumerator => "enumerator",
        };
        f.write_str(s)
    }
}

/// A C++ access level, for members and for inheritance edges.
///
/// Ordered from most to least restrictive: `Private < Protected < Public`,
/// so `a.min(b)` is "the more restrictive of the two", which is how access
/// composes along an inheritance path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Access {
    /// Accessible only within the declaring class (and friends, which we do
    /// not model).
    Private,
    /// Accessible within the declaring class and its derived classes.
    Protected,
    /// Accessible everywhere.
    #[default]
    Public,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::Private => "private",
            Access::Protected => "protected",
            Access::Public => "public",
        };
        f.write_str(s)
    }
}

/// A member declaration attached to a class: its kind and declared access.
///
/// The declaration is identified by the pair `(ClassId, MemberId)`; this
/// struct carries everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemberDecl {
    /// What kind of member this is.
    pub kind: MemberKind,
    /// The access level it was declared with.
    pub access: Access,
    /// For members introduced by a using-declaration
    /// (`using Base::m;`): the base class the name was taken from. For
    /// the lookup algorithm the member counts as declared *here* (that is
    /// precisely how using-declarations resolve ambiguities in C++), but
    /// clients binding to the declaration may want the origin.
    pub via_using: Option<crate::ids::ClassId>,
}

impl MemberDecl {
    /// A public declaration of the given kind.
    ///
    /// # Examples
    ///
    /// ```
    /// use cpplookup_chg::{Access, MemberDecl, MemberKind};
    ///
    /// let d = MemberDecl::public(MemberKind::StaticData);
    /// assert_eq!(d.access, Access::Public);
    /// assert!(d.kind.is_static_for_lookup());
    /// ```
    pub fn public(kind: MemberKind) -> Self {
        MemberDecl {
            kind,
            access: Access::Public,
            via_using: None,
        }
    }

    /// A declaration with an explicit access level.
    pub fn with_access(kind: MemberKind, access: Access) -> Self {
        MemberDecl {
            kind,
            access,
            via_using: None,
        }
    }

    /// A member introduced by a using-declaration (`using Base::m;`):
    /// behaves as a declaration in the using class for lookup, but
    /// remembers where it came from.
    pub fn using_from(kind: MemberKind, access: Access, origin: crate::ids::ClassId) -> Self {
        MemberDecl {
            kind,
            access,
            via_using: Some(origin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staticness_classification() {
        assert!(!MemberKind::Data.is_static_for_lookup());
        assert!(!MemberKind::Function.is_static_for_lookup());
        assert!(MemberKind::StaticData.is_static_for_lookup());
        assert!(MemberKind::StaticFunction.is_static_for_lookup());
        assert!(MemberKind::TypeName.is_static_for_lookup());
        assert!(MemberKind::Enumerator.is_static_for_lookup());
    }

    #[test]
    fn function_classification() {
        assert!(MemberKind::Function.is_function());
        assert!(MemberKind::StaticFunction.is_function());
        assert!(!MemberKind::Data.is_function());
        assert!(!MemberKind::TypeName.is_function());
    }

    #[test]
    fn access_order_is_restrictiveness() {
        assert!(Access::Private < Access::Protected);
        assert!(Access::Protected < Access::Public);
        // min = more restrictive, the composition along an edge.
        assert_eq!(Access::Public.min(Access::Private), Access::Private);
        assert_eq!(Access::Protected.min(Access::Public), Access::Protected);
    }

    #[test]
    fn defaults_match_cpp_struct_conventions() {
        // `struct` members default to public data in our frontend.
        let d = MemberDecl::default();
        assert_eq!(d.kind, MemberKind::Data);
        assert_eq!(d.access, Access::Public);
    }

    #[test]
    fn display_strings() {
        assert_eq!(MemberKind::Enumerator.to_string(), "enumerator");
        assert_eq!(Access::Protected.to_string(), "protected");
        assert_eq!(
            MemberKind::StaticFunction.to_string(),
            "static member function"
        );
    }
}
