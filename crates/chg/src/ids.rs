//! Compact identifiers for classes and member names, plus the string
//! interner that backs them.
//!
//! The lookup algorithm manipulates classes and member names constantly, so
//! both are interned to `u32`-backed ids that are `Copy`, hashable, and
//! usable as dense vector indices.

use std::fmt;

use crate::fxmap::FxHashMap;

/// Identifier of a class in a [`crate::Chg`].
///
/// Ids are dense: a graph with `n` classes uses ids `0..n`, so `ClassId`
/// doubles as an index into per-class tables.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::ChgBuilder;
///
/// let mut b = ChgBuilder::new();
/// let a = b.class("A");
/// let b_ = b.class("B");
/// assert_ne!(a, b_);
/// assert_eq!(a.index(), 0);
/// assert_eq!(b_.index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassId(u32);

impl ClassId {
    /// Creates a `ClassId` from a raw index.
    ///
    /// Mostly useful for tests and for tools that build dense tables; ids
    /// are ordinarily obtained from [`crate::ChgBuilder::class`].
    pub fn from_index(index: usize) -> Self {
        ClassId(u32::try_from(index).expect("class index exceeds u32"))
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassId({})", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of an interned member *name* (not a particular declaration).
///
/// The same `MemberId` names the member `m` in every class that declares
/// one; the pair `(ClassId, MemberId)` identifies a declaration. This
/// mirrors the paper, where lookup is a function of a class and a member
/// *name*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemberId(u32);

impl MemberId {
    /// Creates a `MemberId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        MemberId(u32::try_from(index).expect("member index exceeds u32"))
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemberId({})", self.0)
    }
}

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A simple string interner mapping names to dense `u32` indices.
///
/// Used for both class names and member names. Interning the same string
/// twice returns the same index. The reverse map uses the fixed-seed
/// [`crate::fxmap`] hasher: interner probes sit on the hot path of
/// parsing and engine edits, and the keys are trusted identifiers.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    by_name: FxHashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.by_name.get(name) {
            return idx;
        }
        let idx = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), idx);
        idx
    }

    /// Returns the index of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for an index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not produced by this interner.
    pub fn resolve(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(index, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        let a2 = i.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.resolve(b), "bar");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_get_without_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let x = i.intern("x");
        assert_eq!(i.get("x"), Some(x));
    }

    #[test]
    fn interner_iter_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn ids_roundtrip() {
        let c = ClassId::from_index(7);
        assert_eq!(c.index(), 7);
        let m = MemberId::from_index(3);
        assert_eq!(m.index(), 3);
    }

    #[test]
    fn id_display_nonempty() {
        assert_eq!(format!("{}", ClassId::from_index(2)), "#2");
        assert_eq!(format!("{:?}", MemberId::from_index(2)), "MemberId(2)");
    }

    #[test]
    fn interner_empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
