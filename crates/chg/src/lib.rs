//! Class hierarchy graph (CHG) substrate for C++ member lookup.
//!
//! This crate implements the graph model of Section 2 of *“A Member Lookup
//! Algorithm for C++”* (Ramalingam & Srinivasan, PLDI 1997): classes,
//! virtual and non-virtual inheritance edges, directly declared members
//! `M[X]`, paths with their `fixed` prefixes and the *hides* relation, and
//! the precomputed base/virtual-base closures the lookup algorithm's
//! constant-time dominance test relies on.
//!
//! Downstream crates build on it:
//!
//! * `cpplookup-subobject` — the Rossie–Friedman subobject model and the
//!   executable reference semantics of member lookup,
//! * `cpplookup-core` — the paper's efficient lookup algorithm,
//! * `cpplookup-baselines`, `cpplookup-frontend`, `cpplookup-hiergen`.
//!
//! # Examples
//!
//! Building Figure 1 of the paper by hand and asking structural questions:
//!
//! ```
//! use cpplookup_chg::{ChgBuilder, Inheritance, Path};
//!
//! let mut b = ChgBuilder::new();
//! let a = b.class("A");
//! let b_ = b.class("B");
//! let c = b.class("C");
//! let d = b.class("D");
//! let e = b.class("E");
//! b.member(a, "m");
//! b.member(d, "m");
//! b.derive(b_, a, Inheritance::NonVirtual)?;
//! b.derive(c, b_, Inheritance::NonVirtual)?;
//! b.derive(d, b_, Inheritance::NonVirtual)?;
//! b.derive(e, c, Inheritance::NonVirtual)?;
//! b.derive(e, d, Inheritance::NonVirtual)?;
//! let chg = b.finish()?;
//!
//! assert!(chg.is_base_of(a, e));
//! let p = Path::new(&chg, vec![a, b_, d, e])?;
//! assert_eq!(p.fixed(&chg), p, "no virtual edges: the path is all fixed");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The hierarchies of the paper's figures ship as [`fixtures`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitset;
pub mod checksum;
mod csr;
pub mod dot;
mod edit;
mod error;
pub mod fixtures;
pub mod fxmap;
mod graph;
mod ids;
mod members;
mod path;
pub mod spec;

pub use bitset::{BitMatrix, BitSet};
pub use csr::{Csr, CsrEdge};
pub use edit::{apply_edits, Edit};
pub use error::{ChgError, PathError};
pub use graph::{BaseSpec, Chg, ChgBuilder, Inheritance};
pub use ids::{ClassId, Interner, MemberId};
pub use members::{Access, MemberDecl, MemberKind};
pub use path::{DisplayPath, Path};
