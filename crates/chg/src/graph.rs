//! The class hierarchy graph (CHG) and its builder.
//!
//! Following Section 2 of the paper: the CHG is a DAG whose nodes are
//! classes and whose edges are inheritance relations. An edge `X -> Y`
//! means *X is a direct base of Y* (so paths run from bases towards derived
//! classes). Edges are partitioned into virtual (`E_v`) and non-virtual
//! (`E_nv`) edges. Every class `X` carries the set `M[X]` of members
//! declared directly in it.
//!
//! [`Chg`] is immutable once built: [`ChgBuilder::finish`] validates the
//! graph (acyclicity, no duplicate direct bases) and precomputes the
//! topological order plus the base-class and virtual-base-class transitive
//! closures that the lookup algorithm's constant-time dominance test needs.

use std::collections::HashMap;
use std::fmt;

use crate::bitset::BitMatrix;
use crate::error::ChgError;
use crate::ids::{ClassId, Interner, MemberId};
use crate::members::{Access, MemberDecl, MemberKind};

/// Whether an inheritance edge is virtual or non-virtual.
///
/// This single bit is the heart of the paper: the `fixed` prefix of a path,
/// the `≈` subobject equivalence, and the `∘` abstraction operator are all
/// defined in terms of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Inheritance {
    /// Non-virtual ("replicated") inheritance: each occurrence of the base
    /// along a distinct non-virtual path is a distinct subobject.
    NonVirtual,
    /// Virtual ("shared") inheritance: all virtual occurrences of the base
    /// collapse into one subobject per complete object.
    Virtual,
}

impl Inheritance {
    /// Whether this is [`Inheritance::Virtual`].
    pub fn is_virtual(self) -> bool {
        matches!(self, Inheritance::Virtual)
    }
}

impl fmt::Display for Inheritance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inheritance::NonVirtual => f.write_str("non-virtual"),
            Inheritance::Virtual => f.write_str("virtual"),
        }
    }
}

/// One direct-base entry in a class's base list, in declaration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BaseSpec {
    /// The base class.
    pub base: ClassId,
    /// Virtual or non-virtual inheritance.
    pub inheritance: Inheritance,
    /// The access of the inheritance edge (`class D : private B`).
    pub access: Access,
}

#[derive(Clone, Debug, Default)]
struct ClassData {
    name: String,
    bases: Vec<BaseSpec>,
    /// Member declarations in declaration order.
    members: Vec<(MemberId, MemberDecl)>,
    member_index: HashMap<MemberId, usize>,
    /// Classes that list this class as a direct base (reverse edges),
    /// filled in by `finish`.
    derived: Vec<ClassId>,
}

/// Incremental builder for a [`Chg`].
///
/// # Examples
///
/// Figure 2 of the paper (virtual inheritance):
///
/// ```
/// use cpplookup_chg::{ChgBuilder, Inheritance};
///
/// let mut b = ChgBuilder::new();
/// let a = b.class("A");
/// let b_ = b.class("B");
/// let c = b.class("C");
/// let d = b.class("D");
/// let e = b.class("E");
/// b.member(a, "m");
/// b.member(d, "m");
/// b.derive(b_, a, Inheritance::NonVirtual)?;
/// b.derive(c, b_, Inheritance::Virtual)?;
/// b.derive(d, b_, Inheritance::Virtual)?;
/// b.derive(e, c, Inheritance::NonVirtual)?;
/// b.derive(e, d, Inheritance::NonVirtual)?;
/// let chg = b.finish()?;
/// assert_eq!(chg.class_count(), 5);
/// assert!(chg.is_virtual_base_of(b_, e));
/// # Ok::<(), cpplookup_chg::ChgError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChgBuilder {
    classes: Vec<ClassData>,
    class_by_name: HashMap<String, ClassId>,
    member_names: Interner,
    edge_count: usize,
    generation: u64,
}

impl ChgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a builder from an existing graph, so that classes,
    /// members, and inheritance edges can be *appended* and a new [`Chg`]
    /// produced by [`finish`](Self::finish).
    ///
    /// All `ClassId`s and `MemberId`s of the source graph remain valid in
    /// the result (ids are append-only), which is what lets incremental
    /// consumers such as `cpplookup-core`'s `LookupEngine` reuse cached
    /// per-id state across an edit. The rebuilt graph's
    /// [`generation`](Chg::generation) is the source's plus one.
    pub fn from_chg(chg: &Chg) -> Self {
        let classes = chg
            .classes
            .iter()
            .map(|c| ClassData {
                name: c.name.clone(),
                bases: c.bases.clone(),
                members: c.members.clone(),
                member_index: c.member_index.clone(),
                // `finish` recomputes the reverse adjacency from scratch.
                derived: Vec::new(),
            })
            .collect();
        ChgBuilder {
            classes,
            class_by_name: chg.class_by_name.clone(),
            member_names: chg.member_names.clone(),
            edge_count: chg.edge_count,
            generation: chg.generation + 1,
        }
    }

    /// Returns the id for the class named `name`, creating it if needed.
    pub fn class(&mut self, name: &str) -> ClassId {
        if let Some(&id) = self.class_by_name.get(name) {
            return id;
        }
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(ClassData {
            name: name.to_owned(),
            ..ClassData::default()
        });
        self.class_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a class by name without creating it.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Records that `derived` directly inherits from `base` with public
    /// access.
    ///
    /// Bases are kept in declaration order, which the algorithms observe
    /// (e.g. the g++ baseline's breadth-first traversal).
    ///
    /// # Errors
    ///
    /// Returns [`ChgError::SelfInheritance`] if `derived == base`,
    /// [`ChgError::DuplicateDirectBase`] if `base` is already a direct base
    /// of `derived`, and [`ChgError::UnknownClass`] for ids not created by
    /// this builder. Cycles through longer chains are detected by
    /// [`finish`](Self::finish).
    pub fn derive(
        &mut self,
        derived: ClassId,
        base: ClassId,
        inheritance: Inheritance,
    ) -> Result<(), ChgError> {
        self.derive_with_access(derived, base, inheritance, Access::Public)
    }

    /// Like [`derive`](Self::derive) with an explicit inheritance access.
    ///
    /// # Errors
    ///
    /// Same as [`derive`](Self::derive).
    pub fn derive_with_access(
        &mut self,
        derived: ClassId,
        base: ClassId,
        inheritance: Inheritance,
        access: Access,
    ) -> Result<(), ChgError> {
        self.check_id(derived)?;
        self.check_id(base)?;
        if derived == base {
            return Err(ChgError::SelfInheritance {
                class: self.classes[derived.index()].name.clone(),
            });
        }
        let data = &self.classes[derived.index()];
        if data.bases.iter().any(|b| b.base == base) {
            return Err(ChgError::DuplicateDirectBase {
                derived: data.name.clone(),
                base: self.classes[base.index()].name.clone(),
            });
        }
        self.classes[derived.index()].bases.push(BaseSpec {
            base,
            inheritance,
            access,
        });
        self.edge_count += 1;
        Ok(())
    }

    /// Declares a public non-static data member named `name` in `class`,
    /// returning the interned member id.
    ///
    /// # Panics
    ///
    /// Panics if `class` does not belong to this builder (use
    /// [`member_with`](Self::member_with) for a fallible version).
    pub fn member(&mut self, class: ClassId, name: &str) -> MemberId {
        self.member_with(class, name, MemberDecl::public(MemberKind::Data))
            .expect("invalid member declaration")
    }

    /// Declares a member with an explicit [`MemberDecl`].
    ///
    /// Declaring the same name twice in one class is allowed only when both
    /// declarations are `Function`s (an overload set); the second
    /// declaration is then a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ChgError::ConflictingMember`] on an incompatible
    /// redeclaration and [`ChgError::UnknownClass`] for stray ids.
    pub fn member_with(
        &mut self,
        class: ClassId,
        name: &str,
        decl: MemberDecl,
    ) -> Result<MemberId, ChgError> {
        self.check_id(class)?;
        let id = MemberId::from_index(self.member_names.intern(name) as usize);
        let data = &mut self.classes[class.index()];
        if let Some(&slot) = data.member_index.get(&id) {
            let existing = data.members[slot].1;
            if existing.kind == MemberKind::Function && decl.kind == MemberKind::Function {
                return Ok(id); // overload set: one name entry
            }
            return Err(ChgError::ConflictingMember {
                class: data.name.clone(),
                member: name.to_owned(),
            });
        }
        data.member_index.insert(id, data.members.len());
        data.members.push((id, decl));
        Ok(id)
    }

    /// Interns a member name without declaring it anywhere, e.g. to query
    /// a name that may not exist.
    pub fn intern_member_name(&mut self, name: &str) -> MemberId {
        MemberId::from_index(self.member_names.intern(name) as usize)
    }

    /// Number of classes created so far.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    fn check_id(&self, id: ClassId) -> Result<(), ChgError> {
        if id.index() < self.classes.len() {
            Ok(())
        } else {
            Err(ChgError::UnknownClass { id })
        }
    }

    /// Validates the hierarchy and produces an immutable [`Chg`].
    ///
    /// Computes the topological order (bases before derived classes), the
    /// reverse (derived) adjacency, the proper-base transitive closure, and
    /// the virtual-base closure. The paper notes (Section 5) that a
    /// compiler needs the virtual-base relation anyway and charges its
    /// `O(|N| * (|N| + |E|))` cost to preprocessing; we do the same here.
    ///
    /// # Errors
    ///
    /// Returns [`ChgError::Cycle`] if the inheritance relation is cyclic.
    pub fn finish(mut self) -> Result<Chg, ChgError> {
        let n = self.classes.len();

        // Reverse adjacency.
        for derived in 0..n {
            let bases: Vec<ClassId> = self.classes[derived].bases.iter().map(|b| b.base).collect();
            for base in bases {
                self.classes[base.index()]
                    .derived
                    .push(ClassId::from_index(derived));
            }
        }

        // Kahn's algorithm over base -> derived edges: a class is ready
        // once all of its direct bases are placed.
        let mut remaining: Vec<usize> = self.classes.iter().map(|c| c.bases.len()).collect();
        let mut topo: Vec<ClassId> = Vec::with_capacity(n);
        let mut queue: Vec<ClassId> = (0..n)
            .filter(|&i| remaining[i] == 0)
            .map(ClassId::from_index)
            .collect();
        // Pop from the front for a stable, breadth-first-ish order.
        let mut head = 0;
        while head < queue.len() {
            let c = queue[head];
            head += 1;
            topo.push(c);
            for &d in &self.classes[c.index()].derived {
                remaining[d.index()] -= 1;
                if remaining[d.index()] == 0 {
                    queue.push(d);
                }
            }
        }
        if topo.len() != n {
            let culprit = (0..n)
                .find(|&i| remaining[i] > 0)
                .expect("cycle implies a class with unplaced bases");
            return Err(ChgError::Cycle {
                class: self.classes[culprit].name.clone(),
            });
        }

        let mut topo_pos = vec![0usize; n];
        for (pos, &c) in topo.iter().enumerate() {
            topo_pos[c.index()] = pos;
        }

        // bases[d] = proper base classes of d: union over direct bases b of
        // ({b} ∪ bases[b]), computed in topological order.
        let mut bases = BitMatrix::new(n, n);
        for &c in &topo {
            let direct: Vec<ClassId> = self.classes[c.index()]
                .bases
                .iter()
                .map(|b| b.base)
                .collect();
            for b in direct {
                bases.set(c.index(), b.index());
                if b.index() != c.index() {
                    bases.union_rows(c.index(), b.index());
                }
            }
        }

        // virtual_bases[d] = { v | some virtual edge v -> w exists with
        // w = d or w a base of d }; i.e. there is a path from v to d whose
        // *first* edge is virtual (paper, Section 2).
        let mut virtual_bases = BitMatrix::new(n, n);
        for w in 0..n {
            let virt: Vec<ClassId> = self.classes[w]
                .bases
                .iter()
                .filter(|b| b.inheritance.is_virtual())
                .map(|b| b.base)
                .collect();
            if virt.is_empty() {
                continue;
            }
            // w itself and every class derived from w see these as
            // virtual bases.
            for d in 0..n {
                if d == w || bases.get(d, w) {
                    for &v in &virt {
                        virtual_bases.set(d, v.index());
                    }
                }
            }
        }

        // declarers[m] = classes declaring member m, in topological order
        // of declaring class (useful for the lazy algorithm's visibility
        // test and the topological-number baseline).
        let mut declarers: Vec<Vec<ClassId>> = vec![Vec::new(); self.member_names.len()];
        for &c in &topo {
            for &(m, _) in &self.classes[c.index()].members {
                declarers[m.index()].push(c);
            }
        }

        Ok(Chg {
            classes: self.classes,
            class_by_name: self.class_by_name,
            member_names: self.member_names,
            edge_count: self.edge_count,
            generation: self.generation,
            topo,
            topo_pos,
            bases,
            virtual_bases,
            declarers,
        })
    }
}

/// An immutable, validated class hierarchy graph.
///
/// Obtained from [`ChgBuilder::finish`]. All query methods are `O(1)` or
/// return precomputed slices; the closures behind
/// [`is_base_of`](Chg::is_base_of) and
/// [`is_virtual_base_of`](Chg::is_virtual_base_of) are bit matrices, giving
/// the constant-time tests the lookup algorithm's complexity analysis
/// assumes.
#[derive(Clone)]
pub struct Chg {
    classes: Vec<ClassData>,
    class_by_name: HashMap<String, ClassId>,
    member_names: Interner,
    edge_count: usize,
    generation: u64,
    topo: Vec<ClassId>,
    topo_pos: Vec<usize>,
    bases: BitMatrix,
    virtual_bases: BitMatrix,
    declarers: Vec<Vec<ClassId>>,
}

impl Chg {
    /// Number of classes, `|N|`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of inheritance edges, `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of distinct member names, `|M|`.
    pub fn member_name_count(&self) -> usize {
        self.member_names.len()
    }

    /// How many edit/rebuild rounds produced this graph: `0` for a graph
    /// built from scratch, and the predecessor's generation plus one for a
    /// graph rebuilt via [`ChgBuilder::from_chg`]. Incremental consumers
    /// use this to tell cache snapshots apart.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The name of a class.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c.index()].name
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Iterates over all class ids in creation order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// The name of a member.
    pub fn member_name(&self, m: MemberId) -> &str {
        self.member_names.resolve(m.index() as u32)
    }

    /// Finds a member name id.
    pub fn member_by_name(&self, name: &str) -> Option<MemberId> {
        self.member_names
            .get(name)
            .map(|i| MemberId::from_index(i as usize))
    }

    /// Iterates over all member name ids.
    pub fn member_ids(&self) -> impl Iterator<Item = MemberId> + '_ {
        (0..self.member_names.len()).map(MemberId::from_index)
    }

    /// The direct bases of `c` in declaration order.
    pub fn direct_bases(&self, c: ClassId) -> &[BaseSpec] {
        &self.classes[c.index()].bases
    }

    /// The classes that list `c` as a direct base.
    pub fn direct_derived(&self, c: ClassId) -> &[ClassId] {
        &self.classes[c.index()].derived
    }

    /// The inheritance kind of the edge `base -> derived`, if it exists.
    ///
    /// C++ forbids listing the same direct base twice, so the kind is
    /// unique; this is what lets us represent paths as bare node sequences.
    pub fn edge(&self, base: ClassId, derived: ClassId) -> Option<Inheritance> {
        self.classes[derived.index()]
            .bases
            .iter()
            .find(|b| b.base == base)
            .map(|b| b.inheritance)
    }

    /// The full [`BaseSpec`] of the edge `base -> derived`, if it exists.
    pub fn edge_spec(&self, base: ClassId, derived: ClassId) -> Option<&BaseSpec> {
        self.classes[derived.index()]
            .bases
            .iter()
            .find(|b| b.base == base)
    }

    /// The members declared directly in `c` (the paper's `M[c]`), in
    /// declaration order.
    pub fn declared_members(&self, c: ClassId) -> &[(MemberId, MemberDecl)] {
        &self.classes[c.index()].members
    }

    /// Whether `c` directly declares member `m` (`m ∈ M[c]`).
    pub fn declares(&self, c: ClassId, m: MemberId) -> bool {
        self.classes[c.index()].member_index.contains_key(&m)
    }

    /// The declaration of `m` in `c`, if `c` declares it directly.
    pub fn member_decl(&self, c: ClassId, m: MemberId) -> Option<MemberDecl> {
        self.classes[c.index()]
            .member_index
            .get(&m)
            .map(|&slot| self.classes[c.index()].members[slot].1)
    }

    /// All classes that declare `m` directly, in topological order.
    pub fn declaring_classes(&self, m: MemberId) -> &[ClassId] {
        &self.declarers[m.index()]
    }

    /// The topological order of classes: every base precedes every class
    /// derived from it. This is the processing order of the algorithm in
    /// Figure 8 of the paper.
    pub fn topo_order(&self) -> &[ClassId] {
        &self.topo
    }

    /// The position of `c` in [`topo_order`](Chg::topo_order) — the
    /// "topological number" of the Section 7 shortcut baseline.
    pub fn topo_position(&self, c: ClassId) -> usize {
        self.topo_pos[c.index()]
    }

    /// Whether `b` is a *proper* base class of `d` (a nonempty path
    /// `b -> ... -> d` exists).
    pub fn is_base_of(&self, b: ClassId, d: ClassId) -> bool {
        self.bases.get(d.index(), b.index())
    }

    /// Whether `v` is a virtual base class of `d`: some path from `v` to
    /// `d` starts with a virtual edge (paper, Section 2).
    pub fn is_virtual_base_of(&self, v: ClassId, d: ClassId) -> bool {
        self.virtual_bases.get(d.index(), v.index())
    }

    /// Iterates over the proper bases of `d`.
    pub fn bases_of(&self, d: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.bases.row(d.index()).iter().map(ClassId::from_index)
    }

    /// Iterates over the classes *properly* derived from `b` (the
    /// transitive closure of [`direct_derived`](Chg::direct_derived)), in
    /// id order. This is the propagation frontier of an incremental edit
    /// at `b`: no lookup entry outside `{b} ∪ derived_of(b)` can change
    /// when a member or base edge is appended to `b`.
    pub fn derived_of(&self, b: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.classes().filter(move |&d| self.is_base_of(b, d))
    }

    /// Iterates over the virtual bases of `d`.
    pub fn virtual_bases_of(&self, d: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        self.virtual_bases
            .row(d.index())
            .iter()
            .map(ClassId::from_index)
    }

    /// Whether `m` is visible in `c`, i.e. `m ∈ Members[c]`: declared by
    /// `c` itself or by any of its bases.
    pub fn is_member_visible(&self, c: ClassId, m: MemberId) -> bool {
        self.declarers[m.index()]
            .iter()
            .any(|&d| d == c || self.is_base_of(d, c))
    }
}

impl fmt::Debug for Chg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chg {{ classes: {}, edges: {}, members: {} }}",
            self.class_count(),
            self.edge_count(),
            self.member_name_count()
        )?;
        for c in self.classes() {
            let bases: Vec<String> = self
                .direct_bases(c)
                .iter()
                .map(|b| {
                    format!(
                        "{}{}",
                        if b.inheritance.is_virtual() {
                            "virtual "
                        } else {
                            ""
                        },
                        self.class_name(b.base)
                    )
                })
                .collect();
            let members: Vec<&str> = self
                .declared_members(c)
                .iter()
                .map(|&(m, _)| self.member_name(m))
                .collect();
            writeln!(
                f,
                "  {} : [{}] {{ {} }}",
                self.class_name(c),
                bases.join(", "),
                members.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Chg {
        // A -> B, A -> C, B -> D, C -> D (all non-virtual)
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        let d = b.class("D");
        b.member(a, "m");
        b.derive(bb, a, Inheritance::NonVirtual).unwrap();
        b.derive(c, a, Inheritance::NonVirtual).unwrap();
        b.derive(d, bb, Inheritance::NonVirtual).unwrap();
        b.derive(d, c, Inheritance::NonVirtual).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn build_and_query_diamond() {
        let g = diamond();
        let (a, b, c, d) = (
            g.class_by_name("A").unwrap(),
            g.class_by_name("B").unwrap(),
            g.class_by_name("C").unwrap(),
            g.class_by_name("D").unwrap(),
        );
        assert_eq!(g.class_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_base_of(a, d));
        assert!(g.is_base_of(b, d));
        assert!(!g.is_base_of(d, a));
        assert!(!g.is_base_of(a, a), "is_base_of is a proper relation");
        assert!(!g.is_virtual_base_of(a, d));
        assert_eq!(g.edge(a, b), Some(Inheritance::NonVirtual));
        assert_eq!(g.edge(b, a), None);
        assert_eq!(g.direct_derived(a), &[b, c]);
        let m = g.member_by_name("m").unwrap();
        assert!(g.declares(a, m));
        assert!(!g.declares(d, m));
        assert!(g.is_member_visible(d, m));
        assert!(g.is_member_visible(a, m));
        assert_eq!(g.declaring_classes(m), &[a]);
    }

    #[test]
    fn topo_order_respects_bases() {
        let g = diamond();
        for d in g.classes() {
            for spec in g.direct_bases(d) {
                assert!(
                    g.topo_position(spec.base) < g.topo_position(d),
                    "base before derived"
                );
            }
        }
        assert_eq!(g.topo_order().len(), 4);
    }

    #[test]
    fn virtual_base_closure_follows_first_edge_rule() {
        // A ->v B -> C: A is a virtual base of B and of C.
        // B -> C non-virtual: B is NOT a virtual base of C.
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.derive(bb, a, Inheritance::Virtual).unwrap();
        b.derive(c, bb, Inheritance::NonVirtual).unwrap();
        let g = b.finish().unwrap();
        assert!(g.is_virtual_base_of(a, bb));
        assert!(g.is_virtual_base_of(a, c));
        assert!(!g.is_virtual_base_of(bb, c));
        assert_eq!(g.virtual_bases_of(c).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn virtual_base_requires_first_edge_virtual_not_any_edge() {
        // A -> B ->v C: path A..C has a virtual edge but its FIRST edge is
        // non-virtual, so A is not a virtual base of C; B is.
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let c = b.class("C");
        b.derive(bb, a, Inheritance::NonVirtual).unwrap();
        b.derive(c, bb, Inheritance::Virtual).unwrap();
        let g = b.finish().unwrap();
        assert!(!g.is_virtual_base_of(a, c));
        assert!(g.is_virtual_base_of(bb, c));
    }

    #[test]
    fn cycle_detected() {
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        let c = b.class("B");
        b.derive(c, a, Inheritance::NonVirtual).unwrap();
        b.derive(a, c, Inheritance::NonVirtual).unwrap();
        match b.finish() {
            Err(ChgError::Cycle { .. }) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn self_inheritance_rejected() {
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        assert_eq!(
            b.derive(a, a, Inheritance::Virtual),
            Err(ChgError::SelfInheritance { class: "A".into() })
        );
    }

    #[test]
    fn duplicate_direct_base_rejected() {
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        let d = b.class("D");
        b.derive(d, a, Inheritance::NonVirtual).unwrap();
        assert!(matches!(
            b.derive(d, a, Inheritance::Virtual),
            Err(ChgError::DuplicateDirectBase { .. })
        ));
    }

    #[test]
    fn overloads_merge_conflicts_error() {
        let mut b = ChgBuilder::new();
        let a = b.class("A");
        let m1 = b
            .member_with(a, "f", MemberDecl::public(MemberKind::Function))
            .unwrap();
        let m2 = b
            .member_with(a, "f", MemberDecl::public(MemberKind::Function))
            .unwrap();
        assert_eq!(m1, m2);
        assert!(matches!(
            b.member_with(a, "f", MemberDecl::public(MemberKind::Data)),
            Err(ChgError::ConflictingMember { .. })
        ));
        // One name entry despite the overload.
        let g = b.finish().unwrap();
        assert_eq!(g.declared_members(a).len(), 1);
    }

    #[test]
    fn unknown_class_id_rejected() {
        let mut good = ChgBuilder::new();
        let a = good.class("A");
        let mut bad = ChgBuilder::new();
        let stray = {
            let mut other = ChgBuilder::new();
            other.class("X");
            other.class("Y")
        };
        let _ = a;
        assert!(matches!(
            bad.member_with(stray, "m", MemberDecl::default()),
            Err(ChgError::UnknownClass { .. })
        ));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = ChgBuilder::new().finish().unwrap();
        assert_eq!(g.class_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.topo_order().len(), 0);
    }

    #[test]
    fn chg_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Chg>();
    }

    #[test]
    fn debug_output_mentions_classes() {
        let g = diamond();
        let s = format!("{g:?}");
        assert!(s.contains("classes: 4"));
        assert!(s.contains("D : [B, C]"));
    }

    #[test]
    fn member_intern_without_decl() {
        let mut b = ChgBuilder::new();
        b.class("A");
        let m = b.intern_member_name("ghost");
        let g = b.finish().unwrap();
        assert_eq!(g.member_name(m), "ghost");
        assert!(g.declaring_classes(m).is_empty());
    }
}
