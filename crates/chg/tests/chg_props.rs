//! Property tests for the CHG substrate: bit sets, builder validation,
//! closures, and the spec round-trip.

use cpplookup_chg::spec::ChgSpec;
use cpplookup_chg::{BitSet, ChgBuilder, Inheritance};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// BitSet agrees with a BTreeSet reference on any operation sequence.
    #[test]
    fn bitset_matches_btreeset(ops in proptest::collection::vec(
        (0usize..3, 0usize..200), 0..200,
    )) {
        let mut bs = BitSet::new(200);
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        for (op, idx) in ops {
            match op {
                0 => {
                    prop_assert_eq!(bs.insert(idx), reference.insert(idx));
                }
                1 => {
                    prop_assert_eq!(bs.remove(idx), reference.remove(&idx));
                }
                _ => {
                    prop_assert_eq!(bs.contains(idx), reference.contains(&idx));
                }
            }
        }
        prop_assert_eq!(bs.len(), reference.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
    }

    /// Union is idempotent, monotone, and matches the set union.
    #[test]
    fn bitset_union_laws(
        a in proptest::collection::btree_set(0usize..150, 0..60),
        b in proptest::collection::btree_set(0usize..150, 0..60),
    ) {
        let mut ba = BitSet::new(150);
        let mut bb = BitSet::new(150);
        for &x in &a { ba.insert(x); }
        for &x in &b { bb.insert(x); }
        let mut u = ba.clone();
        u.union_with(&bb);
        let reference: BTreeSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(u.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
        prop_assert!(!u.clone().union_with(&bb), "idempotent");
        prop_assert!(ba.is_subset_of(&u));
        prop_assert!(bb.is_subset_of(&u));
        prop_assert_eq!(ba.intersects(&bb), a.intersection(&b).next().is_some());
    }

    /// Random edge soups either build a valid DAG or report a precise
    /// builder error; when they build, the closures agree with a naive
    /// reachability computation.
    #[test]
    fn closures_match_naive_reachability(edges in proptest::collection::vec(
        (0usize..12, 0usize..12, any::<bool>()), 0..40,
    )) {
        let mut b = ChgBuilder::new();
        let ids: Vec<_> = (0..12).map(|i| b.class(&format!("K{i}"))).collect();
        let mut accepted = Vec::new();
        for (from, to, virt) in edges {
            // Orient edges low -> high so the graph is acyclic.
            if from == to { continue; }
            let (lo, hi) = (from.min(to), from.max(to));
            let inh = if virt { Inheritance::Virtual } else { Inheritance::NonVirtual };
            if b.derive(ids[hi], ids[lo], inh).is_ok() {
                accepted.push((lo, hi, virt));
            }
        }
        let g = b.finish().expect("low->high edges cannot form a cycle");

        // Naive transitive reachability over the accepted edges.
        let mut reach = [[false; 12]; 12];
        for &(lo, hi, _) in &accepted {
            reach[hi][lo] = true;
        }
        for _ in 0..12 {
            for d in 0..12 {
                for mid in 0..12 {
                    if reach[d][mid] {
                        let via_mid = reach[mid];
                        for (s, &r) in via_mid.iter().enumerate() {
                            if r {
                                reach[d][s] = true;
                            }
                        }
                    }
                }
            }
        }
        for d in 0..12 {
            for s in 0..12 {
                prop_assert_eq!(
                    g.is_base_of(ids[s], ids[d]),
                    reach[d][s],
                    "base closure mismatch {} -> {}", s, d
                );
            }
        }
        // Virtual-base closure: v is a virtual base of d iff some accepted
        // virtual edge v -> w has w == d or w a base of d.
        for d in 0..12 {
            for v in 0..12 {
                let expected = accepted.iter().any(|&(lo, hi, virt)| {
                    virt && lo == v && (hi == d || reach[d][hi])
                });
                prop_assert_eq!(g.is_virtual_base_of(ids[v], ids[d]), expected);
            }
        }
    }

    /// Spec round-trips preserve the graph exactly.
    #[test]
    fn spec_roundtrip(edges in proptest::collection::vec(
        (0usize..10, 0usize..10, any::<bool>()), 0..30,
    ), members in proptest::collection::vec((0usize..10, 0usize..4), 0..20)) {
        let mut b = ChgBuilder::new();
        let ids: Vec<_> = (0..10).map(|i| b.class(&format!("K{i}"))).collect();
        for (from, to, virt) in edges {
            if from == to { continue; }
            let (lo, hi) = (from.min(to), from.max(to));
            let inh = if virt { Inheritance::Virtual } else { Inheritance::NonVirtual };
            let _ = b.derive(ids[hi], ids[lo], inh);
        }
        for (c, m) in members {
            let _ = b.member_with(ids[c], &format!("m{m}"), Default::default());
        }
        let g = b.finish().unwrap();
        let spec = ChgSpec::from_chg(&g);
        let rebuilt = spec.build().unwrap();
        prop_assert_eq!(ChgSpec::from_chg(&rebuilt), spec);
        prop_assert_eq!(rebuilt.class_count(), g.class_count());
        prop_assert_eq!(rebuilt.edge_count(), g.edge_count());
    }
}
